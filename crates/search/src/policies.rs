//! Flag-selection policies and their evaluation (Figs. 5–7, Table I).
//!
//! Three policies are compared throughout the paper's results section:
//!
//! * **per-shader best** (the oracle): for each shader, the fastest of its
//!   256-flag variants;
//! * **default LunarGlass**: the flags LunarGlass enables by default;
//! * **best static**: the single flag combination that maximises the *mean*
//!   speed-up across all shaders on that platform (Table I) — "the optimal
//!   compilation settings to use if you cannot adapt on a per-shader basis".
//!
//! All speed-ups are measured against the original, untouched shader.

use crate::results::{ShaderPlatformRecord, StudyResults};
use prism_core::{Flag, OptFlags};

/// A flag-selection policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Policy {
    /// The per-shader oracle (best of all 256 combinations).
    Best,
    /// LunarGlass's default flag set.
    DefaultLunarGlass,
    /// A fixed flag combination applied to every shader.
    Static(OptFlags),
}

/// Per-shader percentage speed-ups of a policy on one platform, in the order
/// the records appear.
pub fn per_shader_speedups(records: &[&ShaderPlatformRecord], policy: Policy) -> Vec<f64> {
    records
        .iter()
        .map(|r| match policy {
            Policy::Best => r.best_speedup_vs_original(),
            Policy::DefaultLunarGlass => r.speedup_vs_original(OptFlags::lunarglass_default()),
            Policy::Static(flags) => r.speedup_vs_original(flags),
        })
        .collect()
}

/// Mean percentage speed-up of a policy across all shaders on one platform.
pub fn mean_speedup(records: &[&ShaderPlatformRecord], policy: Policy) -> f64 {
    let v = per_shader_speedups(records, policy);
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Finds the best static flag combination for a platform: the flag set with
/// the highest mean speed-up across all shaders (Table I).
pub fn best_static_flags(records: &[&ShaderPlatformRecord]) -> (OptFlags, f64) {
    let mut best = (OptFlags::NONE, f64::NEG_INFINITY);
    for bits in 0..=255u8 {
        let flags = OptFlags::from_bits(bits);
        let mean = mean_speedup(records, Policy::Static(flags));
        // Prefer fewer flags when the mean is (exactly) tied, so flags that
        // never change the code (e.g. ADCE) drop out of the reported set.
        let better = mean > best.1 + 1e-12 || (mean > best.1 - 1e-12 && flags.len() < best.0.len());
        if better {
            best = (flags, mean);
        }
    }
    best
}

/// Minimises the reported best-static set: drops any flag whose removal does
/// not lower the mean speed-up (mirrors the paper's note that ADCE can be
/// "safely omitted from the minimal optimal flag selection").
pub fn minimal_best_static(records: &[&ShaderPlatformRecord]) -> (OptFlags, f64) {
    let (mut flags, mut mean) = best_static_flags(records);
    loop {
        let mut improved = false;
        for flag in Flag::ALL {
            if !flags.contains(flag) {
                continue;
            }
            let candidate = flags.without(flag);
            let candidate_mean = mean_speedup(records, Policy::Static(candidate));
            if candidate_mean >= mean - 1e-12 {
                flags = candidate;
                mean = candidate_mean;
                improved = true;
            }
        }
        if !improved {
            return (flags, mean);
        }
    }
}

/// Summary of all three policies for one platform (one bar group of Fig. 5).
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformSummary {
    /// Platform name.
    pub vendor: String,
    /// Mean speed-up of the per-shader best variant.
    pub mean_best: f64,
    /// Mean speed-up of LunarGlass's default flags.
    pub mean_default: f64,
    /// Mean speed-up of the best static flag set.
    pub mean_best_static: f64,
    /// The (minimal) best static flag set itself (a row of Table I).
    pub best_static: OptFlags,
}

/// Builds the Fig. 5 / Table I summary for every platform in a study.
pub fn platform_summaries(study: &StudyResults) -> Vec<PlatformSummary> {
    study
        .platforms()
        .into_iter()
        .map(|vendor| {
            let records = study.for_platform(&vendor);
            let (best_static, mean_best_static) = minimal_best_static(&records);
            PlatformSummary {
                mean_best: mean_speedup(&records, Policy::Best),
                mean_default: mean_speedup(&records, Policy::DefaultLunarGlass),
                mean_best_static,
                best_static,
                vendor,
            }
        })
        .collect()
}

/// Mean speed-up of the `n` most-improved shaders under the per-shader best
/// policy (Fig. 6 uses n = 30).
pub fn top_n_mean_best(records: &[&ShaderPlatformRecord], n: usize) -> f64 {
    let mut speedups = per_shader_speedups(records, Policy::Best);
    speedups.sort_by(|a, b| b.partial_cmp(a).expect("speedups are finite"));
    let take = n.min(speedups.len());
    if take == 0 {
        return 0.0;
    }
    speedups[..take].iter().sum::<f64>() / take as f64
}

/// The per-shader speed-ups of the `n` most improved shaders (Fig. 6 detail).
pub fn top_n_speedups(records: &[&ShaderPlatformRecord], n: usize) -> Vec<(String, f64)> {
    let mut pairs: Vec<(String, f64)> = records
        .iter()
        .map(|r| (r.shader.clone(), r.best_speedup_vs_original()))
        .collect();
    pairs.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("speedups are finite"));
    pairs.truncate(n);
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::results::VariantRecord;

    /// Builds a synthetic record where `fast_flags` maps to a faster variant.
    fn record(
        shader: &str,
        vendor: &str,
        original: f64,
        base: f64,
        fast: f64,
        fast_flag: Flag,
    ) -> ShaderPlatformRecord {
        let mut flag_to_variant = vec![0usize; 256];
        for bits in 0..=255u8 {
            if OptFlags::from_bits(bits).contains(fast_flag) {
                flag_to_variant[bits as usize] = 1;
            }
        }
        ShaderPlatformRecord {
            shader: shader.into(),
            vendor: vendor.into(),
            backend: "desktop".into(),
            driver_source_version: "450".into(),
            original_ns: original,
            variants: vec![
                VariantRecord {
                    index: 0,
                    flag_bits: vec![0],
                    mean_ns: base,
                    stddev_ns: 1.0,
                },
                VariantRecord {
                    index: 1,
                    flag_bits: vec![],
                    mean_ns: fast,
                    stddev_ns: 1.0,
                },
            ],
            flag_to_variant,
        }
    }

    #[test]
    fn policies_rank_as_expected() {
        let r1 = record("a", "AMD", 1000.0, 1000.0, 700.0, Flag::Unroll);
        let r2 = record("b", "AMD", 1000.0, 1005.0, 990.0, Flag::Unroll);
        let records: Vec<&ShaderPlatformRecord> = vec![&r1, &r2];
        let best = mean_speedup(&records, Policy::Best);
        let default = mean_speedup(&records, Policy::DefaultLunarGlass);
        let static_unroll = mean_speedup(&records, Policy::Static(OptFlags::only(Flag::Unroll)));
        // The oracle is at least as good as any static policy.
        assert!(best >= static_unroll);
        // LunarGlass defaults include Unroll here, so they match the static set.
        assert!((default - static_unroll).abs() < 1e-9);
        assert!(best > 0.0);
    }

    #[test]
    fn best_static_finds_the_winning_flag_and_is_minimal() {
        let r1 = record("a", "ARM", 1000.0, 1000.0, 800.0, Flag::Unroll);
        let r2 = record("b", "ARM", 1000.0, 1000.0, 900.0, Flag::Unroll);
        let records: Vec<&ShaderPlatformRecord> = vec![&r1, &r2];
        let (flags, mean) = minimal_best_static(&records);
        assert!(flags.contains(Flag::Unroll));
        assert_eq!(
            flags.len(),
            1,
            "minimal set should drop no-op flags: {flags}"
        );
        assert!((mean - 15.0).abs() < 1e-9);
    }

    #[test]
    fn top_n_selects_most_improved() {
        let r1 = record("a", "Intel", 1000.0, 1000.0, 900.0, Flag::Unroll); // 10%
        let r2 = record("b", "Intel", 1000.0, 1000.0, 990.0, Flag::Unroll); // 1%
        let r3 = record("c", "Intel", 1000.0, 1000.0, 750.0, Flag::Unroll); // 25%
        let records: Vec<&ShaderPlatformRecord> = vec![&r1, &r2, &r3];
        let top2 = top_n_mean_best(&records, 2);
        assert!((top2 - 17.5).abs() < 1e-9);
        let named = top_n_speedups(&records, 2);
        assert_eq!(named[0].0, "c");
        assert_eq!(named[1].0, "a");
    }

    #[test]
    fn empty_record_sets_are_safe() {
        let records: Vec<&ShaderPlatformRecord> = vec![];
        assert_eq!(mean_speedup(&records, Policy::Best), 0.0);
        assert_eq!(top_n_mean_best(&records, 30), 0.0);
    }
}
