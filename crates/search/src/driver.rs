//! Incremental flag search over live compile sessions.
//!
//! The paper answers "which flags help this shader?" by brute force: all 256
//! combinations are compiled, measured, and ranked (§III-A). PR 1–2 made that
//! exhaustive sweep fast; this module makes it *unnecessary* for workloads
//! that cannot afford it. A [`SearchDriver`] wraps one live
//! [`CompileSession`] and one platform's measurement record, and compiles
//! exactly the combinations a [`SearchStrategy`] asks for — pay-as-you-go
//! against the session's warm (possibly corpus-shared, possibly bounded)
//! cache — while enforcing a hard compile budget.
//!
//! Four strategies ship, mirroring the classic iterative-compilation
//! playbook:
//!
//! * [`GreedyForward`] — start from no flags and greedily add the single
//!   flag with the best improvement until nothing improves;
//! * [`GreedyBackward`] — start from the LunarGlass defaults and greedily
//!   drop flags that do not help (it can only match or beat the default,
//!   since the default itself is its first evaluation);
//! * [`Ablation`] — evaluate the default, each single-flag ablation
//!   (default minus one stock flag, default plus one custom flag), and the
//!   refined combination those ablations suggest;
//! * [`RandomRestartHillClimb`] — seeded random restarts with single-bit
//!   hill climbing, the strategy that keeps exploring until the budget runs
//!   dry.
//!
//! Scoring goes through the [`Evaluator`] seam (see
//! [`crate::evaluator`]): the [`OracleEvaluator`] replays the exhaustive
//! study's own deterministic measurement for a given variant — so strategy
//! results are directly comparable to the oracle while paying for far fewer
//! compilations — and the [`LiveEvaluator`](crate::evaluator::LiveEvaluator)
//! measures variants as it searches, no exhaustive record required. The
//! explore/exploit bandit strategies ([`EpsilonGreedy`](crate::bandit::EpsilonGreedy),
//! [`Ucb1`](crate::bandit::Ucb1)) live in [`crate::bandit`] alongside the
//! [`RegretTracker`](crate::bandit::RegretTracker) that scores every
//! strategy's evaluation log against the oracle.
//! [`incremental_search_records`] aggregates the comparison per (platform,
//! strategy) into [`SearchRecord`] rows — regret-vs-measurements curves
//! included — for [`StudyResults::search`](crate::results::StudyResults)
//! and the Fig. 10 style report table.

use crate::bandit::RegretTracker;
use crate::evaluator::{EvalCost, Evaluator, OracleEvaluator};
use crate::results::{percent_speedup, SearchRecord, ShaderPlatformRecord, StudyResults};
use crate::sweep::StudyConfig;
use prism_core::{CacheStore, CompileSession, CorpusCache, Flag, OptFlags};
use prism_corpus::Corpus;
use prism_emit::BackendKind;
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

/// Configuration of an incremental search run.
///
/// Marked `#[non_exhaustive]`: construct with [`SearchConfig::default`] and
/// the `with_*` setters, so future knobs are not breaking changes.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct SearchConfig {
    /// Hard cap on distinct flag combinations each strategy may compile per
    /// (shader, platform). The default, 63, keeps every strategy strictly
    /// under a quarter of the exhaustive 256.
    pub budget: usize,
    /// Seed for the randomised strategies (deterministic per (shader,
    /// platform, strategy) — reruns reproduce byte-identical records).
    pub seed: u64,
    /// Restart count for [`RandomRestartHillClimb`].
    pub restarts: usize,
    /// Static-prefilter mode (default off): live evaluators skip the timing
    /// measurement of candidates whose static cost model estimate is
    /// strictly dominated by an already-measured arm's. Counter-gated —
    /// pruned arms are logged in
    /// [`EvalCost::candidates_pruned`](crate::evaluator::EvalCost) and
    /// [`SearchRecord::candidates_pruned`] — never silently lossy.
    pub static_prefilter: bool,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            budget: 63,
            seed: 0x5EED_CAFE,
            restarts: 3,
            static_prefilter: false,
        }
    }
}

impl SearchConfig {
    /// This config with a different per-shader compile budget.
    pub fn with_budget(mut self, budget: usize) -> SearchConfig {
        self.budget = budget;
        self
    }

    /// This config with a different strategy seed.
    pub fn with_seed(mut self, seed: u64) -> SearchConfig {
        self.seed = seed;
        self
    }

    /// This config with a different hill-climb restart count.
    pub fn with_restarts(mut self, restarts: usize) -> SearchConfig {
        self.restarts = restarts;
        self
    }

    /// This config with the static prefilter switched on or off.
    pub fn with_static_prefilter(mut self, on: bool) -> SearchConfig {
        self.static_prefilter = on;
        self
    }
}

/// The outcome of one strategy run on one (shader, platform).
#[derive(Debug, Clone, PartialEq)]
pub struct SearchOutcome {
    /// Strategy name.
    pub strategy: String,
    /// The best flag combination found among those evaluated.
    pub best_flags: OptFlags,
    /// Its measured frame time (from the study's deterministic harness).
    pub best_ns: f64,
    /// Distinct flag combinations compiled (the pay-as-you-go cost).
    pub compiles: usize,
    /// The compile budget the driver enforced.
    pub budget: usize,
}

/// Budget + memo wrapper around an [`Evaluator`] for one (shader, platform)
/// search run.
///
/// Each [`SearchDriver::evaluate`] call delegates a distinct combination to
/// the evaluator — compiling through a live session or service handle, then
/// scoring offline (oracle) or measuring online (live) — and memoises the
/// answer. Distinct combinations are counted against a hard budget; once it
/// is spent, `evaluate` returns `None` and the strategy must stop.
/// Re-evaluating an already-evaluated combination is free (answered from the
/// driver's memo). The driver also keeps an ordered evaluation log, which is
/// what the [`RegretTracker`] replays to score a strategy's
/// anytime behaviour against the exhaustive oracle.
pub struct SearchDriver<'a> {
    evaluator: Box<dyn Evaluator + 'a>,
    budget: usize,
    evaluated: RefCell<HashMap<OptFlags, f64>>,
    log: RefCell<Vec<(OptFlags, f64)>>,
}

impl<'a> SearchDriver<'a> {
    /// A driver over any [`Evaluator`], with a hard `budget` of distinct
    /// combinations.
    pub fn over(evaluator: Box<dyn Evaluator + 'a>, budget: usize) -> SearchDriver<'a> {
        SearchDriver {
            evaluator,
            budget: budget.max(1),
            evaluated: RefCell::new(HashMap::new()),
            log: RefCell::new(Vec::new()),
        }
    }

    /// A driver over `session` scoring against `record`, emitting through
    /// `backend` (the platform's declared backend), with a hard `budget` of
    /// distinct combinations.
    #[deprecated(
        since = "0.9.0",
        note = "construct an evaluator explicitly: \
                `SearchDriver::over(Box::new(OracleEvaluator::new(session, record, backend)), budget)`"
    )]
    pub fn new(
        session: &'a CompileSession,
        record: &'a ShaderPlatformRecord,
        backend: BackendKind,
        budget: usize,
    ) -> SearchDriver<'a> {
        SearchDriver::over(
            Box::new(OracleEvaluator::new(session, record, backend)),
            budget,
        )
    }

    /// Frame time of `flags`, evaluating it on demand. `None` once the
    /// budget is exhausted (repeat queries of already-evaluated combinations
    /// stay free and still answer) — or if the combination fails to
    /// evaluate, which stops the strategy the same way. The latter cannot
    /// happen for shaders that passed the exhaustive sweep (compilation is
    /// deterministic and all 256 combinations succeeded to produce the
    /// record at all); it exists so a driver over a hostile session — or a
    /// live service losing its platform — degrades to "search over what
    /// evaluates" instead of panicking.
    pub fn evaluate(&self, flags: OptFlags) -> Option<f64> {
        if let Some(time) = self.evaluated.borrow().get(&flags) {
            return Some(*time);
        }
        if self.evaluated.borrow().len() >= self.budget {
            return None;
        }
        let time = self.evaluator.evaluate(flags)?;
        self.evaluated.borrow_mut().insert(flags, time);
        self.log.borrow_mut().push((flags, time));
        Some(time)
    }

    /// Distinct combinations evaluated so far.
    pub fn compiles(&self) -> usize {
        self.evaluated.borrow().len()
    }

    /// The budget this driver enforces.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// The evaluator's cost ledger (compiles, and in live mode the
    /// measurements and frames actually spent).
    pub fn cost(&self) -> EvalCost {
        self.evaluator.cost()
    }

    /// The combination a warm-started strategy evaluates first: the
    /// evaluator's best-known prior, or the LunarGlass default when it has
    /// none.
    pub fn warm_start(&self) -> OptFlags {
        self.evaluator
            .warm_start()
            .unwrap_or_else(OptFlags::lunarglass_default)
    }

    /// The ordered evaluation log — every distinct (flags, time) in the
    /// order it was first evaluated. This is what regret analysis replays:
    /// entry `k` answers "what would we deploy after `k + 1` evaluations?".
    pub fn evaluation_log(&self) -> Vec<(OptFlags, f64)> {
        self.log.borrow().clone()
    }

    /// The best (flags, time) among everything evaluated so far.
    pub fn best_evaluated(&self) -> Option<(OptFlags, f64)> {
        self.evaluated
            .borrow()
            .iter()
            .min_by(|a, b| {
                a.1.partial_cmp(b.1)
                    .expect("frame times are finite")
                    .then_with(|| a.0.len().cmp(&b.0.len()))
                    .then_with(|| a.0.bits().cmp(&b.0.bits()))
            })
            .map(|(flags, time)| (*flags, *time))
    }

    /// Packages the run so far as a [`SearchOutcome`] for `strategy`.
    ///
    /// # Panics
    ///
    /// Panics if the strategy evaluated nothing (every shipped strategy
    /// evaluates at least its starting point; the budget is at least 1).
    pub fn outcome(&self, strategy: &str) -> SearchOutcome {
        let (best_flags, best_ns) = self
            .best_evaluated()
            .expect("strategy must evaluate at least one combination");
        SearchOutcome {
            strategy: strategy.to_string(),
            best_flags,
            best_ns,
            compiles: self.compiles(),
            budget: self.budget,
        }
    }

    /// A deterministic seed component tied to the evaluator's (shader,
    /// platform) identity, for reproducible randomised strategies. Uses
    /// FNV-1a rather than `DefaultHasher` so the stream — and therefore the
    /// perf gate's committed search counters — is stable across Rust
    /// releases.
    pub fn context_seed(&self) -> u64 {
        self.evaluator.context_seed()
    }
}

/// A flag-subset exploration policy running against a [`SearchDriver`].
///
/// Implementations call [`SearchDriver::evaluate`] as they see fit and stop
/// when they converge or when `evaluate` returns `None` (budget exhausted);
/// the driver keeps the best-seen combination, so `run` has no return value.
pub trait SearchStrategy {
    /// Stable name used in result tables.
    fn name(&self) -> &'static str;

    /// Explores combinations against `driver` until convergence or budget
    /// exhaustion.
    fn run(&self, driver: &SearchDriver);
}

/// Greedy forward selection: start from no flags, repeatedly add the single
/// flag with the largest improvement, stop when no addition improves. At
/// most `1 + 8 + 7 + … + 1 = 37` compilations.
pub struct GreedyForward;

impl SearchStrategy for GreedyForward {
    fn name(&self) -> &'static str {
        "greedy_forward"
    }

    fn run(&self, driver: &SearchDriver) {
        let mut current = OptFlags::NONE;
        let Some(mut current_time) = driver.evaluate(current) else {
            return;
        };
        loop {
            let mut best: Option<(OptFlags, f64)> = None;
            for flag in Flag::ALL {
                if current.contains(flag) {
                    continue;
                }
                let candidate = current.with(flag);
                let Some(time) = driver.evaluate(candidate) else {
                    return;
                };
                if time < current_time && best.is_none_or(|(_, bt)| time < bt) {
                    best = Some((candidate, time));
                }
            }
            let Some((next, time)) = best else { return };
            current = next;
            current_time = time;
        }
    }
}

/// Greedy backward elimination from the LunarGlass defaults: evaluate the
/// default set, then repeatedly drop the flag whose removal helps (or
/// changes nothing — minimising the set), until every remaining flag earns
/// its place. Because the default set is evaluated first, the result can
/// never be worse than the default policy. At most `1 + 6 + 5 + … + 1 = 22`
/// compilations.
pub struct GreedyBackward;

impl SearchStrategy for GreedyBackward {
    fn name(&self) -> &'static str {
        "greedy_backward"
    }

    fn run(&self, driver: &SearchDriver) {
        let mut current = OptFlags::lunarglass_default();
        let Some(mut current_time) = driver.evaluate(current) else {
            return;
        };
        loop {
            let mut best: Option<(OptFlags, f64)> = None;
            for flag in current.flags() {
                let candidate = current.without(flag);
                let Some(time) = driver.evaluate(candidate) else {
                    return;
                };
                if time <= current_time && best.is_none_or(|(_, bt)| time <= bt) {
                    best = Some((candidate, time));
                }
            }
            let Some((next, time)) = best else { return };
            current = next;
            current_time = time;
        }
    }
}

/// Per-flag ablation around the LunarGlass defaults: evaluate the default,
/// each default-minus-one-stock-flag and default-plus-one-custom-flag
/// variant, then the refined set those ablations suggest (drop flags whose
/// removal did not hurt, add flags that helped in isolation). Exactly 10
/// compilations — and never worse than the default, which it evaluates
/// first.
pub struct Ablation;

impl SearchStrategy for Ablation {
    fn name(&self) -> &'static str {
        "ablation"
    }

    fn run(&self, driver: &SearchDriver) {
        let base = OptFlags::lunarglass_default();
        let Some(base_time) = driver.evaluate(base) else {
            return;
        };
        let mut refined = base;
        for flag in Flag::ALL {
            let (candidate, in_base) = if base.contains(flag) {
                (base.without(flag), true)
            } else {
                (base.with(flag), false)
            };
            let Some(time) = driver.evaluate(candidate) else {
                return;
            };
            if in_base {
                if time <= base_time {
                    refined = refined.without(flag);
                }
            } else if time < base_time {
                refined = refined.with(flag);
            }
        }
        let _ = driver.evaluate(refined);
    }
}

/// Random-restart hill climbing: from each seeded random starting set, flip
/// the single bit with the best improvement until a local optimum, then
/// restart. The strategy that spends whatever budget the others leave on the
/// table; its RNG stream is keyed on (seed, shader, platform), so runs are
/// reproducible.
pub struct RandomRestartHillClimb {
    /// Base RNG seed (combined with the driver's context seed).
    pub seed: u64,
    /// Number of random restarts.
    pub restarts: usize,
}

impl SearchStrategy for RandomRestartHillClimb {
    fn name(&self) -> &'static str {
        "hill_climb"
    }

    fn run(&self, driver: &SearchDriver) {
        let mut rng = StdRng::seed_from_u64(self.seed ^ driver.context_seed());
        for _ in 0..self.restarts.max(1) {
            let mut current = OptFlags::from_bits(rng.next_u64() as u8);
            let Some(mut current_time) = driver.evaluate(current) else {
                return;
            };
            loop {
                let mut best: Option<(OptFlags, f64)> = None;
                for flag in Flag::ALL {
                    let flipped = if current.contains(flag) {
                        current.without(flag)
                    } else {
                        current.with(flag)
                    };
                    let Some(time) = driver.evaluate(flipped) else {
                        return;
                    };
                    if time < current_time && best.is_none_or(|(_, bt)| time < bt) {
                        best = Some((flipped, time));
                    }
                }
                let Some((next, time)) = best else { break };
                current = next;
                current_time = time;
            }
        }
    }
}

/// The standard strategy set compared in the study's incremental-search
/// table, in report order. The classic iterative-compilation four come
/// first, then the explore/exploit bandits from [`crate::bandit`].
pub fn standard_strategies(config: &SearchConfig) -> Vec<Box<dyn SearchStrategy>> {
    vec![
        Box::new(GreedyForward),
        Box::new(GreedyBackward),
        Box::new(Ablation),
        Box::new(RandomRestartHillClimb {
            seed: config.seed,
            restarts: config.restarts,
        }),
        Box::new(crate::bandit::EpsilonGreedy {
            seed: config.seed,
            epsilon: 0.2,
        }),
        Box::new(crate::bandit::Ucb1 { exploration: 1.5 }),
    ]
}

/// Runs every standard strategy over every (shader, platform) of an
/// exhaustively measured study and aggregates, per (platform, strategy), how
/// close the strategy gets to the exhaustive oracle at what fraction of the
/// compile cost.
///
/// Sessions are opened fresh against one shared corpus cache (bounded when
/// `config.cache_budget` is set), so strategies pay real, incremental
/// compilation — warmed by whatever earlier strategies and family members
/// already computed — while their timings replay the study's deterministic
/// measurements, keeping the oracle comparison exact.
pub fn incremental_search_records(
    corpus: &Corpus,
    study: &StudyResults,
    config: &StudyConfig,
    search: &SearchConfig,
) -> Vec<SearchRecord> {
    let cache: Arc<CorpusCache> = Arc::new(config.new_corpus_cache());
    let strategies = standard_strategies(search);
    let checkpoints = RegretTracker::checkpoints_for(search.budget);

    /// Per-(platform, strategy) accumulator.
    #[derive(Default)]
    struct Acc {
        shaders: usize,
        compiles: usize,
        pruned: usize,
        max_compiles: usize,
        speedup_sum: f64,
        oracle_sum: f64,
        default_sum: f64,
        regret_sums: Vec<f64>,
    }
    // Keyed (vendor, strategy); insertion order drives the output order.
    let mut order: Vec<(String, String)> = Vec::new();
    let mut accs: HashMap<(String, String), Acc> = HashMap::new();

    for case in &corpus.cases {
        let session = match CompileSession::with_cache_in_family(
            &case.source,
            &case.name,
            &case.family,
            Arc::clone(&cache) as Arc<dyn CacheStore>,
        ) {
            Ok(session) => session,
            // Shaders the exhaustive sweep skipped are skipped here too.
            Err(_) => continue,
        };
        for record in study.measurements.iter().filter(|m| m.shader == case.name) {
            let Some(backend) = BackendKind::from_name(&record.backend) else {
                continue;
            };
            for strategy in &strategies {
                let driver = SearchDriver::over(
                    Box::new(OracleEvaluator::new(&session, record, backend)),
                    search.budget,
                );
                strategy.run(&driver);
                // A strategy whose very first compile failed has nothing to
                // report; skip the row rather than panic (mirrors how the
                // exhaustive sweep records rather than crashes on failures).
                if driver.best_evaluated().is_none() {
                    continue;
                }
                let outcome = driver.outcome(strategy.name());
                let regret =
                    RegretTracker::from_log(&driver.evaluation_log(), record, search.budget);

                let key = (record.vendor.clone(), outcome.strategy.clone());
                if !accs.contains_key(&key) {
                    order.push(key.clone());
                }
                let acc = accs.entry(key).or_default();
                acc.shaders += 1;
                acc.compiles += outcome.compiles;
                // Always 0 in oracle mode (the prefilter only gates live
                // measurements), but wired through so live-mode aggregation
                // reports its pruning honestly.
                acc.pruned += driver.cost().candidates_pruned;
                acc.max_compiles = acc.max_compiles.max(outcome.compiles);
                acc.speedup_sum += percent_speedup(record.original_ns, outcome.best_ns);
                acc.oracle_sum += record.best_speedup_vs_original();
                acc.default_sum += record.speedup_vs_original(OptFlags::lunarglass_default());
                if acc.regret_sums.is_empty() {
                    acc.regret_sums = vec![0.0; checkpoints.len()];
                }
                for (sum, r) in acc.regret_sums.iter_mut().zip(regret.curve()) {
                    *sum += r;
                }
            }
        }
    }

    order
        .into_iter()
        .map(|key| {
            let acc = &accs[&key];
            let n = acc.shaders.max(1) as f64;
            let mean_regret: Vec<f64> = acc.regret_sums.iter().map(|s| s / n).collect();
            let regret_final = mean_regret.last().copied().unwrap_or(0.0);
            SearchRecord {
                vendor: key.0,
                strategy: key.1,
                shaders: acc.shaders,
                budget: search.budget,
                mean_compiles: acc.compiles as f64 / n,
                candidates_pruned: acc.pruned,
                max_compiles: acc.max_compiles,
                mean_speedup: acc.speedup_sum / n,
                oracle_mean_speedup: acc.oracle_sum / n,
                default_mean_speedup: acc.default_sum / n,
                regret_checkpoints: checkpoints.clone(),
                mean_regret,
                regret_final,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::results::VariantRecord;
    use prism_glsl::ShaderSource;

    const BLURRY: &str = r#"
        uniform sampler2D tex; uniform vec4 ambient; in vec2 uv; out vec4 c;
        void main() {
            const vec2[] offs = vec2[](vec2(-0.01), vec2(0.0), vec2(0.01));
            c = vec4(0.0);
            float total = 0.0;
            for (int i = 0; i < 3; i++) {
                total += 0.25;
                c += texture(tex, uv + offs[i]) * 2.0 * ambient;
            }
            c /= total;
        }
    "#;

    /// A synthetic record where exactly `fast_flag` switches to a faster
    /// variant (and a second flag makes it slightly faster again).
    fn synthetic_record(fast_flag: Flag, bonus_flag: Flag) -> ShaderPlatformRecord {
        let mut flag_to_variant = vec![0usize; 256];
        for bits in 0..=255u8 {
            let flags = OptFlags::from_bits(bits);
            flag_to_variant[bits as usize] =
                match (flags.contains(fast_flag), flags.contains(bonus_flag)) {
                    (true, true) => 2,
                    (true, false) => 1,
                    _ => 0,
                };
        }
        ShaderPlatformRecord {
            shader: "synthetic".into(),
            vendor: "AMD".into(),
            backend: "desktop".into(),
            driver_source_version: "450".into(),
            original_ns: 1000.0,
            variants: vec![
                VariantRecord {
                    index: 0,
                    flag_bits: vec![0],
                    mean_ns: 1010.0,
                    stddev_ns: 1.0,
                },
                VariantRecord {
                    index: 1,
                    flag_bits: vec![],
                    mean_ns: 900.0,
                    stddev_ns: 1.0,
                },
                VariantRecord {
                    index: 2,
                    flag_bits: vec![],
                    mean_ns: 850.0,
                    stddev_ns: 1.0,
                },
            ],
            flag_to_variant,
        }
    }

    fn session() -> CompileSession {
        CompileSession::new(&ShaderSource::parse(BLURRY).unwrap(), "synthetic").unwrap()
    }

    fn oracle_driver<'a>(
        session: &'a CompileSession,
        record: &'a ShaderPlatformRecord,
        budget: usize,
    ) -> SearchDriver<'a> {
        SearchDriver::over(
            Box::new(OracleEvaluator::new(
                session,
                record,
                BackendKind::DesktopGlsl,
            )),
            budget,
        )
    }

    #[test]
    fn driver_enforces_its_budget_and_memoises() {
        let session = session();
        let record = synthetic_record(Flag::Unroll, Flag::Gvn);
        let driver = oracle_driver(&session, &record, 3);
        assert!(driver.evaluate(OptFlags::NONE).is_some());
        assert!(driver.evaluate(OptFlags::only(Flag::Unroll)).is_some());
        assert!(driver.evaluate(OptFlags::only(Flag::Gvn)).is_some());
        assert_eq!(driver.compiles(), 3);
        // Budget spent: new combinations refuse, old ones still answer.
        assert!(driver.evaluate(OptFlags::all()).is_none());
        assert!(driver.evaluate(OptFlags::NONE).is_some());
        assert_eq!(driver.compiles(), 3);
        // Memoised repeats do not grow the evaluation log or the ledger.
        assert_eq!(driver.evaluation_log().len(), 3);
        assert_eq!(driver.cost().compiles, 3);
        assert_eq!(driver.cost().measurements, 0);
        let (best, time) = driver.best_evaluated().unwrap();
        assert_eq!(best, OptFlags::only(Flag::Unroll));
        assert_eq!(time, 900.0);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_constructor_still_builds_an_oracle_driver() {
        let session = session();
        let record = synthetic_record(Flag::Unroll, Flag::Gvn);
        let driver = SearchDriver::new(&session, &record, BackendKind::DesktopGlsl, 63);
        assert_eq!(driver.evaluate(OptFlags::NONE), Some(1010.0));
        assert_eq!(driver.evaluate(OptFlags::only(Flag::Unroll)), Some(900.0));
        assert_eq!(driver.warm_start(), OptFlags::lunarglass_default());
        // Same FNV-1a context seed as the evaluator seam computes directly.
        assert_eq!(
            driver.context_seed(),
            crate::evaluator::context_seed_for("synthetic", "AMD")
        );
    }

    #[test]
    fn greedy_forward_finds_the_two_flag_optimum() {
        let session = session();
        let record = synthetic_record(Flag::Unroll, Flag::Gvn);
        let driver = oracle_driver(&session, &record, 63);
        GreedyForward.run(&driver);
        let outcome = driver.outcome("greedy_forward");
        assert_eq!(outcome.best_ns, 850.0);
        assert!(outcome.best_flags.contains(Flag::Unroll));
        assert!(outcome.best_flags.contains(Flag::Gvn));
        assert!(
            outcome.compiles <= 37,
            "greedy forward overspent: {outcome:?}"
        );
    }

    #[test]
    fn greedy_backward_never_loses_to_the_default() {
        let session = session();
        let record = synthetic_record(Flag::Unroll, Flag::Gvn);
        let driver = oracle_driver(&session, &record, 63);
        GreedyBackward.run(&driver);
        let outcome = driver.outcome("greedy_backward");
        let default_time = record.time_for(OptFlags::lunarglass_default());
        assert!(outcome.best_ns <= default_time);
        assert!(outcome.compiles <= 22, "{outcome:?}");
        // The default contains both useful flags here, so backward keeps
        // them and drops the rest.
        assert!(outcome.best_flags.contains(Flag::Unroll));
        assert!(outcome.best_flags.contains(Flag::Gvn));
        assert!(outcome.best_flags.len() <= 6);
    }

    #[test]
    fn ablation_spends_exactly_ten_compiles() {
        let session = session();
        let record = synthetic_record(Flag::Unroll, Flag::FpReassociate);
        let driver = oracle_driver(&session, &record, 63);
        Ablation.run(&driver);
        let outcome = driver.outcome("ablation");
        assert!(outcome.compiles <= 10, "{outcome:?}");
        // FP Reassociate is outside the default set; ablation adds it.
        assert!(outcome.best_flags.contains(Flag::FpReassociate));
        assert!(outcome.best_ns <= record.time_for(OptFlags::lunarglass_default()));
    }

    #[test]
    fn hill_climb_is_deterministic_and_budget_bound() {
        let session = session();
        let record = synthetic_record(Flag::Unroll, Flag::Gvn);
        let climb = RandomRestartHillClimb {
            seed: 7,
            restarts: 3,
        };
        let run = || {
            let driver = oracle_driver(&session, &record, 20);
            climb.run(&driver);
            driver.outcome("hill_climb")
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same seed must reproduce the same outcome");
        assert!(a.compiles <= 20, "{a:?}");
    }

    #[test]
    fn strategies_stop_cleanly_on_a_tiny_budget() {
        let session = session();
        let record = synthetic_record(Flag::Unroll, Flag::Gvn);
        for strategy in standard_strategies(&SearchConfig::default()) {
            let driver = oracle_driver(&session, &record, 2);
            strategy.run(&driver);
            let outcome = driver.outcome(strategy.name());
            assert!(
                outcome.compiles <= 2,
                "{} overspent: {outcome:?}",
                strategy.name()
            );
        }
    }
}
