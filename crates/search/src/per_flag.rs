//! Per-flag isolated impact (Fig. 9).
//!
//! Each flag is measured *alone* against the LunarGlass all-flags-off
//! baseline — not against the original shader — so the comparison isolates
//! the pass's effect from the source-to-source artefacts, exactly as the
//! paper does ("we use a baseline of LunarGlass running with all
//! optimizations disabled here, rather than an unaltered shader", §VI-D).

use crate::results::StudyResults;
use prism_core::{Flag, OptFlags};

/// The distribution of per-shader speed-ups for one flag on one platform —
/// the data behind one violin of Fig. 9.
#[derive(Debug, Clone, PartialEq)]
pub struct FlagImpact {
    /// The flag measured in isolation.
    pub flag: Flag,
    /// Platform name.
    pub vendor: String,
    /// Percentage speed-up per shader versus the no-flag baseline.
    pub speedups: Vec<f64>,
}

impl FlagImpact {
    /// Mean speed-up across shaders.
    pub fn mean(&self) -> f64 {
        if self.speedups.is_empty() {
            0.0
        } else {
            self.speedups.iter().sum::<f64>() / self.speedups.len() as f64
        }
    }

    /// Largest observed speed-up (the violin's upper extent).
    pub fn max(&self) -> f64 {
        self.speedups.iter().copied().fold(0.0, f64::max)
    }

    /// Largest observed slow-down (the violin's lower extent, negative).
    pub fn min(&self) -> f64 {
        self.speedups.iter().copied().fold(0.0, f64::min)
    }

    /// Number of shaders whose code the flag actually changed (non-zero
    /// entries only exist for those, all others sit exactly at 0).
    pub fn nonzero_count(&self) -> usize {
        self.speedups.iter().filter(|s| s.abs() > 1e-9).count()
    }
}

/// Computes the isolated impact of one flag on one platform.
pub fn flag_impact(study: &StudyResults, vendor: &str, flag: Flag) -> FlagImpact {
    let speedups = study
        .for_platform(vendor)
        .iter()
        .map(|record| record.speedup_vs_baseline(OptFlags::only(flag)))
        .collect();
    FlagImpact {
        flag,
        vendor: vendor.to_string(),
        speedups,
    }
}

/// Computes Fig. 9 in full: every flag on every platform of the study.
pub fn all_flag_impacts(study: &StudyResults) -> Vec<FlagImpact> {
    let mut out = Vec::new();
    for vendor in study.platforms() {
        for flag in Flag::ALL {
            out.push(flag_impact(study, &vendor, flag));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::results::{ShaderPlatformRecord, ShaderRecord, VariantRecord};

    fn study() -> StudyResults {
        // Shader where Unroll helps by 20% and Hoist hurts by 10% relative to
        // the no-flag baseline of 1000 ns.
        let mut flag_to_variant = vec![0usize; 256];
        for bits in 0..=255u8 {
            let flags = OptFlags::from_bits(bits);
            flag_to_variant[bits as usize] =
                match (flags.contains(Flag::Unroll), flags.contains(Flag::Hoist)) {
                    (true, _) => 1,
                    (false, true) => 2,
                    _ => 0,
                };
        }
        StudyResults {
            shaders: vec![ShaderRecord {
                name: "s".into(),
                family: "f".into(),
                loc: 20,
                arm_static_cycles: 10.0,
                unique_variants: 3,
                flag_changes_code: vec![true; 8],
            }],
            measurements: vec![ShaderPlatformRecord {
                shader: "s".into(),
                vendor: "ARM".into(),
                backend: "gles".into(),
                driver_source_version: "310 es".into(),
                original_ns: 980.0,
                variants: vec![
                    VariantRecord {
                        index: 0,
                        flag_bits: vec![0],
                        mean_ns: 1000.0,
                        stddev_ns: 1.0,
                    },
                    VariantRecord {
                        index: 1,
                        flag_bits: vec![],
                        mean_ns: 800.0,
                        stddev_ns: 1.0,
                    },
                    VariantRecord {
                        index: 2,
                        flag_bits: vec![],
                        mean_ns: 1100.0,
                        stddev_ns: 1.0,
                    },
                ],
                flag_to_variant,
            }],
            skipped: vec![],
            cache: Default::default(),
            search: vec![],
            warnings: vec![],
            specializations: vec![],
        }
    }

    #[test]
    fn isolated_impacts_use_the_no_flag_baseline() {
        let s = study();
        let unroll = flag_impact(&s, "ARM", Flag::Unroll);
        assert_eq!(unroll.speedups.len(), 1);
        assert!((unroll.mean() - 20.0).abs() < 1e-9);
        let hoist = flag_impact(&s, "ARM", Flag::Hoist);
        assert!((hoist.mean() + 10.0).abs() < 1e-9);
        // A flag that maps to the same variant as the baseline has exactly 0.
        let adce = flag_impact(&s, "ARM", Flag::Adce);
        assert_eq!(adce.mean(), 0.0);
        assert_eq!(adce.nonzero_count(), 0);
        assert_eq!(unroll.nonzero_count(), 1);
    }

    #[test]
    fn all_impacts_cover_every_flag_and_platform() {
        let s = study();
        let all = all_flag_impacts(&s);
        assert_eq!(all.len(), 8);
        assert!(all.iter().any(|i| i.flag == Flag::DivToMul));
    }

    #[test]
    fn extents_reflect_best_and_worst_cases() {
        let s = study();
        let unroll = flag_impact(&s, "ARM", Flag::Unroll);
        assert_eq!(unroll.max(), unroll.mean());
        assert_eq!(unroll.min(), 0.0);
        let hoist = flag_impact(&s, "ARM", Flag::Hoist);
        assert!(hoist.min() < 0.0);
    }
}
