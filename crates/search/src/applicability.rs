//! Per-flag applicability analysis (Fig. 8).
//!
//! For every optimization flag the paper reports three counts over the
//! corpus: the total number of shaders (blue), the number of shaders whose
//! generated code the flag changes at all (red), and the number of shaders
//! for which the flag is included in at least half of the optimal 10 % of
//! variants (green).

use crate::results::StudyResults;
use prism_core::{Flag, OptFlags};

/// Applicability counts for one flag on one platform.
#[derive(Debug, Clone, PartialEq)]
pub struct FlagApplicability {
    /// The flag in question.
    pub flag: Flag,
    /// Platform name.
    pub vendor: String,
    /// Total number of shaders measured (the blue bar).
    pub total_shaders: usize,
    /// Shaders whose generated code the flag changes (the red bar).
    pub changes_code: usize,
    /// Shaders where the flag appears in at least half of the optimal 10 % of
    /// flag combinations (the green bar).
    pub in_optimal_set: usize,
}

impl FlagApplicability {
    /// Fraction of shaders the flag changes.
    pub fn applicability_rate(&self) -> f64 {
        self.changes_code as f64 / self.total_shaders.max(1) as f64
    }

    /// Fraction of shaders where the flag is in the optimal set.
    pub fn optimality_rate(&self) -> f64 {
        self.in_optimal_set as f64 / self.total_shaders.max(1) as f64
    }
}

/// Computes Fig. 8 for one platform: one entry per flag.
pub fn flag_applicability(study: &StudyResults, vendor: &str) -> Vec<FlagApplicability> {
    let records = study.for_platform(vendor);
    Flag::ALL
        .iter()
        .map(|flag| {
            let mut changes_code = 0;
            let mut in_optimal_set = 0;
            for record in &records {
                let changes = study
                    .shader(&record.shader)
                    .map(|s| s.flag_changes_code[flag.bit() as usize])
                    .unwrap_or(false);
                if changes {
                    changes_code += 1;
                }
                if flag_in_optimal_tenth(record, *flag) {
                    in_optimal_set += 1;
                }
            }
            FlagApplicability {
                flag: *flag,
                vendor: vendor.to_string(),
                total_shaders: records.len(),
                changes_code,
                in_optimal_set,
            }
        })
        .collect()
}

/// The paper's green-bar criterion: the flag is enabled in at least half of
/// the best 10 % of the 256 flag combinations (ranked by measured time).
fn flag_in_optimal_tenth(record: &crate::results::ShaderPlatformRecord, flag: Flag) -> bool {
    let mut ranked: Vec<(f64, OptFlags)> = (0..=255u8)
        .map(|bits| {
            let flags = OptFlags::from_bits(bits);
            (record.time_for(flags), flags)
        })
        .collect();
    ranked.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("times are finite"));
    let take = (ranked.len() / 10).max(1);
    let with_flag = ranked[..take]
        .iter()
        .filter(|(_, f)| f.contains(flag))
        .count();
    with_flag * 2 >= take
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::results::{ShaderPlatformRecord, ShaderRecord, VariantRecord};

    fn study_with_one_shader(fast_flag: Flag) -> StudyResults {
        let mut flag_to_variant = vec![0usize; 256];
        for bits in 0..=255u8 {
            if OptFlags::from_bits(bits).contains(fast_flag) {
                flag_to_variant[bits as usize] = 1;
            }
        }
        let mut flag_changes_code = vec![false; 8];
        flag_changes_code[fast_flag.bit() as usize] = true;
        StudyResults {
            shaders: vec![ShaderRecord {
                name: "s".into(),
                family: "f".into(),
                loc: 10,
                arm_static_cycles: 5.0,
                unique_variants: 2,
                flag_changes_code,
            }],
            measurements: vec![ShaderPlatformRecord {
                shader: "s".into(),
                vendor: "AMD".into(),
                backend: "desktop".into(),
                driver_source_version: "450".into(),
                original_ns: 1000.0,
                variants: vec![
                    VariantRecord {
                        index: 0,
                        flag_bits: vec![0],
                        mean_ns: 1000.0,
                        stddev_ns: 1.0,
                    },
                    VariantRecord {
                        index: 1,
                        flag_bits: vec![],
                        mean_ns: 800.0,
                        stddev_ns: 1.0,
                    },
                ],
                flag_to_variant,
            }],
            skipped: vec![],
            cache: Default::default(),
            search: vec![],
            warnings: vec![],
            specializations: vec![],
        }
    }

    #[test]
    fn beneficial_flag_is_applicable_and_optimal() {
        let study = study_with_one_shader(Flag::Unroll);
        let table = flag_applicability(&study, "AMD");
        let unroll = table.iter().find(|f| f.flag == Flag::Unroll).unwrap();
        assert_eq!(unroll.total_shaders, 1);
        assert_eq!(unroll.changes_code, 1);
        assert_eq!(unroll.in_optimal_set, 1);
        assert_eq!(unroll.applicability_rate(), 1.0);
        assert_eq!(unroll.optimality_rate(), 1.0);
        // ADCE neither changes code nor appears required in the optimal set.
        let adce = table.iter().find(|f| f.flag == Flag::Adce).unwrap();
        assert_eq!(adce.changes_code, 0);
    }

    #[test]
    fn harmful_flag_is_applicable_but_not_optimal() {
        // Make the flag's variant slower instead.
        let mut study = study_with_one_shader(Flag::Hoist);
        study.measurements[0].variants[1].mean_ns = 1300.0;
        let table = flag_applicability(&study, "AMD");
        let hoist = table.iter().find(|f| f.flag == Flag::Hoist).unwrap();
        assert_eq!(hoist.changes_code, 1);
        assert_eq!(hoist.in_optimal_set, 0);
    }

    #[test]
    fn unknown_platform_yields_empty_counts() {
        let study = study_with_one_shader(Flag::Unroll);
        let table = flag_applicability(&study, "Intel");
        assert!(table.iter().all(|f| f.total_shaders == 0));
    }
}
