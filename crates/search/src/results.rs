//! Study result data structures.
//!
//! Everything the analyses (Figs. 5–9, Table I) need is captured in plain
//! serialisable records, so a full exhaustive sweep can be saved to JSON and
//! re-analysed without re-running the measurement.

use prism_core::{CacheStats, OptFlags};

/// Timing of one distinct shader variant on one platform.
#[derive(Debug, Clone, PartialEq)]
pub struct VariantRecord {
    /// Variant index within the shader's variant set.
    pub index: usize,
    /// All flag combinations (as raw 8-bit masks) that produce this variant.
    pub flag_bits: Vec<u8>,
    /// Mean measured frame time in nanoseconds.
    pub mean_ns: f64,
    /// Standard deviation of the frame times.
    pub stddev_ns: f64,
}

serde::impl_serde_struct!(VariantRecord {
    index,
    flag_bits,
    mean_ns,
    stddev_ns
});

/// All measurements of one shader on one platform.
#[derive(Debug, Clone, PartialEq)]
pub struct ShaderPlatformRecord {
    /// Corpus shader name.
    pub shader: String,
    /// Platform name (`Vendor::name()`).
    pub vendor: String,
    /// The emission backend whose text this platform's driver consumed for
    /// every variant (`"desktop"`, `"gles"`, `"spirv"` or `"msl"`, see
    /// `prism_emit::BackendKind::name`).
    pub backend: String,
    /// The source-form version token the driver front-end reported seeing
    /// in the submitted variant text (e.g. `"450"`, `"310 es"`,
    /// `"spirv-1.0"`, `"metal"`) — end-to-end evidence the right backend's
    /// form reached the right platform.
    pub driver_source_version: String,
    /// Frame time of the original, untouched shader (not passed through the
    /// offline optimizer at all) — the baseline for Figs. 3, 5, 6 and 7. On
    /// every non-desktop-GLSL platform the original is measured through the
    /// conversion path (§III-C(d) for GLES; likewise SPIR-V and MSL), as
    /// desktop GLSL cannot run there.
    pub original_ns: f64,
    /// Distinct variant timings.
    pub variants: Vec<VariantRecord>,
    /// For each of the 256 flag masks, the index of the variant it produces.
    pub flag_to_variant: Vec<usize>,
}

// Hand-written (not `impl_serde_struct!`) because the version field was
// renamed when the study outgrew GLSL-only drivers: new reports serialise
// `driver_source_version`, old `study-report.json` artifacts carrying
// `driver_glsl_version` still deserialize.
impl serde::Serialize for ShaderPlatformRecord {
    fn to_value(&self) -> serde::Value {
        serde::Value::Obj(vec![
            ("shader".to_string(), self.shader.to_value()),
            ("vendor".to_string(), self.vendor.to_value()),
            ("backend".to_string(), self.backend.to_value()),
            (
                "driver_source_version".to_string(),
                self.driver_source_version.to_value(),
            ),
            ("original_ns".to_string(), self.original_ns.to_value()),
            ("variants".to_string(), self.variants.to_value()),
            (
                "flag_to_variant".to_string(),
                self.flag_to_variant.to_value(),
            ),
        ])
    }
}

impl serde::Deserialize for ShaderPlatformRecord {
    fn from_value(v: &serde::Value) -> Result<Self, String> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| format!("missing field `{name}` in ShaderPlatformRecord"))
        };
        let version = match v.get("driver_source_version") {
            Some(value) => value,
            // Pre-rename reports (GLSL-only study runs).
            None => field("driver_glsl_version")?,
        };
        Ok(ShaderPlatformRecord {
            shader: serde::Deserialize::from_value(field("shader")?)?,
            vendor: serde::Deserialize::from_value(field("vendor")?)?,
            backend: serde::Deserialize::from_value(field("backend")?)?,
            driver_source_version: serde::Deserialize::from_value(version)?,
            original_ns: serde::Deserialize::from_value(field("original_ns")?)?,
            variants: serde::Deserialize::from_value(field("variants")?)?,
            flag_to_variant: serde::Deserialize::from_value(field("flag_to_variant")?)?,
        })
    }
}

impl ShaderPlatformRecord {
    /// Frame time of the variant a flag combination produces.
    pub fn time_for(&self, flags: OptFlags) -> f64 {
        let idx = self.flag_to_variant[flags.bits() as usize];
        self.variants[idx].mean_ns
    }

    /// Frame time of the LunarGlass no-flags baseline (canonicalisation only).
    pub fn baseline_ns(&self) -> f64 {
        self.time_for(OptFlags::NONE)
    }

    /// The fastest variant's (flag set, time).
    pub fn best(&self) -> (OptFlags, f64) {
        let mut best_flags = OptFlags::NONE;
        let mut best_time = f64::INFINITY;
        for bits in 0..=255u8 {
            let flags = OptFlags::from_bits(bits);
            let t = self.time_for(flags);
            if t < best_time {
                best_time = t;
                best_flags = flags;
            }
        }
        (best_flags, best_time)
    }

    /// Percentage speed-up of `flags` relative to the original shader
    /// (positive = faster than the untouched shader).
    pub fn speedup_vs_original(&self, flags: OptFlags) -> f64 {
        percent_speedup(self.original_ns, self.time_for(flags))
    }

    /// Percentage speed-up of the best variant relative to the original.
    pub fn best_speedup_vs_original(&self) -> f64 {
        percent_speedup(self.original_ns, self.best().1)
    }

    /// Percentage speed-up of `flags` relative to the no-flags LunarGlass
    /// baseline (the comparison used for the per-flag violins of Fig. 9).
    pub fn speedup_vs_baseline(&self, flags: OptFlags) -> f64 {
        percent_speedup(self.baseline_ns(), self.time_for(flags))
    }
}

/// Percentage speed-up of `new` versus `old` (positive = `new` is faster).
pub fn percent_speedup(old: f64, new: f64) -> f64 {
    if old <= 0.0 {
        return 0.0;
    }
    (old - new) / old * 100.0
}

/// Static per-shader facts gathered once (platform independent).
#[derive(Debug, Clone, PartialEq)]
pub struct ShaderRecord {
    /// Corpus shader name.
    pub name: String,
    /// Übershader family.
    pub family: String,
    /// Paper's lines-of-code metric (Fig. 4a).
    pub loc: usize,
    /// ARM-style static-analyser total cycles (Fig. 4b).
    pub arm_static_cycles: f64,
    /// Number of distinct variants out of the 256 flag combinations (Fig. 4c).
    pub unique_variants: usize,
    /// For each flag (in `Flag::ALL` order), whether enabling it ever changes
    /// the generated code (the red bars of Fig. 8).
    pub flag_changes_code: Vec<bool>,
}

serde::impl_serde_struct!(ShaderRecord {
    name,
    family,
    loc,
    arm_static_cycles,
    unique_variants,
    flag_changes_code,
});

/// A shader the sweep could not compile, with the reason — recorded instead
/// of silently dropped, so partially incompatible corpora are diagnosable.
#[derive(Debug, Clone, PartialEq)]
pub struct SkippedShader {
    /// Corpus shader name.
    pub name: String,
    /// Übershader family.
    pub family: String,
    /// The compile error, rendered to text.
    pub error: String,
}

serde::impl_serde_struct!(SkippedShader {
    name,
    family,
    error
});

/// Aggregated result of one incremental-search strategy on one platform:
/// how close the strategy's found flag sets get to the exhaustive oracle,
/// and at what fraction of the exhaustive compile cost (one row of the
/// incremental-search table; see `prism_search::driver`).
#[derive(Debug, Clone, PartialEq)]
pub struct SearchRecord {
    /// Platform name (`Vendor::name()`).
    pub vendor: String,
    /// Strategy name (`SearchStrategy::name()`).
    pub strategy: String,
    /// Shaders the strategy searched on this platform.
    pub shaders: usize,
    /// The per-shader compile budget the driver enforced.
    pub budget: usize,
    /// Mean distinct flag combinations compiled per shader (the exhaustive
    /// study compiles all 256).
    pub mean_compiles: f64,
    /// Candidates whose measurement the static prefilter skipped, summed
    /// over shaders (always 0 in oracle mode and with the prefilter off —
    /// the counter that keeps pruning pinned, never silently lossy).
    pub candidates_pruned: usize,
    /// The largest per-shader compile count observed (must be ≤ `budget`).
    pub max_compiles: usize,
    /// Mean percentage speed-up (vs the original shader) of the best
    /// combination the strategy found.
    pub mean_speedup: f64,
    /// Mean speed-up of the exhaustive per-shader oracle (the ceiling).
    pub oracle_mean_speedup: f64,
    /// Mean speed-up of the LunarGlass default flags (the floor a useful
    /// strategy must clear).
    pub default_mean_speedup: f64,
    /// The measurement counts the regret curve is sampled at (powers of two
    /// up to the budget, then the budget; see
    /// `prism_search::bandit::RegretTracker::checkpoints_for`).
    pub regret_checkpoints: Vec<usize>,
    /// Mean regret (speedup percentage points behind the exhaustive oracle)
    /// of the deploy-now choice after each checkpoint's worth of
    /// measurements — the Fig.-regret curve, one value per checkpoint.
    pub mean_regret: Vec<f64>,
    /// Mean regret at the full budget (the last curve point).
    pub regret_final: f64,
}

// Hand-written (not `impl_serde_struct!`) because the regret fields postdate
// the first study-report.json artifacts: new reports serialise them, old
// reports without them still deserialize (empty curve, zero final regret).
impl serde::Serialize for SearchRecord {
    fn to_value(&self) -> serde::Value {
        serde::Value::Obj(vec![
            ("vendor".to_string(), self.vendor.to_value()),
            ("strategy".to_string(), self.strategy.to_value()),
            ("shaders".to_string(), self.shaders.to_value()),
            ("budget".to_string(), self.budget.to_value()),
            ("mean_compiles".to_string(), self.mean_compiles.to_value()),
            (
                "candidates_pruned".to_string(),
                self.candidates_pruned.to_value(),
            ),
            ("max_compiles".to_string(), self.max_compiles.to_value()),
            ("mean_speedup".to_string(), self.mean_speedup.to_value()),
            (
                "oracle_mean_speedup".to_string(),
                self.oracle_mean_speedup.to_value(),
            ),
            (
                "default_mean_speedup".to_string(),
                self.default_mean_speedup.to_value(),
            ),
            (
                "regret_checkpoints".to_string(),
                self.regret_checkpoints.to_value(),
            ),
            ("mean_regret".to_string(), self.mean_regret.to_value()),
            ("regret_final".to_string(), self.regret_final.to_value()),
        ])
    }
}

impl serde::Deserialize for SearchRecord {
    fn from_value(v: &serde::Value) -> Result<Self, String> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| format!("missing field `{name}` in SearchRecord"))
        };
        // Pre-regret reports have no curve; default rather than fail.
        let regret_checkpoints = match v.get("regret_checkpoints") {
            Some(value) => serde::Deserialize::from_value(value)?,
            None => Vec::new(),
        };
        let mean_regret = match v.get("mean_regret") {
            Some(value) => serde::Deserialize::from_value(value)?,
            None => Vec::new(),
        };
        let regret_final = match v.get("regret_final") {
            Some(value) => serde::Deserialize::from_value(value)?,
            None => 0.0,
        };
        // Pre-prefilter reports never pruned; absent means 0.
        let candidates_pruned = match v.get("candidates_pruned") {
            Some(value) => serde::Deserialize::from_value(value)?,
            None => 0,
        };
        Ok(SearchRecord {
            vendor: serde::Deserialize::from_value(field("vendor")?)?,
            strategy: serde::Deserialize::from_value(field("strategy")?)?,
            shaders: serde::Deserialize::from_value(field("shaders")?)?,
            budget: serde::Deserialize::from_value(field("budget")?)?,
            mean_compiles: serde::Deserialize::from_value(field("mean_compiles")?)?,
            candidates_pruned,
            max_compiles: serde::Deserialize::from_value(field("max_compiles")?)?,
            mean_speedup: serde::Deserialize::from_value(field("mean_speedup")?)?,
            oracle_mean_speedup: serde::Deserialize::from_value(field("oracle_mean_speedup")?)?,
            default_mean_speedup: serde::Deserialize::from_value(field("default_mean_speedup")?)?,
            regret_checkpoints,
            mean_regret,
            regret_final,
        })
    }
}

impl SearchRecord {
    /// Mean fraction of the exhaustive 256 combinations compiled.
    pub fn compile_fraction(&self) -> f64 {
        self.mean_compiles / 256.0
    }

    /// Fraction of the oracle's mean speed-up the strategy achieved. When
    /// the oracle itself gains nothing (≤ 0), a strategy that matched it
    /// scores 1.0 and one that fell short scores 0.0 — the ratio would
    /// otherwise flip sign and overstate the worst performers.
    pub fn oracle_fraction(&self) -> f64 {
        if self.oracle_mean_speedup <= 0.0 {
            if self.mean_speedup >= self.oracle_mean_speedup - 1e-12 {
                1.0
            } else {
                0.0
            }
        } else {
            self.mean_speedup / self.oracle_mean_speedup
        }
    }
}

/// One measured `(shader, platform, specialization)` arm of the
/// uniform-value specialization study: the AZP axis, where a shader is
/// cloned under an assumption about a uniform's dynamic value (zero, one, an
/// exact constant), folded, and deployed behind a runtime guard. The record
/// captures both sides of the bargain — the win when the assumption holds
/// and the guard cost every draw pays whether it holds or not.
///
/// Every recorded arm was differentially interp-verified against the
/// general program (both guard directions, bit-for-bit) before measurement;
/// `interp_confirms` pins how many comparisons backed it.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecializationRecord {
    /// Corpus shader name.
    pub shader: String,
    /// Platform name (`Vendor::name()`).
    pub vendor: String,
    /// Canonical specialization key display (`u0=0`, `u1=1,u3=0`, ...).
    pub spec: String,
    /// The flag combination both sides were compiled under (raw 8-bit mask).
    pub flag_bits: u8,
    /// Mean frame time of the general program at those flags (ns).
    pub general_ns: f64,
    /// Mean frame time of the specialized program, valid only while the
    /// assumption holds (ns).
    pub specialized_ns: f64,
    /// Modelled host-side guard evaluation cost per draw (ns) — the
    /// per-lane uniform compares run before binding either program, paid on
    /// every draw, winning or not.
    pub guard_ns: f64,
    /// Differential interpreter comparisons that confirmed this arm
    /// bit-for-bit before it was measured.
    pub interp_confirms: usize,
}

serde::impl_serde_struct!(SpecializationRecord {
    shader,
    vendor,
    spec,
    flag_bits,
    general_ns,
    specialized_ns,
    guard_ns,
    interp_confirms
});

impl SpecializationRecord {
    /// Percentage speed-up of the guarded dispatch when the assumption
    /// holds (specialized program + guard vs general program). Positive
    /// means the specialization pays for its guard.
    pub fn win_when_holds(&self) -> f64 {
        percent_speedup(self.general_ns, self.specialized_ns + self.guard_ns)
    }

    /// Percentage overhead of the guarded dispatch when the assumption does
    /// NOT hold (general program + guard vs general program alone) — the
    /// cost of being wrong about a batch. Always ≥ 0.
    pub fn overhead_when_violated(&self) -> f64 {
        -percent_speedup(self.general_ns, self.general_ns + self.guard_ns)
    }
}

/// Corpus-level compile-cache statistics of one study run: how much
/// optimization and emission work the sweep performed, and how much was
/// shared — within a shader's 256 combinations and, with the shared
/// [`CorpusCache`](prism_core::CorpusCache), *across* shaders (übershader
/// family members reusing each other's stage transitions and emitted text).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheRecord {
    /// Whether the sweep shared one corpus-wide cache across all sessions.
    pub shared: bool,
    /// The store's counters (see [`CacheStats`] for field meanings; the
    /// `cross_shader_*` counters are always 0 without the shared cache).
    pub stats: CacheStats,
}

// Serialised flat — `shared` next to the counters — so the JSON stays a
// single small object. Hand-written because the counter struct
// (`CacheStats`) lives in prism-core and is not tied to this crate's record
// shape.
impl serde::Serialize for CacheRecord {
    fn to_value(&self) -> serde::Value {
        let num = |n: usize| serde::Value::Num(n as f64);
        let mut fields = vec![
            ("shared".to_string(), serde::Value::Bool(self.shared)),
            ("sessions".to_string(), num(self.stats.sessions)),
            ("stage_runs".to_string(), num(self.stats.stage_runs)),
            ("stage_hits".to_string(), num(self.stats.stage_hits)),
            (
                "identity_transitions".to_string(),
                num(self.stats.identity_transitions),
            ),
            (
                "cross_shader_stage_hits".to_string(),
                num(self.stats.cross_shader_stage_hits),
            ),
            ("emissions".to_string(), num(self.stats.emissions)),
        ];
        for backend in prism_emit::BackendKind::ALL {
            fields.push((
                format!("emissions_{}", backend.name()),
                num(self.stats.emissions_by_backend[backend.index()]),
            ));
        }
        fields.extend(vec![
            ("emission_hits".to_string(), num(self.stats.emission_hits)),
            (
                "cross_shader_emission_hits".to_string(),
                num(self.stats.cross_shader_emission_hits),
            ),
            ("evictions".to_string(), num(self.stats.evictions)),
            (
                "warm_stage_hits".to_string(),
                num(self.stats.warm_stage_hits),
            ),
            (
                "warm_emission_hits".to_string(),
                num(self.stats.warm_emission_hits),
            ),
            (
                "warm_entries_loaded".to_string(),
                num(self.stats.warm_entries_loaded),
            ),
            (
                "warm_shards_loaded".to_string(),
                num(self.stats.warm_shards_loaded),
            ),
            (
                "warm_shards_skipped".to_string(),
                num(self.stats.warm_shards_skipped),
            ),
            (
                "warm_entries_skipped".to_string(),
                num(self.stats.warm_entries_skipped),
            ),
            (
                "routed_requests".to_string(),
                num(self.stats.routed_requests),
            ),
            (
                "coalesced_requests".to_string(),
                num(self.stats.coalesced_requests),
            ),
            (
                "static_analyses".to_string(),
                num(self.stats.static_analyses),
            ),
            (
                "analysis_memo_hits".to_string(),
                num(self.stats.analysis_memo_hits),
            ),
            (
                "warm_analysis_hits".to_string(),
                num(self.stats.warm_analysis_hits),
            ),
            (
                "warm_verify_rejects".to_string(),
                num(self.stats.warm_verify_rejects),
            ),
        ]);
        serde::Value::Obj(fields)
    }
}

impl serde::Deserialize for CacheRecord {
    fn from_value(v: &serde::Value) -> Result<Self, String> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| format!("missing field `{name}` in CacheRecord"))
        };
        let count = |name: &str| -> Result<usize, String> {
            match field(name)? {
                serde::Value::Num(n) => Ok(*n as usize),
                other => Err(format!("expected number for `{name}`, got {other:?}")),
            }
        };
        // The warm-start counters postdate the first study-report.json
        // artifacts; an absent key means a pre-warm-start report, which is
        // still perfectly usable with the counters at 0.
        let warm_count = |name: &str| -> Result<usize, String> {
            match v.get(name) {
                None => Ok(0),
                Some(serde::Value::Num(n)) => Ok(*n as usize),
                Some(other) => Err(format!("expected number for `{name}`, got {other:?}")),
            }
        };
        let shared = match field("shared")? {
            serde::Value::Bool(b) => *b,
            other => return Err(format!("expected bool for `shared`, got {other:?}")),
        };
        // Like the warm counters, the per-backend split postdates the first
        // artifacts; absent keys stay 0.
        let mut emissions_by_backend = [0usize; prism_emit::BackendKind::COUNT];
        for backend in prism_emit::BackendKind::ALL {
            emissions_by_backend[backend.index()] =
                warm_count(&format!("emissions_{}", backend.name()))?;
        }
        Ok(CacheRecord {
            shared,
            stats: CacheStats {
                sessions: count("sessions")?,
                stage_runs: count("stage_runs")?,
                stage_hits: count("stage_hits")?,
                // The identity-transition counter postdates the transition
                // graph refactor; absent means an older report, counter 0.
                identity_transitions: warm_count("identity_transitions")?,
                cross_shader_stage_hits: count("cross_shader_stage_hits")?,
                emissions: count("emissions")?,
                emissions_by_backend,
                emission_hits: count("emission_hits")?,
                cross_shader_emission_hits: count("cross_shader_emission_hits")?,
                evictions: count("evictions")?,
                warm_stage_hits: warm_count("warm_stage_hits")?,
                warm_emission_hits: warm_count("warm_emission_hits")?,
                warm_entries_loaded: warm_count("warm_entries_loaded")?,
                warm_shards_loaded: warm_count("warm_shards_loaded")?,
                warm_shards_skipped: warm_count("warm_shards_skipped")?,
                warm_entries_skipped: warm_count("warm_entries_skipped")?,
                // The serving counters postdate the warm-start ones; the
                // same absent-key-means-0 compatibility applies.
                routed_requests: warm_count("routed_requests")?,
                coalesced_requests: warm_count("coalesced_requests")?,
                // The static-analysis plane postdates the serving counters.
                static_analyses: warm_count("static_analyses")?,
                analysis_memo_hits: warm_count("analysis_memo_hits")?,
                warm_analysis_hits: warm_count("warm_analysis_hits")?,
                warm_verify_rejects: warm_count("warm_verify_rejects")?,
            },
        })
    }
}

/// A complete study: every shader × platform × variant measurement.
#[derive(Debug, Clone, Default)]
pub struct StudyResults {
    /// Static per-shader facts.
    pub shaders: Vec<ShaderRecord>,
    /// All timing records.
    pub measurements: Vec<ShaderPlatformRecord>,
    /// Shaders the offline optimizer rejected, with the error that caused it.
    pub skipped: Vec<SkippedShader>,
    /// Corpus-level compile-cache statistics of this run.
    pub cache: CacheRecord,
    /// Incremental-search strategy comparison rows (empty unless the study
    /// ran with `StudyConfig::search` enabled).
    pub search: Vec<SearchRecord>,
    /// Non-fatal problems of this run (e.g. a warm-start snapshot that could
    /// not be written) — the measurements are still valid, but the operator
    /// should know.
    pub warnings: Vec<String>,
    /// Uniform-value specialization arms (the AZP axis), when the study ran
    /// with specialization enabled. Empty for flag-only studies.
    pub specializations: Vec<SpecializationRecord>,
}

impl serde::Serialize for StudyResults {
    fn to_value(&self) -> serde::Value {
        serde::Value::Obj(vec![
            ("shaders".to_string(), self.shaders.to_value()),
            ("measurements".to_string(), self.measurements.to_value()),
            ("skipped".to_string(), self.skipped.to_value()),
            ("cache".to_string(), self.cache.to_value()),
            ("search".to_string(), self.search.to_value()),
            ("warnings".to_string(), self.warnings.to_value()),
            (
                "specializations".to_string(),
                self.specializations.to_value(),
            ),
        ])
    }
}

impl serde::Deserialize for StudyResults {
    fn from_value(v: &serde::Value) -> Result<Self, String> {
        let field = |name: &str| {
            v.get(name)
                .ok_or_else(|| format!("missing field `{name}` in StudyResults"))
        };
        // Reports written before the warning channel / the specialization
        // axis landed simply omit those keys; absent means empty, not
        // malformed.
        let warnings = match v.get("warnings") {
            Some(value) => serde::Deserialize::from_value(value)?,
            None => Vec::new(),
        };
        let specializations = match v.get("specializations") {
            Some(value) => serde::Deserialize::from_value(value)?,
            None => Vec::new(),
        };
        Ok(StudyResults {
            shaders: serde::Deserialize::from_value(field("shaders")?)?,
            measurements: serde::Deserialize::from_value(field("measurements")?)?,
            skipped: serde::Deserialize::from_value(field("skipped")?)?,
            cache: serde::Deserialize::from_value(field("cache")?)?,
            search: serde::Deserialize::from_value(field("search")?)?,
            warnings,
            specializations,
        })
    }
}

impl StudyResults {
    /// All measurements for one platform, in shader order.
    pub fn for_platform(&self, vendor: &str) -> Vec<&ShaderPlatformRecord> {
        self.measurements
            .iter()
            .filter(|m| m.vendor == vendor)
            .collect()
    }

    /// The static record of a shader.
    pub fn shader(&self, name: &str) -> Option<&ShaderRecord> {
        self.shaders.iter().find(|s| s.name == name)
    }

    /// The measurement of one shader on one platform.
    pub fn measurement(&self, shader: &str, vendor: &str) -> Option<&ShaderPlatformRecord> {
        self.measurements
            .iter()
            .find(|m| m.shader == shader && m.vendor == vendor)
    }

    /// `true` when every corpus shader made it through the offline optimizer.
    pub fn is_complete(&self) -> bool {
        self.skipped.is_empty()
    }

    /// The platforms present in the study, in first-appearance order.
    pub fn platforms(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for m in &self.measurements {
            if !seen.contains(&m.vendor) {
                seen.push(m.vendor.clone());
            }
        }
        seen
    }

    /// Serialises the study to JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error message when the study
    /// contains a value JSON cannot represent (a non-finite timing) — a
    /// malformed measurement must surface to the report path as an error,
    /// not abort the whole study run with a panic.
    pub fn to_json(&self) -> Result<String, String> {
        serde_json::to_string(self).map_err(|e| e.to_string())
    }

    /// Restores a study from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error message on malformed input.
    pub fn from_json(text: &str) -> Result<StudyResults, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_core::Flag;

    fn record() -> ShaderPlatformRecord {
        // Two variants: the baseline (slower) and an optimized one (faster);
        // flag bit 4 (Unroll) switches to the optimized variant.
        let mut flag_to_variant = vec![0usize; 256];
        for bits in 0..=255u8 {
            if OptFlags::from_bits(bits).contains(Flag::Unroll) {
                flag_to_variant[bits as usize] = 1;
            }
        }
        ShaderPlatformRecord {
            shader: "s".into(),
            vendor: "AMD".into(),
            backend: "desktop".into(),
            driver_source_version: "450".into(),
            original_ns: 1000.0,
            variants: vec![
                VariantRecord {
                    index: 0,
                    flag_bits: vec![0],
                    mean_ns: 1010.0,
                    stddev_ns: 5.0,
                },
                VariantRecord {
                    index: 1,
                    flag_bits: vec![16],
                    mean_ns: 800.0,
                    stddev_ns: 5.0,
                },
            ],
            flag_to_variant,
        }
    }

    #[test]
    fn lookup_and_speedups() {
        let r = record();
        assert_eq!(r.time_for(OptFlags::NONE), 1010.0);
        assert_eq!(r.time_for(OptFlags::only(Flag::Unroll)), 800.0);
        assert_eq!(r.baseline_ns(), 1010.0);
        let (best_flags, best_time) = r.best();
        assert!(best_flags.contains(Flag::Unroll));
        assert_eq!(best_time, 800.0);
        assert!((r.best_speedup_vs_original() - 20.0).abs() < 1e-9);
        // The artefact effect: the no-flag variant is slower than the original.
        assert!(r.speedup_vs_original(OptFlags::NONE) < 0.0);
        assert!((r.speedup_vs_baseline(OptFlags::only(Flag::Unroll)) - 20.79).abs() < 0.1);
    }

    #[test]
    fn percent_speedup_sign_convention() {
        assert!(percent_speedup(100.0, 90.0) > 0.0);
        assert!(percent_speedup(100.0, 110.0) < 0.0);
        assert_eq!(percent_speedup(0.0, 10.0), 0.0);
    }

    #[test]
    fn study_round_trips_through_json() {
        let study = StudyResults {
            shaders: vec![ShaderRecord {
                name: "s".into(),
                family: "f".into(),
                loc: 12,
                arm_static_cycles: 30.0,
                unique_variants: 2,
                flag_changes_code: vec![false; 8],
            }],
            measurements: vec![record()],
            skipped: vec![SkippedShader {
                name: "broken".into(),
                family: "f".into(),
                error: "front-end: unexpected token".into(),
            }],
            cache: CacheRecord {
                shared: true,
                stats: CacheStats {
                    sessions: 1,
                    stage_runs: 7,
                    stage_hits: 21,
                    identity_transitions: 6,
                    cross_shader_stage_hits: 3,
                    emissions: 4,
                    emissions_by_backend: [1, 1, 1, 1],
                    emission_hits: 8,
                    cross_shader_emission_hits: 2,
                    evictions: 5,
                    warm_stage_hits: 6,
                    warm_emission_hits: 1,
                    warm_entries_loaded: 40,
                    warm_shards_loaded: 15,
                    warm_shards_skipped: 1,
                    warm_entries_skipped: 2,
                    routed_requests: 9,
                    coalesced_requests: 4,
                    static_analyses: 7,
                    analysis_memo_hits: 3,
                    warm_analysis_hits: 2,
                    warm_verify_rejects: 1,
                },
            },
            search: vec![SearchRecord {
                vendor: "AMD".into(),
                strategy: "greedy_forward".into(),
                shaders: 1,
                budget: 63,
                mean_compiles: 19.0,
                candidates_pruned: 5,
                max_compiles: 19,
                mean_speedup: 18.5,
                oracle_mean_speedup: 20.0,
                default_mean_speedup: 12.0,
                regret_checkpoints: vec![1, 2, 4, 8, 16, 32, 63],
                mean_regret: vec![5.0, 3.0, 2.0, 1.5, 1.5, 0.5, 0.5],
                regret_final: 0.5,
            }],
            warnings: vec!["warm-start dir was read-only".into()],
            specializations: vec![SpecializationRecord {
                shader: "s".into(),
                vendor: "AMD".into(),
                spec: "u1=0".into(),
                flag_bits: 0b0110_0001,
                general_ns: 1000.0,
                specialized_ns: 850.0,
                guard_ns: 4.0,
                interp_confirms: 10,
            }],
        };
        let json = study.to_json().unwrap();
        let restored = StudyResults::from_json(&json).unwrap();
        assert_eq!(restored.shaders, study.shaders);
        assert_eq!(restored.measurements, study.measurements);
        assert_eq!(restored.skipped, study.skipped);
        assert_eq!(restored.cache, study.cache);
        assert_eq!(restored.search, study.search);
        assert_eq!(restored.warnings, study.warnings);
        assert_eq!(restored.specializations, study.specializations);
        assert_eq!(restored.cache.stats.evictions, 5);
        assert_eq!(restored.cache.stats.warm_stage_hits, 6);
        assert_eq!(restored.cache.stats.warm_shards_skipped, 1);
        let search = &restored.search[0];
        assert!((search.compile_fraction() - 19.0 / 256.0).abs() < 1e-12);
        assert!((search.oracle_fraction() - 0.925).abs() < 1e-12);
        assert!((restored.cache.stats.stage_hit_rate() - 0.75).abs() < 1e-9);
        assert!(!restored.is_complete());
        assert_eq!(restored.platforms(), vec!["AMD".to_string()]);
        assert!(restored.measurement("s", "AMD").is_some());
        assert!(restored.measurement("s", "Intel").is_none());
        assert!(StudyResults::from_json("{broken").is_err());
    }

    #[test]
    fn legacy_glsl_version_key_still_deserializes() {
        // Reports written before the study spoke SPIR-V/MSL used
        // `driver_glsl_version`; they must keep loading under the renamed
        // field, and new reports must serialise the new key.
        let json = serde_json::to_string(&record()).unwrap();
        assert!(json.contains("\"driver_source_version\":\"450\""));
        assert!(!json.contains("driver_glsl_version"));
        let legacy = json.replace("driver_source_version", "driver_glsl_version");
        let restored: ShaderPlatformRecord = serde_json::from_str(&legacy).unwrap();
        assert_eq!(restored, record());
    }

    #[test]
    fn pre_regret_search_records_still_deserialize() {
        // Search rows written before the regret curve existed must keep
        // loading, with an empty curve and zero final regret.
        let old = r#"{"vendor":"AMD","strategy":"ablation","shaders":5,"budget":63,"mean_compiles":10.0,"max_compiles":10,"mean_speedup":17.0,"oracle_mean_speedup":20.0,"default_mean_speedup":12.0}"#;
        let record: SearchRecord = serde_json::from_str(old).unwrap();
        assert_eq!(record.strategy, "ablation");
        assert!(record.regret_checkpoints.is_empty());
        assert!(record.mean_regret.is_empty());
        assert_eq!(record.regret_final, 0.0);
        // Ditto the prefilter counter, which postdates the regret curve.
        assert_eq!(record.candidates_pruned, 0);
    }

    #[test]
    fn pre_warm_start_cache_records_still_deserialize() {
        // study-report.json artifacts written before the warm-start counters
        // existed must stay readable, with the counters defaulted to 0.
        let old = r#"{"shared":true,"sessions":1,"stage_runs":7,"stage_hits":21,"cross_shader_stage_hits":3,"emissions":4,"emission_hits":8,"cross_shader_emission_hits":2,"evictions":5}"#;
        let record: CacheRecord = serde_json::from_str(old).unwrap();
        assert_eq!(record.stats.stage_runs, 7);
        assert_eq!(record.stats.warm_stage_hits, 0);
        assert_eq!(record.stats.warm_shards_skipped, 0);
        assert_eq!(record.stats.static_analyses, 0);
        assert_eq!(record.stats.warm_verify_rejects, 0);
    }

    #[test]
    fn pre_specialization_reports_still_deserialize() {
        // study-report.json artifacts written before the specialization axis
        // (and before the warning channel) omit those keys entirely; they
        // must load with both defaulted to empty.
        let old = r#"{"shaders":[],"measurements":[],"skipped":[],"cache":{"shared":false,"sessions":0,"stage_runs":0,"stage_hits":0,"cross_shader_stage_hits":0,"emissions":0,"emission_hits":0,"cross_shader_emission_hits":0,"evictions":0},"search":[]}"#;
        let restored = StudyResults::from_json(old).unwrap();
        assert!(restored.warnings.is_empty());
        assert!(restored.specializations.is_empty());
    }

    #[test]
    fn specialization_records_report_both_sides_of_the_guard() {
        let rec = SpecializationRecord {
            shader: "s".into(),
            vendor: "AMD".into(),
            spec: "u0=0".into(),
            flag_bits: 0,
            general_ns: 1000.0,
            specialized_ns: 750.0,
            guard_ns: 10.0,
            interp_confirms: 10,
        };
        // Holding: (1000 - 760) / 1000 = 24% win, guard included.
        assert!((rec.win_when_holds() - 24.0).abs() < 1e-9);
        // Violated: the guard is pure overhead, 10/1000 = 1%.
        assert!((rec.overhead_when_violated() - 1.0).abs() < 1e-9);
        assert!(rec.overhead_when_violated() >= 0.0);
    }

    #[test]
    fn non_finite_measurements_serialise_to_an_error_not_a_panic() {
        // JSON cannot represent NaN; `to_json` must surface that as a
        // Result (it used to panic via `.expect`).
        let mut bad = record();
        bad.original_ns = f64::NAN;
        let study = StudyResults {
            measurements: vec![bad],
            ..StudyResults::default()
        };
        let err = study.to_json().unwrap_err();
        assert!(err.contains("non-finite"), "{err}");
    }
}
