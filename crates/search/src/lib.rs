//! # prism-search — exhaustive iterative compilation over flag combinations
//!
//! The experiment driver of the reproduction (§III-A, §VI of the paper):
//! every corpus shader is compiled with all 256 optimization-flag
//! combinations, duplicates are removed, and the original plus every distinct
//! variant is timed on every simulated platform. The resulting
//! [`StudyResults`] feed the analyses behind each figure:
//!
//! * [`policies`] — per-shader-best / default-LunarGlass / best-static
//!   comparisons (Fig. 5, Fig. 6, Fig. 7, Table I),
//! * [`applicability`] — which flags change code and which end up in optimal
//!   sets (Fig. 8),
//! * [`per_flag`] — each flag in isolation against the no-flag baseline
//!   (Fig. 9).

pub mod applicability;
pub mod per_flag;
pub mod policies;
pub mod results;
pub mod sweep;

pub use applicability::{flag_applicability, FlagApplicability};
pub use per_flag::{all_flag_impacts, flag_impact, FlagImpact};
pub use policies::{
    best_static_flags, mean_speedup, minimal_best_static, per_shader_speedups, platform_summaries,
    top_n_mean_best, top_n_speedups, PlatformSummary, Policy,
};
pub use results::{
    percent_speedup, ShaderPlatformRecord, ShaderRecord, SkippedShader, StudyResults, VariantRecord,
};
pub use sweep::{run_study, StudyConfig};
