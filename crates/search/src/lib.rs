//! # prism-search — exhaustive iterative compilation over flag combinations
//!
//! The experiment driver of the reproduction (§III-A, §VI of the paper):
//! every corpus shader is compiled with all 256 optimization-flag
//! combinations, duplicates are removed, and the original plus every distinct
//! variant is timed on every simulated platform. The resulting
//! [`StudyResults`] feed the analyses behind each figure:
//!
//! * [`policies`] — per-shader-best / default-LunarGlass / best-static
//!   comparisons (Fig. 5, Fig. 6, Fig. 7, Table I),
//! * [`applicability`] — which flags change code and which end up in optimal
//!   sets (Fig. 8),
//! * [`per_flag`] — each flag in isolation against the no-flag baseline
//!   (Fig. 9).
//!
//! The exhaustive sweep is no longer the only driver: [`driver`] adds
//! **incremental flag search** — pluggable [`SearchStrategy`] policies
//! (greedy forward-add, greedy backward-drop, per-flag ablation,
//! random-restart hill climbing, plus the [`bandit`] explore/exploit
//! strategies) that explore flag *subsets* under a hard evaluation budget,
//! and a comparison harness reporting how close each strategy gets to the
//! exhaustive oracle at what fraction of the compile cost
//! ([`StudyResults::search`]), regret-vs-measurements curves included.
//! Scoring goes through the [`evaluator`] seam: [`OracleEvaluator`] replays
//! a study's recorded timings (offline, exact), [`LiveEvaluator`] compiles
//! through any shared handle and measures as it searches (online,
//! measurement-in-the-loop — see `prism_serve::CompileService::tune`).

pub mod applicability;
pub mod bandit;
pub mod driver;
pub mod evaluator;
pub mod per_flag;
pub mod policies;
pub mod results;
pub mod static_rank;
pub mod sweep;

pub use applicability::{flag_applicability, FlagApplicability};
pub use bandit::{EpsilonGreedy, RegretTracker, Ucb1};
pub use driver::{
    incremental_search_records, standard_strategies, Ablation, GreedyBackward, GreedyForward,
    RandomRestartHillClimb, SearchConfig, SearchDriver, SearchOutcome, SearchStrategy,
};
pub use evaluator::{
    CompileHandle, EvalCost, Evaluator, LiveEvaluator, OracleEvaluator, StaticCostHook,
};
pub use per_flag::{all_flag_impacts, flag_impact, FlagImpact};
pub use policies::{
    best_static_flags, mean_speedup, minimal_best_static, per_shader_speedups, platform_summaries,
    top_n_mean_best, top_n_speedups, PlatformSummary, Policy,
};
pub use static_rank::{footrule_agreement, static_agreement_rows, StaticRankRow};

pub use results::{
    percent_speedup, SearchRecord, ShaderPlatformRecord, ShaderRecord, SkippedShader,
    SpecializationRecord, StudyResults, VariantRecord,
};
pub use sweep::{run_study, StudyConfig};
