//! The exhaustive iterative-compilation sweep.
//!
//! For every corpus shader: generate the 256 flag-combination variants,
//! deduplicate them (§V-C), submit the original shader and every distinct
//! variant to every platform's driver, and time each with the harness.
//! Shaders are processed in parallel worker threads (the offline tool and the
//! simulated GPUs are pure functions, so this is safe and deterministic).

use crate::results::{ShaderPlatformRecord, ShaderRecord, StudyResults, VariantRecord};
use prism_core::{unique_variants, Flag};
use prism_corpus::{Corpus, ShaderCase};
use prism_gpu::{Platform, Vendor};
use prism_harness::{measure_cost, MeasureConfig};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Configuration of a full study run.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Harness timing configuration.
    pub measure: MeasureConfig,
    /// Platforms to measure on (defaults to all five).
    pub vendors: Vec<Vendor>,
    /// Number of worker threads.
    pub threads: usize,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            measure: MeasureConfig::default(),
            vendors: Vendor::ALL.to_vec(),
            threads: 8,
        }
    }
}

impl StudyConfig {
    /// A reduced configuration for unit tests and quick experiments.
    pub fn quick() -> StudyConfig {
        StudyConfig {
            measure: MeasureConfig::quick(),
            vendors: Vendor::ALL.to_vec(),
            threads: 4,
        }
    }
}

/// Runs the full study over a corpus.
///
/// Shaders that fail to compile (none in the built-in corpus) are skipped, so
/// a partially incompatible external corpus still yields results.
pub fn run_study(corpus: &Corpus, config: &StudyConfig) -> StudyResults {
    let platforms: Vec<Platform> = config.vendors.iter().map(|v| Platform::new(*v)).collect();
    let threads = config.threads.max(1);
    let mut per_shader: Vec<Option<(ShaderRecord, Vec<ShaderPlatformRecord>)>> =
        Vec::with_capacity(corpus.cases.len());
    per_shader.resize_with(corpus.cases.len(), || None);

    crossbeam::thread::scope(|scope| {
        let chunks: Vec<(usize, &[ShaderCase])> = corpus
            .cases
            .chunks(corpus.cases.len().div_ceil(threads).max(1))
            .enumerate()
            .collect();
        let mut handles = Vec::new();
        for (chunk_idx, chunk) in chunks {
            let platforms = &platforms;
            let measure = &config.measure;
            handles.push(scope.spawn(move |_| {
                let mut out = Vec::new();
                for (offset, case) in chunk.iter().enumerate() {
                    out.push((chunk_idx, offset, process_shader(case, platforms, measure)));
                }
                out
            }));
        }
        let chunk_size = corpus.cases.len().div_ceil(threads).max(1);
        for handle in handles {
            for (chunk_idx, offset, result) in handle.join().expect("worker thread panicked") {
                per_shader[chunk_idx * chunk_size + offset] = result;
            }
        }
    })
    .expect("crossbeam scope");

    let mut study = StudyResults::default();
    for entry in per_shader.into_iter().flatten() {
        study.shaders.push(entry.0);
        study.measurements.extend(entry.1);
    }
    study
}

/// Processes one shader: variants, per-platform measurements.
fn process_shader(
    case: &ShaderCase,
    platforms: &[Platform],
    measure: &MeasureConfig,
) -> Option<(ShaderRecord, Vec<ShaderPlatformRecord>)> {
    let variants = unique_variants(&case.source, &case.name).ok()?;

    // Static facts (platform independent). The ARM static analyser runs on
    // the ARM driver's compilation of the original shader, as in the paper.
    let arm = platforms
        .iter()
        .find(|p| p.vendor() == Vendor::Arm)
        .cloned()
        .unwrap_or_else(|| Platform::new(Vendor::Arm));
    let arm_static_cycles = arm
        .submit(&case.source.text, &case.name)
        .map(|c| arm.static_cycles(&c.driver_ir).total())
        .unwrap_or(0.0);

    let flag_changes_code = Flag::ALL
        .iter()
        .map(|f| variants.flag_changes_code(*f))
        .collect();

    let record = ShaderRecord {
        name: case.name.clone(),
        family: case.family.clone(),
        loc: case.lines_of_code(),
        arm_static_cycles,
        unique_variants: variants.unique_count(),
        flag_changes_code,
    };

    let mut measurements = Vec::new();
    for (platform_idx, platform) in platforms.iter().enumerate() {
        let stream_base = stream_id(&case.name, platform_idx);
        // Original (untouched) shader.
        let Ok(original_cost) = platform.submit(&case.source.text, &case.name) else {
            continue;
        };
        let original = measure_cost(platform, &original_cost, measure, stream_base);

        let mut variant_records = Vec::new();
        for variant in &variants.variants {
            let Ok(cost) = platform.submit(&variant.glsl, &case.name) else {
                continue;
            };
            let m = measure_cost(
                platform,
                &cost,
                measure,
                stream_base.wrapping_add(1 + variant.index as u64),
            );
            variant_records.push(VariantRecord {
                index: variant.index,
                flag_bits: variant.flag_sets.iter().map(|f| f.bits()).collect(),
                mean_ns: m.mean_ns,
                stddev_ns: m.stddev_ns,
            });
        }
        if variant_records.len() != variants.variants.len() {
            // A variant failed driver compilation; skip this platform to keep
            // the flag→variant table consistent.
            continue;
        }
        let flag_to_variant = (0..=255u8)
            .map(|bits| variants.by_flags[&prism_core::OptFlags::from_bits(bits)])
            .collect();
        measurements.push(ShaderPlatformRecord {
            shader: case.name.clone(),
            vendor: platform.vendor().name().to_string(),
            original_ns: original.mean_ns,
            variants: variant_records,
            flag_to_variant,
        });
    }
    Some((record, measurements))
}

/// Deterministic per-(shader, platform) noise stream id.
fn stream_id(shader: &str, platform_idx: usize) -> u64 {
    let mut hasher = DefaultHasher::new();
    shader.hash(&mut hasher);
    hasher.finish().wrapping_add((platform_idx as u64) << 48)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_core::OptFlags;

    /// A miniature corpus: the blur flagship plus a couple of family shaders.
    fn mini_corpus() -> Corpus {
        let full = Corpus::gfxbench_like();
        let keep = ["flagship_blur9", "ui_blit_00", "ui_blit_02", "color_grade_01"];
        Corpus {
            cases: full
                .cases
                .into_iter()
                .filter(|c| keep.contains(&c.name.as_str()))
                .collect(),
        }
    }

    #[test]
    fn study_covers_all_shaders_and_platforms() {
        let corpus = mini_corpus();
        let study = run_study(&corpus, &StudyConfig::quick());
        assert_eq!(study.shaders.len(), corpus.len());
        assert_eq!(study.measurements.len(), corpus.len() * Vendor::ALL.len());
        assert_eq!(study.platforms().len(), 5);
        for m in &study.measurements {
            assert!(m.original_ns > 0.0);
            assert!(!m.variants.is_empty());
            assert_eq!(m.flag_to_variant.len(), 256);
        }
    }

    #[test]
    fn blur_best_variant_beats_original_on_every_platform() {
        let corpus = Corpus {
            cases: Corpus::gfxbench_like()
                .cases
                .into_iter()
                .filter(|c| c.name == "flagship_blur9")
                .collect(),
        };
        let study = run_study(&corpus, &StudyConfig::quick());
        for m in &study.measurements {
            let best = m.best_speedup_vs_original();
            assert!(
                best > 1.0,
                "{}: expected a clear win on the blur, got {best:.2}%",
                m.vendor
            );
        }
        // Mobile gains exceed desktop gains (Fig. 3 of the paper).
        let gain = |vendor: &str| {
            study
                .measurement("flagship_blur9", vendor)
                .unwrap()
                .best_speedup_vs_original()
        };
        let desktop_max = gain("Intel").max(gain("AMD")).max(gain("NVIDIA"));
        let mobile_min = gain("ARM").min(gain("Qualcomm"));
        assert!(
            mobile_min > desktop_max * 0.8,
            "mobile {mobile_min:.1}% should be at least comparable to desktop {desktop_max:.1}%"
        );
    }

    #[test]
    fn simple_shaders_have_mostly_identical_variants() {
        let corpus = mini_corpus();
        let study = run_study(&corpus, &StudyConfig::quick());
        let ui = study.shader("ui_blit_00").unwrap();
        assert!(ui.unique_variants <= 6, "got {}", ui.unique_variants);
        let blur = study.shader("flagship_blur9").unwrap();
        assert!(blur.unique_variants > ui.unique_variants);
        assert!(blur.unique_variants <= 64);
    }

    #[test]
    fn adce_never_changes_code_in_the_study() {
        let corpus = mini_corpus();
        let study = run_study(&corpus, &StudyConfig::quick());
        for s in &study.shaders {
            assert!(!s.flag_changes_code[Flag::Adce.bit() as usize], "{}", s.name);
        }
    }

    #[test]
    fn near_identical_variants_time_nearly_identically() {
        let corpus = mini_corpus();
        let study = run_study(&corpus, &StudyConfig::quick());
        // The no-flag and ADCE-only variants are the same code, so they map to
        // the same variant record and thus identical times.
        for m in &study.measurements {
            let none = m.time_for(OptFlags::NONE);
            let adce = m.time_for(OptFlags::only(Flag::Adce));
            assert_eq!(none, adce);
        }
    }
}
