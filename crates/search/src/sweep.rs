//! The exhaustive iterative-compilation sweep.
//!
//! For every corpus shader: open one [`CompileSession`] (lowering the shader
//! to IR exactly once), derive the 256 flag-combination variants through the
//! session's shared schedule snapshots, deduplicate them (§V-C), submit the
//! original shader and every distinct variant to every platform's driver, and
//! time each with the harness. The same session serves all seven platforms —
//! variant generation happens once per shader for the whole study, and each
//! platform's driver receives the text of the emission backend matching its
//! API: the OpenGL desktops get `#version 450` GLSL, the GLES phones get
//! `#version 310 es` text (the paper's glslang → SPIRV-Cross conversion
//! path, §III-C(d)), the Vulkan desktop gets SPIR-V assembly and the Metal
//! phone gets MSL — four source forms derived from the same optimized IR.
//!
//! All sessions memoise against one shared, thread-safe
//! [`CorpusCache`](prism_core::CorpusCache): übershader family members share
//! most of their IR, so one family member's stage transitions and emitted
//! text routinely answer another's lookups. The corpus-level counters land in
//! [`StudyResults::cache`].
//!
//! Shaders are processed on a work-stealing worker pool (the offline tool and
//! the simulated GPUs are pure functions, so this is safe and deterministic):
//! workers pull the next shader from a shared queue, so one expensive
//! flagship shader no longer idles the rest of a pre-assigned chunk.

use crate::driver::{incremental_search_records, SearchConfig};
use crate::results::{
    CacheRecord, ShaderPlatformRecord, ShaderRecord, SkippedShader, SpecializationRecord,
    StudyResults, VariantRecord,
};
use prism_core::specialize::{candidate_keys, default_probe_points, verify_specialization};
use prism_core::{
    CacheStats, CacheStore, CompileSession, CorpusCache, Flag, OptFlags, SessionStats,
};
use prism_corpus::{Corpus, ShaderCase};
use prism_emit::BackendKind;
use prism_gpu::{Platform, Vendor};
use prism_harness::{measure_cost, MeasureConfig};
use rayon::prelude::*;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Configuration of a full study run.
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Harness timing configuration.
    pub measure: MeasureConfig,
    /// Platforms to measure on (defaults to all seven).
    pub vendors: Vec<Vendor>,
    /// Number of worker threads.
    pub threads: usize,
    /// Share one corpus-wide compile cache across all shader sessions
    /// (default). Disable to give every shader a private cache — the
    /// pre-corpus-cache behaviour, kept for benchmarking the difference;
    /// results are byte-identical either way.
    pub shared_cache: bool,
    /// Bound the shared corpus cache to at most this many entries
    /// (LRU-evicted). `None` (default) grows monotonically. Results are
    /// byte-identical either way — only the work counters differ.
    pub cache_budget: Option<usize>,
    /// Run the incremental flag-search comparison after the exhaustive
    /// sweep, filling [`StudyResults::search`] with per-(platform, strategy)
    /// rows. `None` (default) skips it.
    pub search: Option<SearchConfig>,
    /// Persistent warm-start directory for the shared corpus cache. When
    /// set (and `shared_cache` is on), the sweep loads any snapshot found
    /// there before compiling — stale or corrupt shards are skipped, never
    /// trusted — and saves the warmed cache back afterwards, so the next
    /// `run_study` over the same corpus performs strictly fewer stage runs
    /// and emissions with byte-identical results. Warm-vs-cold hit counts
    /// land in [`StudyResults::cache`]. `None` (default) starts cold.
    pub warm_start_dir: Option<std::path::PathBuf>,
    /// Measure up to this many uniform-value specialization candidates per
    /// shader (the AZP axis): each float uniform contributes a `= 0` and a
    /// `= 1` assumption, every applicable-and-effective candidate is
    /// differentially interp-verified against the general program and then
    /// timed on every platform, and the records land in
    /// [`StudyResults::specializations`]. `None` (default) skips the axis.
    pub specialize: Option<usize>,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            measure: MeasureConfig::default(),
            vendors: Vendor::ALL.to_vec(),
            threads: 8,
            shared_cache: true,
            cache_budget: None,
            search: None,
            warm_start_dir: None,
            specialize: None,
        }
    }
}

impl StudyConfig {
    /// A reduced configuration for unit tests and quick experiments.
    pub fn quick() -> StudyConfig {
        StudyConfig {
            measure: MeasureConfig::quick(),
            vendors: Vendor::ALL.to_vec(),
            threads: 4,
            shared_cache: true,
            cache_budget: None,
            search: None,
            warm_start_dir: None,
            specialize: None,
        }
    }

    /// A fresh corpus cache honouring this config's `cache_budget` — the one
    /// constructor behind both the exhaustive sweep's shared cache and the
    /// incremental search phase's, so the two can never be bounded
    /// differently.
    pub fn new_corpus_cache(&self) -> CorpusCache {
        match self.cache_budget {
            Some(budget) => CorpusCache::bounded(budget),
            None => CorpusCache::new(),
        }
    }
}

/// Runs the full study over a corpus.
///
/// Shaders that fail to compile (none in the built-in corpus) are recorded in
/// [`StudyResults::skipped`] with the error that rejected them — as are
/// (shader, platform) rows dropped because a simulated driver rejected the
/// original or a variant — so a partially incompatible corpus still yields
/// results *and* stays diagnosable.
pub fn run_study(corpus: &Corpus, config: &StudyConfig) -> StudyResults {
    let platforms: Vec<Platform> = config.vendors.iter().map(|v| Platform::new(*v)).collect();
    let corpus_cache: Option<Arc<CorpusCache>> = config
        .shared_cache
        .then(|| Arc::new(config.new_corpus_cache()));
    // Warm-start the shared cache before any session opens. Loading is
    // corruption-tolerant (a bad shard is skipped and counted, never
    // trusted), so nothing can fail here; the skip counts surface in
    // `StudyResults::cache`.
    if let (Some(cache), Some(dir)) = (&corpus_cache, &config.warm_start_dir) {
        cache.load(dir);
    }
    // Persistence lives in the shared corpus cache; with private per-session
    // caches there is nothing to load into or save from. Configuring both is
    // a contradiction the operator should hear about, not a silent no-op.
    let warm_start_ignored = config.warm_start_dir.is_some() && !config.shared_cache;
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(config.threads.max(1))
        .build()
        .expect("worker pool");
    let per_shader: Vec<(Result<ProcessedShader, SkippedShader>, Option<SessionStats>)> = pool
        .install(|| {
            corpus
                .cases
                .par_iter()
                .map(|case| {
                    process_shader(
                        case,
                        &platforms,
                        &config.measure,
                        corpus_cache.as_ref(),
                        config.specialize,
                    )
                })
                .collect()
        });

    let mut study = StudyResults::default();
    // Aggregated per-session counters; `sessions` counts every session that
    // *constructed* (lowered) whether or not variant generation then
    // succeeded — the same moment the shared CorpusCache counts them, so the
    // two configurations report comparable records.
    let mut solo_stats = CacheStats::default();
    for (entry, session_stats) in per_shader {
        if let Some(stats) = session_stats {
            solo_stats.sessions += 1;
            solo_stats.stage_runs += stats.stage_runs;
            solo_stats.stage_hits += stats.stage_hits;
            solo_stats.emissions += stats.emissions;
            solo_stats.emission_hits += stats.emission_hits;
        }
        match entry {
            Ok(processed) => {
                study.shaders.push(processed.record);
                study.measurements.extend(processed.measurements);
                study.skipped.extend(processed.platform_failures);
                study.specializations.extend(processed.specializations);
            }
            Err(skipped) => study.skipped.push(skipped),
        }
    }
    study.cache = match &corpus_cache {
        Some(cache) => CacheRecord {
            shared: true,
            stats: cache.stats(),
        },
        None => CacheRecord {
            shared: false,
            stats: solo_stats,
        },
    };
    // Persist the warmed cache for the next run. A save failure (full or
    // read-only disk) must not invalidate the measurements already taken —
    // record it and carry on.
    if let (Some(cache), Some(dir)) = (&corpus_cache, &config.warm_start_dir) {
        if let Err(e) = cache.save(dir) {
            study
                .warnings
                .push(format!("warm-start snapshot not saved: {e}"));
        }
    }
    if warm_start_ignored {
        study.warnings.push(
            "warm_start_dir ignored: persistence requires the shared corpus cache \
             (shared_cache: false)"
                .to_string(),
        );
    }
    if let Some(search) = &config.search {
        study.search = incremental_search_records(corpus, &study, config, search);
    }
    study
}

/// The output of processing one shader that made it through the optimizer.
struct ProcessedShader {
    record: ShaderRecord,
    measurements: Vec<ShaderPlatformRecord>,
    /// Platforms whose driver rejected the original or a variant; recorded so
    /// a missing (shader, platform) row is diagnosable rather than silent.
    platform_failures: Vec<SkippedShader>,
    /// Interp-verified, measured specialization arms (empty unless the study
    /// ran with `StudyConfig::specialize`).
    specializations: Vec<SpecializationRecord>,
}

/// Processes one shader: one compile session (against the shared corpus
/// cache when one is given), variants, per-platform measurements through the
/// platform's declared emission backend. The second tuple element carries the
/// session's own work counters whenever a session was constructed (even if
/// variant generation failed afterwards), for the study's cache record.
fn process_shader(
    case: &ShaderCase,
    platforms: &[Platform],
    measure: &MeasureConfig,
    corpus_cache: Option<&Arc<CorpusCache>>,
    spec_limit: Option<usize>,
) -> (Result<ProcessedShader, SkippedShader>, Option<SessionStats>) {
    let skip = |error: String| SkippedShader {
        name: case.name.clone(),
        family: case.family.clone(),
        error,
    };
    let session = match corpus_cache {
        Some(cache) => CompileSession::with_cache_in_family(
            &case.source,
            &case.name,
            &case.family,
            Arc::clone(cache) as Arc<dyn CacheStore>,
        ),
        None => CompileSession::new(&case.source, &case.name),
    };
    let session = match session {
        Ok(session) => session,
        Err(e) => return (Err(skip(e.to_string())), None),
    };
    let variants = match session.variants() {
        Ok(variants) => variants,
        Err(e) => return (Err(skip(e.to_string())), Some(session.stats())),
    };

    // Static facts (platform independent). The ARM static analyser runs on
    // the ARM driver's compilation of the original shader, as in the paper —
    // which on the Mali toolchain means the GLES conversion of the original.
    let arm = platforms
        .iter()
        .find(|p| p.vendor() == Vendor::Arm)
        .cloned()
        .unwrap_or_else(|| Platform::new(Vendor::Arm));
    let arm_static_cycles = arm
        .submit(&session.base_text_for(BackendKind::Gles), &case.name)
        .map(|c| arm.static_cycles(&c.driver_ir).total())
        .unwrap_or(0.0);

    let flag_changes_code = Flag::ALL
        .iter()
        .map(|f| variants.flag_changes_code(*f))
        .collect();

    let record = ShaderRecord {
        name: case.name.clone(),
        family: case.family.clone(),
        loc: case.lines_of_code(),
        arm_static_cycles,
        unique_variants: variants.unique_count(),
        flag_changes_code,
    };

    let mut measurements = Vec::new();
    let mut platform_failures = Vec::new();
    for (platform_idx, platform) in platforms.iter().enumerate() {
        let vendor = platform.vendor().name();
        let backend = platform.backend();
        let stream_base = stream_id(&case.name, platform_idx);
        // Original (untouched) shader. Desktop OpenGL drivers take the
        // corpus text as-is; no other driver can consume desktop GLSL, so
        // those platforms measure the original through the conversion path —
        // the unoptimized lowering emitted by their backend (§III-C(d) for
        // GLES; the SPIR-V and MSL consumers enter the same way).
        let original_converted;
        let original_text: &str = match backend {
            BackendKind::DesktopGlsl => &case.source.text,
            _ => {
                original_converted = session.base_text_for(backend);
                &original_converted
            }
        };
        let original_cost = match platform.submit(original_text, &case.name) {
            Ok(cost) => cost,
            Err(e) => {
                platform_failures.push(skip(format!("driver({vendor}): original shader: {e}")));
                continue;
            }
        };
        let original = measure_cost(platform, &original_cost, measure, stream_base);

        let mut variant_records = Vec::new();
        let mut variant_failure = None;
        let mut driver_source_version = String::new();
        for variant in &variants.variants {
            // The platform's backend decides which text of this variant the
            // driver sees. The desktop text is the variant's own (dedup key)
            // string; every other form comes from the session's per-backend
            // emission memo over the same optimized IR.
            let emitted_text;
            let text: &str = match backend {
                BackendKind::DesktopGlsl => &variant.glsl,
                _ => match session.text_for(variant.representative_flags(), backend) {
                    Ok(text) => {
                        emitted_text = text;
                        &emitted_text
                    }
                    Err(e) => {
                        variant_failure = Some(skip(format!(
                            "emit({vendor}/{backend}): variant {}: {e}",
                            variant.index
                        )));
                        break;
                    }
                },
            };
            let cost = match platform.submit(text, &case.name) {
                Ok(cost) => cost,
                Err(e) => {
                    variant_failure = Some(skip(format!(
                        "driver({vendor}): variant {}: {e}",
                        variant.index
                    )));
                    break;
                }
            };
            if driver_source_version.is_empty() {
                driver_source_version = cost.source_version.clone();
            }
            let m = measure_cost(
                platform,
                &cost,
                measure,
                stream_base.wrapping_add(1 + variant.index as u64),
            );
            variant_records.push(VariantRecord {
                index: variant.index,
                flag_bits: variant.flag_sets.iter().map(|f| f.bits()).collect(),
                mean_ns: m.mean_ns,
                stddev_ns: m.stddev_ns,
            });
        }
        if let Some(failure) = variant_failure {
            // A variant failed driver compilation; skip this platform to keep
            // the flag→variant table consistent, but record why.
            platform_failures.push(failure);
            continue;
        }
        let flag_to_variant = (0..=255u8)
            .map(|bits| variants.by_flags[&prism_core::OptFlags::from_bits(bits)])
            .collect();
        measurements.push(ShaderPlatformRecord {
            shader: case.name.clone(),
            vendor: vendor.to_string(),
            backend: backend.name().to_string(),
            driver_source_version,
            original_ns: original.mean_ns,
            variants: variant_records,
            flag_to_variant,
        });
    }
    let specializations = match spec_limit {
        Some(limit) => specialization_arms(case, &session, platforms, measure, limit),
        None => Vec::new(),
    };
    (
        Ok(ProcessedShader {
            record,
            measurements,
            platform_failures,
            specializations,
        }),
        Some(session.stats()),
    )
}

/// Modelled host-side guard cost: one vector compare per assumed uniform,
/// run on the CPU before binding either program. The constant is a
/// deterministic stand-in for a handful of scalar compares plus a branch —
/// small against frame times in the hundreds of nanoseconds, but not free,
/// which is exactly the trade-off `fig_specialize` plots.
const GUARD_NS_PER_ASSUMPTION: f64 = 6.0;

/// Measures the uniform-value specialization arms of one shader: every
/// candidate assumption (zero / one per float uniform, up to `limit`) is
/// compiled into a guarded dispatch at the LunarGLASS-default flag set,
/// differentially interp-verified against the general program in **both**
/// guard directions — a divergence is a miscompile and panics the study
/// rather than silently dropping the arm — and then both sides are timed on
/// every platform. Inapplicable keys (e.g. an assumption the fold proves
/// nothing about, leaving the text unchanged) are skipped without a record:
/// an ineffective specialization has no win and no guard worth paying for.
fn specialization_arms(
    case: &ShaderCase,
    session: &CompileSession,
    platforms: &[Platform],
    measure: &MeasureConfig,
    limit: usize,
) -> Vec<SpecializationRecord> {
    let flags = OptFlags::lunarglass_default();
    let probes = default_probe_points();
    let mut records = Vec::new();
    for key in candidate_keys(session.base_ir(), limit) {
        for (platform_idx, platform) in platforms.iter().enumerate() {
            let backend = platform.backend();
            let dispatch = match session.dispatch_for(flags, &key, backend) {
                Ok(dispatch) => dispatch,
                // The key does not apply to this shader (wrong type, fold
                // rejected); nothing to measure.
                Err(_) => continue,
            };
            if !dispatch.is_effective() {
                continue;
            }
            let verification = verify_specialization(&dispatch, &probes)
                .unwrap_or_else(|d| panic!("specialization miscompile: {}", d.message));
            let Ok(general_cost) = platform.submit(&dispatch.general.glsl, &case.name) else {
                continue;
            };
            let Ok(spec_cost) = platform.submit(&dispatch.specialized.glsl, &case.name) else {
                continue;
            };
            // Distinct high-offset streams so spec arms never collide with
            // the variant sweep's `stream_base + 1 + variant.index` range.
            let stream = stream_id(&case.name, platform_idx)
                .wrapping_add(0x0001_0000)
                .wrapping_add((records.len() as u64) << 1);
            let general = measure_cost(platform, &general_cost, measure, stream);
            let specialized = measure_cost(platform, &spec_cost, measure, stream.wrapping_add(1));
            records.push(SpecializationRecord {
                shader: case.name.clone(),
                vendor: platform.vendor().name().to_string(),
                spec: key.to_string(),
                flag_bits: flags.bits(),
                general_ns: general.mean_ns,
                specialized_ns: specialized.mean_ns,
                guard_ns: GUARD_NS_PER_ASSUMPTION * key.assumptions().len() as f64,
                interp_confirms: verification.confirms,
            });
        }
    }
    records
}

/// Deterministic per-(shader, platform) noise stream id.
fn stream_id(shader: &str, platform_idx: usize) -> u64 {
    let mut hasher = DefaultHasher::new();
    shader.hash(&mut hasher);
    hasher.finish().wrapping_add((platform_idx as u64) << 48)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_core::OptFlags;

    /// A miniature corpus: the blur flagship plus a couple of family shaders.
    fn mini_corpus() -> Corpus {
        let full = Corpus::gfxbench_like();
        let keep = [
            "flagship_blur9",
            "ui_blit_00",
            "ui_blit_02",
            "color_grade_01",
        ];
        Corpus {
            cases: full
                .cases
                .into_iter()
                .filter(|c| keep.contains(&c.name.as_str()))
                .collect(),
        }
    }

    #[test]
    fn incompatible_shaders_are_recorded_not_swallowed() {
        // A shader that parses but has a dynamic loop bound, which the
        // lowering rejects: the study must complete, measure the good shader,
        // and record the bad one with its error text.
        let dynamic_loop = prism_glsl::ShaderSource::parse(
            "uniform int n; in vec2 uv; out vec4 c;\n\
             void main() { c = vec4(0.0); for (int i = 0; i < n; i++) { c += vec4(0.1); } }",
        )
        .unwrap();
        let mut corpus = mini_corpus();
        corpus.cases.retain(|c| c.name == "ui_blit_00");
        corpus.cases.push(ShaderCase {
            name: "dynamic_loop".into(),
            family: "synthetic".into(),
            defines: vec![],
            source: dynamic_loop,
        });

        let study = run_study(&corpus, &StudyConfig::quick());
        assert_eq!(study.shaders.len(), 1);
        assert!(!study.is_complete());
        assert_eq!(study.skipped.len(), 1);
        let skipped = &study.skipped[0];
        assert_eq!(skipped.name, "dynamic_loop");
        assert_eq!(skipped.family, "synthetic");
        assert!(
            skipped.error.contains("loop"),
            "error should name the cause, got: {}",
            skipped.error
        );
    }

    #[test]
    fn study_covers_all_shaders_and_platforms() {
        let corpus = mini_corpus();
        let study = run_study(&corpus, &StudyConfig::quick());
        assert_eq!(study.shaders.len(), corpus.len());
        assert_eq!(study.measurements.len(), corpus.len() * Vendor::ALL.len());
        assert_eq!(study.platforms().len(), 7);
        for m in &study.measurements {
            assert!(m.original_ns > 0.0);
            assert!(!m.variants.is_empty());
            assert_eq!(m.flag_to_variant.len(), 256);
        }
        // All four source forms are exercised, and every row records which
        // form its driver parsed.
        use std::collections::HashSet;
        let backends: HashSet<&str> = study
            .measurements
            .iter()
            .map(|m| m.backend.as_str())
            .collect();
        assert_eq!(backends.len(), 4, "{backends:?}");
        for m in &study.measurements {
            let expected = prism_emit::BackendKind::from_name(&m.backend)
                .expect("recorded backend resolves")
                .version();
            assert_eq!(
                m.driver_source_version, expected,
                "{}/{}",
                m.shader, m.vendor
            );
        }
    }

    #[test]
    fn blur_best_variant_beats_original_on_every_platform() {
        let corpus = Corpus {
            cases: Corpus::gfxbench_like()
                .cases
                .into_iter()
                .filter(|c| c.name == "flagship_blur9")
                .collect(),
        };
        let study = run_study(&corpus, &StudyConfig::quick());
        for m in &study.measurements {
            let best = m.best_speedup_vs_original();
            // Desktop wins are small (the noise-free model's NVIDIA best is
            // 0.86%), so "clear" means clear of the noise floor, not large.
            assert!(
                best > 0.5,
                "{}: expected a clear win on the blur, got {best:.2}%",
                m.vendor
            );
        }
        // Mobile gains exceed desktop gains (Fig. 3 of the paper).
        let gain = |vendor: &str| {
            study
                .measurement("flagship_blur9", vendor)
                .unwrap()
                .best_speedup_vs_original()
        };
        let desktop_max = gain("Intel").max(gain("AMD")).max(gain("NVIDIA"));
        let mobile_min = gain("ARM").min(gain("Qualcomm"));
        assert!(
            mobile_min > desktop_max * 0.8,
            "mobile {mobile_min:.1}% should be at least comparable to desktop {desktop_max:.1}%"
        );
    }

    #[test]
    fn simple_shaders_have_mostly_identical_variants() {
        let corpus = mini_corpus();
        let study = run_study(&corpus, &StudyConfig::quick());
        let ui = study.shader("ui_blit_00").unwrap();
        assert!(ui.unique_variants <= 6, "got {}", ui.unique_variants);
        let blur = study.shader("flagship_blur9").unwrap();
        assert!(blur.unique_variants > ui.unique_variants);
        assert!(blur.unique_variants <= 64);
    }

    #[test]
    fn adce_never_changes_code_in_the_study() {
        let corpus = mini_corpus();
        let study = run_study(&corpus, &StudyConfig::quick());
        for s in &study.shaders {
            assert!(
                !s.flag_changes_code[Flag::Adce.bit() as usize],
                "{}",
                s.name
            );
        }
    }

    #[test]
    fn warm_start_makes_the_second_sweep_strictly_cheaper_and_identical() {
        let corpus = mini_corpus();
        let dir = std::env::temp_dir().join(format!(
            "prism-sweep-warm-{}-{:p}",
            std::process::id(),
            &corpus
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let config = StudyConfig {
            warm_start_dir: Some(dir.clone()),
            ..StudyConfig::quick()
        };

        let cold = run_study(&corpus, &config);
        let warm = run_study(&corpus, &config);
        let _ = std::fs::remove_dir_all(&dir);

        assert_eq!(cold.cache.stats.warm_entries_loaded, 0);
        assert!(cold.warnings.is_empty(), "{:?}", cold.warnings);
        assert!(warm.cache.stats.warm_entries_loaded > 0);
        assert!(warm.cache.stats.warm_stage_hits > 0);
        assert!(warm.cache.stats.warm_emission_hits > 0);
        assert_eq!(warm.cache.stats.warm_shards_skipped, 0);
        // The warm run re-did strictly less work than the cold run...
        assert!(warm.cache.stats.stage_runs < cold.cache.stats.stage_runs);
        assert!(warm.cache.stats.emissions < cold.cache.stats.emissions);
        // ...and changed nothing about what was measured.
        assert_eq!(warm.shaders, cold.shaders);
        assert_eq!(warm.measurements, cold.measurements);
        assert_eq!(warm.skipped, cold.skipped);
    }

    #[test]
    fn warm_start_dir_without_shared_cache_warns_and_writes_nothing() {
        let mut corpus = mini_corpus();
        corpus.cases.truncate(1);
        let dir = std::env::temp_dir().join(format!(
            "prism-sweep-warm-unshared-{}-{:p}",
            std::process::id(),
            &corpus
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let study = run_study(
            &corpus,
            &StudyConfig {
                shared_cache: false,
                warm_start_dir: Some(dir.clone()),
                ..StudyConfig::quick()
            },
        );
        assert!(
            study
                .warnings
                .iter()
                .any(|w| w.contains("warm_start_dir ignored")),
            "operator must hear about the contradictory config: {:?}",
            study.warnings
        );
        assert!(!dir.exists(), "nothing must be written without persistence");
    }

    #[test]
    fn save_failure_is_a_warning_not_a_lost_study() {
        let mut corpus = mini_corpus();
        corpus.cases.truncate(1);
        // A warm-start dir whose *parent component is a regular file*: the
        // snapshot save cannot create the directory no matter the process's
        // privileges (the suite may run as root, where read-only permission
        // bits alone would not fail the write).
        let blocker = std::env::temp_dir().join(format!(
            "prism-sweep-blocker-{}-{:p}",
            std::process::id(),
            &corpus
        ));
        std::fs::write(&blocker, b"not a directory").unwrap();
        let study = run_study(
            &corpus,
            &StudyConfig {
                warm_start_dir: Some(blocker.join("snapshot")),
                ..StudyConfig::quick()
            },
        );
        let _ = std::fs::remove_file(&blocker);
        assert!(
            study
                .warnings
                .iter()
                .any(|w| w.contains("warm-start snapshot not saved")),
            "save failure must surface as a warning: {:?}",
            study.warnings
        );
        // The measurements already taken are unharmed.
        assert_eq!(study.shaders.len(), 1);
        assert_eq!(study.measurements.len(), Vendor::ALL.len());
        assert!(study.skipped.is_empty());
    }

    #[test]
    fn specialization_arms_are_verified_measured_and_deterministic() {
        let corpus = mini_corpus();
        let config = StudyConfig {
            specialize: Some(4),
            ..StudyConfig::quick()
        };
        let study = run_study(&corpus, &config);
        assert!(
            !study.specializations.is_empty(),
            "the mini corpus has float uniforms whose zero/one folds change code"
        );
        let probes = default_probe_points().len();
        for rec in &study.specializations {
            // Both guard directions across every probe point confirmed
            // bit-for-bit before the arm was measured.
            assert_eq!(
                rec.interp_confirms,
                probes * 2,
                "{}/{}",
                rec.shader,
                rec.spec
            );
            assert!(rec.general_ns > 0.0 && rec.specialized_ns > 0.0);
            assert!(rec.guard_ns > 0.0);
            assert_eq!(rec.flag_bits, OptFlags::lunarglass_default().bits());
        }
        // Effective zero-folds delete work; at least one arm must win even
        // after paying its guard.
        assert!(
            study
                .specializations
                .iter()
                .any(|r| r.win_when_holds() > 0.0),
            "no specialization arm won: {:?}",
            study
                .specializations
                .iter()
                .map(|r| (r.shader.as_str(), r.spec.as_str(), r.win_when_holds()))
                .collect::<Vec<_>>()
        );
        // The axis is as deterministic as the rest of the study.
        let again = run_study(&corpus, &config);
        assert_eq!(again.specializations, study.specializations);
        // Specialized variants ride the same transition/emission planes: the
        // extra axis must raise cache work *hits*, not only runs.
        let flag_only = run_study(&corpus, &StudyConfig::quick());
        assert!(study.cache.stats.stage_hits > flag_only.cache.stats.stage_hits);
    }

    #[test]
    fn near_identical_variants_time_nearly_identically() {
        let corpus = mini_corpus();
        let study = run_study(&corpus, &StudyConfig::quick());
        // The no-flag and ADCE-only variants are the same code, so they map to
        // the same variant record and thus identical times.
        for m in &study.measurements {
            let none = m.time_for(OptFlags::NONE);
            let adce = m.time_for(OptFlags::only(Flag::Adce));
            assert_eq!(none, adce);
        }
    }
}
