//! Explore/exploit strategies and regret accounting for online flag search.
//!
//! The greedy and ablation strategies in [`crate::driver`] are fine when
//! evaluations are cheap (oracle mode replays a recorded timing), but online
//! tuning pays real device time per evaluation, so the question becomes the
//! classic bandit one: which of the 8 flag *toggles* is worth the next
//! measurement? This module ships two standard answers —
//! [`EpsilonGreedy`] and [`Ucb1`] — framed over toggle-arms on an incumbent
//! configuration, plus the [`RegretTracker`] that replays any strategy's
//! evaluation log against the exhaustive oracle to produce the
//! regret-vs-measurements curves reported in
//! [`SearchRecord`](crate::results::SearchRecord) and rendered by
//! `prism_report::fig_regret`.
//!
//! Both bandits are **warm-started**: their first evaluation is the driver's
//! [`warm_start`](crate::driver::SearchDriver::warm_start) combination (the
//! übershader family's best-known set when the evaluator carries one, the
//! LunarGlass default otherwise), and when the warm start differs from the
//! default policy the default is measured too, as an up-front baseline.
//! Because both anchors are evaluated before any exploration and the driver
//! keeps the best-seen combination, a bandit can never report a result worse
//! than its prior *or* the default — the same "never lose to the default"
//! property [`GreedyBackward`](crate::driver::GreedyBackward) has.

use crate::driver::{SearchDriver, SearchStrategy};
use crate::results::ShaderPlatformRecord;
use prism_core::{Flag, OptFlags};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Reward in `[0, 1]` for measuring `time` when the incumbent best is
/// `best`: 0.5 is "no change", 1.0 is "halved the frame time".
fn reward(best: f64, time: f64) -> f64 {
    ((best - time) / best.max(1e-9)).clamp(-1.0, 1.0) * 0.5 + 0.5
}

/// Shared bandit loop: arms are the 8 single-flag toggles applied to the
/// incumbent best configuration. `pick` chooses the next arm from the
/// (pulls, reward sums, total pulls) statistics; the loop evaluates the
/// toggled candidate, updates the arm's statistics, and adopts the candidate
/// as incumbent when it improves. Memoised evaluations (a candidate already
/// seen) still update arm statistics — otherwise a deterministic policy
/// would re-pick the same arm forever — and an iteration backstop bounds the
/// loop even when every evaluation is free.
fn run_toggle_bandit(
    driver: &SearchDriver,
    mut pick: impl FnMut(&[usize; 8], &[f64; 8], usize) -> usize,
) {
    let mut incumbent = driver.warm_start();
    let Some(mut incumbent_time) = driver.evaluate(incumbent) else {
        return;
    };
    // Baseline arm: when the warm start is a prior best-known set, also
    // measure the default policy up front (one evaluation; free when they
    // coincide). This keeps the "never lose to the default" guarantee even
    // when the prior came from another shader in the family pool.
    let default = OptFlags::lunarglass_default();
    if default != incumbent {
        if let Some(time) = driver.evaluate(default) {
            if time < incumbent_time {
                incumbent = default;
                incumbent_time = time;
            }
        } else {
            return;
        }
    }
    let mut pulls = [0usize; 8];
    let mut rewards = [0.0f64; 8];
    let max_iterations = driver.budget() * 8 + 64;
    for _ in 0..max_iterations {
        if driver.compiles() >= driver.budget() {
            return;
        }
        let total: usize = pulls.iter().sum();
        let arm = pick(&pulls, &rewards, total).min(7);
        let flag = Flag::ALL[arm];
        let candidate = if incumbent.contains(flag) {
            incumbent.without(flag)
        } else {
            incumbent.with(flag)
        };
        let Some(time) = driver.evaluate(candidate) else {
            return;
        };
        pulls[arm] += 1;
        rewards[arm] += reward(incumbent_time, time);
        if time < incumbent_time {
            incumbent = candidate;
            incumbent_time = time;
        }
    }
}

/// ε-greedy over the 8 flag toggles: with probability `epsilon` pull a
/// uniformly random arm, otherwise the arm with the best mean reward so far
/// (untried arms count as optimistic and are tried first, in flag order).
/// The RNG stream is keyed on (seed, shader, platform) via the driver's
/// context seed, so runs are reproducible.
pub struct EpsilonGreedy {
    /// Base RNG seed (combined with the driver's context seed).
    pub seed: u64,
    /// Exploration probability in `[0, 1]`.
    pub epsilon: f64,
}

impl SearchStrategy for EpsilonGreedy {
    fn name(&self) -> &'static str {
        "epsilon_greedy"
    }

    fn run(&self, driver: &SearchDriver) {
        let mut rng = StdRng::seed_from_u64(self.seed ^ driver.context_seed());
        let epsilon = self.epsilon.clamp(0.0, 1.0);
        run_toggle_bandit(driver, |pulls, rewards, _total| {
            // Draw the coin before any early return so the stream advances
            // identically regardless of the arm statistics.
            let explore = (rng.next_u64() as f64 / u64::MAX as f64) < epsilon;
            if explore {
                return (rng.next_u64() % 8) as usize;
            }
            if let Some(untried) = pulls.iter().position(|&p| p == 0) {
                return untried;
            }
            let mut best = 0;
            let mut best_mean = f64::NEG_INFINITY;
            for arm in 0..8 {
                let mean = rewards[arm] / pulls[arm] as f64;
                if mean > best_mean {
                    best = arm;
                    best_mean = mean;
                }
            }
            best
        });
    }
}

/// UCB1 over the 8 flag toggles: pull the arm maximising
/// `mean + exploration * sqrt(ln(total) / pulls)`, trying every arm once
/// first (in flag order). Fully deterministic — no RNG at all — so its
/// evaluation log, and therefore its perf-gate counters, are stable by
/// construction.
pub struct Ucb1 {
    /// Width of the confidence bonus (the classic value is `sqrt(2)`).
    pub exploration: f64,
}

impl SearchStrategy for Ucb1 {
    fn name(&self) -> &'static str {
        "ucb1"
    }

    fn run(&self, driver: &SearchDriver) {
        let exploration = self.exploration;
        run_toggle_bandit(driver, |pulls, rewards, total| {
            if let Some(untried) = pulls.iter().position(|&p| p == 0) {
                return untried;
            }
            let mut best = 0;
            let mut best_score = f64::NEG_INFINITY;
            let ln_total = (total.max(1) as f64).ln();
            for arm in 0..8 {
                let mean = rewards[arm] / pulls[arm] as f64;
                let score = mean + exploration * (ln_total / pulls[arm] as f64).sqrt();
                if score > best_score {
                    best = arm;
                    best_score = score;
                }
            }
            best
        });
    }
}

/// Regret-vs-measurements curve for one strategy run on one (shader,
/// platform), replayed from the driver's evaluation log against the
/// exhaustive oracle.
///
/// At checkpoint `k` the tracker asks: *if tuning had stopped after `k`
/// evaluations, which combination would we deploy, and how many speedup
/// percentage points does it leave on the table versus the exhaustive
/// best?* Deploy choice is the best of the first `k` log entries (by time,
/// then fewer flags, then flag bits — the driver's own tie-break); regret is
/// clamped at zero. In oracle mode the curve is non-increasing by
/// construction: a longer prefix can only improve the deploy choice.
#[derive(Debug, Clone, PartialEq)]
pub struct RegretTracker {
    checkpoints: Vec<usize>,
    curve: Vec<f64>,
}

impl RegretTracker {
    /// The measurement-count checkpoints for a `budget`: powers of two below
    /// it, then the budget itself — `1, 2, 4, … budget`.
    pub fn checkpoints_for(budget: usize) -> Vec<usize> {
        let budget = budget.max(1);
        let mut points = Vec::new();
        let mut k = 1usize;
        while k < budget {
            points.push(k);
            k *= 2;
        }
        points.push(budget);
        points
    }

    /// Replays `log` (the driver's ordered evaluation log) against `record`
    /// at the checkpoints for `budget`.
    pub fn from_log(
        log: &[(OptFlags, f64)],
        record: &ShaderPlatformRecord,
        budget: usize,
    ) -> RegretTracker {
        let checkpoints = RegretTracker::checkpoints_for(budget);
        let oracle = record.best_speedup_vs_original();
        let mut curve = Vec::with_capacity(checkpoints.len());
        for &k in &checkpoints {
            let deploy = log
                .iter()
                .take(k)
                .min_by(|a, b| {
                    a.1.partial_cmp(&b.1)
                        .expect("frame times are finite")
                        .then_with(|| a.0.len().cmp(&b.0.len()))
                        .then_with(|| a.0.bits().cmp(&b.0.bits()))
                })
                .map(|(flags, _)| *flags);
            let regret = match deploy {
                Some(flags) => (oracle - record.speedup_vs_original(flags)).max(0.0),
                // An empty prefix deploys nothing: full regret.
                None => oracle.max(0.0),
            };
            curve.push(regret);
        }
        RegretTracker { checkpoints, curve }
    }

    /// The measurement counts the curve is sampled at.
    pub fn checkpoints(&self) -> &[usize] {
        &self.checkpoints
    }

    /// Regret (speedup percentage points behind the oracle) per checkpoint.
    pub fn curve(&self) -> &[f64] {
        &self.curve
    }

    /// Regret at the final checkpoint (the full budget).
    pub fn final_regret(&self) -> f64 {
        self.curve.last().copied().unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::standard_strategies;
    use crate::evaluator::OracleEvaluator;
    use crate::results::VariantRecord;
    use crate::SearchConfig;
    use prism_core::CompileSession;
    use prism_emit::BackendKind;
    use prism_glsl::ShaderSource;

    const BLURRY: &str = r#"
        uniform sampler2D tex; uniform vec4 ambient; in vec2 uv; out vec4 c;
        void main() {
            const vec2[] offs = vec2[](vec2(-0.01), vec2(0.0), vec2(0.01));
            c = vec4(0.0);
            float total = 0.0;
            for (int i = 0; i < 3; i++) {
                total += 0.25;
                c += texture(tex, uv + offs[i]) * 2.0 * ambient;
            }
            c /= total;
        }
    "#;

    fn synthetic_record(fast_flag: Flag, bonus_flag: Flag) -> ShaderPlatformRecord {
        let mut flag_to_variant = vec![0usize; 256];
        for bits in 0..=255u8 {
            let flags = OptFlags::from_bits(bits);
            flag_to_variant[bits as usize] =
                match (flags.contains(fast_flag), flags.contains(bonus_flag)) {
                    (true, true) => 2,
                    (true, false) => 1,
                    _ => 0,
                };
        }
        ShaderPlatformRecord {
            shader: "synthetic".into(),
            vendor: "AMD".into(),
            backend: "desktop".into(),
            driver_source_version: "450".into(),
            original_ns: 1000.0,
            variants: vec![
                VariantRecord {
                    index: 0,
                    flag_bits: vec![0],
                    mean_ns: 1010.0,
                    stddev_ns: 1.0,
                },
                VariantRecord {
                    index: 1,
                    flag_bits: vec![],
                    mean_ns: 900.0,
                    stddev_ns: 1.0,
                },
                VariantRecord {
                    index: 2,
                    flag_bits: vec![],
                    mean_ns: 850.0,
                    stddev_ns: 1.0,
                },
            ],
            flag_to_variant,
        }
    }

    fn session() -> CompileSession {
        CompileSession::new(&ShaderSource::parse(BLURRY).unwrap(), "synthetic").unwrap()
    }

    fn oracle_driver<'a>(
        session: &'a CompileSession,
        record: &'a ShaderPlatformRecord,
        budget: usize,
    ) -> SearchDriver<'a> {
        SearchDriver::over(
            Box::new(OracleEvaluator::new(
                session,
                record,
                BackendKind::DesktopGlsl,
            )),
            budget,
        )
    }

    #[test]
    fn bandits_are_deterministic_and_never_lose_to_their_warm_start() {
        let session = session();
        let record = synthetic_record(Flag::Unroll, Flag::Gvn);
        let default_time = record.time_for(OptFlags::lunarglass_default());
        for strategy in [
            Box::new(EpsilonGreedy {
                seed: 7,
                epsilon: 0.2,
            }) as Box<dyn SearchStrategy>,
            Box::new(Ucb1 { exploration: 1.5 }),
        ] {
            let run = || {
                let driver = oracle_driver(&session, &record, 24);
                strategy.run(&driver);
                driver.outcome(strategy.name())
            };
            let a = run();
            let b = run();
            assert_eq!(a, b, "{} must reproduce exactly", strategy.name());
            assert!(a.compiles <= 24, "{a:?}");
            assert!(
                a.best_ns <= default_time,
                "{} lost to its warm start: {a:?}",
                strategy.name()
            );
        }
    }

    #[test]
    fn bandits_find_the_two_flag_optimum_with_budget_to_spare() {
        let session = session();
        // Default set = {Unroll, Gvn, …}: the optimum is reachable from the
        // warm start by toggling flags *off*, which both bandits explore.
        let record = synthetic_record(Flag::Unroll, Flag::Gvn);
        for strategy in [
            Box::new(EpsilonGreedy {
                seed: 0x5EED_CAFE,
                epsilon: 0.2,
            }) as Box<dyn SearchStrategy>,
            Box::new(Ucb1 { exploration: 1.5 }),
        ] {
            let driver = oracle_driver(&session, &record, 63);
            strategy.run(&driver);
            let outcome = driver.outcome(strategy.name());
            assert_eq!(
                outcome.best_ns,
                850.0,
                "{} missed the optimum: {outcome:?}",
                strategy.name()
            );
        }
    }

    #[test]
    fn bandits_respect_a_tiny_budget_and_terminate() {
        let session = session();
        let record = synthetic_record(Flag::Unroll, Flag::Gvn);
        for strategy in [
            Box::new(EpsilonGreedy {
                seed: 3,
                epsilon: 0.5,
            }) as Box<dyn SearchStrategy>,
            Box::new(Ucb1 { exploration: 1.5 }),
        ] {
            let driver = oracle_driver(&session, &record, 2);
            strategy.run(&driver);
            let outcome = driver.outcome(strategy.name());
            assert!(outcome.compiles <= 2, "{outcome:?}");
        }
    }

    #[test]
    fn checkpoints_are_powers_of_two_up_to_the_budget() {
        assert_eq!(
            RegretTracker::checkpoints_for(63),
            vec![1, 2, 4, 8, 16, 32, 63]
        );
        assert_eq!(RegretTracker::checkpoints_for(8), vec![1, 2, 4, 8]);
        assert_eq!(RegretTracker::checkpoints_for(1), vec![1]);
        assert_eq!(RegretTracker::checkpoints_for(0), vec![1]);
    }

    #[test]
    fn regret_replays_the_log_and_is_non_increasing_in_oracle_mode() {
        let session = session();
        let record = synthetic_record(Flag::Unroll, Flag::Gvn);
        for strategy in standard_strategies(&SearchConfig::default()) {
            let driver = oracle_driver(&session, &record, 63);
            strategy.run(&driver);
            let tracker = RegretTracker::from_log(&driver.evaluation_log(), &record, 63);
            assert_eq!(tracker.checkpoints(), &[1, 2, 4, 8, 16, 32, 63][..]);
            for pair in tracker.curve().windows(2) {
                assert!(
                    pair[1] <= pair[0] + 1e-12,
                    "{}: regret increased: {:?}",
                    strategy.name(),
                    tracker.curve()
                );
            }
            assert!(tracker.final_regret() >= 0.0);
        }
        // A strategy that finds the exhaustive optimum ends at zero regret.
        let driver = oracle_driver(&session, &record, 63);
        crate::driver::GreedyForward.run(&driver);
        let tracker = RegretTracker::from_log(&driver.evaluation_log(), &record, 63);
        assert_eq!(tracker.final_regret(), 0.0);
    }
}
