//! The evaluation seam of incremental flag search.
//!
//! A [`SearchDriver`](crate::driver::SearchDriver) used to be hardwired to
//! score candidates against a pre-measured exhaustive
//! [`ShaderPlatformRecord`] — which made search strictly *offline*: it could
//! replay the study's timings but never run where no exhaustive sweep has
//! been paid for. This module owns the seam instead: an [`Evaluator`] turns
//! a flag combination into a frame time and keeps a cost ledger
//! ([`EvalCost`]), and the driver only enforces budget + memoisation on top.
//!
//! Two evaluators ship:
//!
//! * [`OracleEvaluator`] — today's behaviour, bit for bit: compile through a
//!   live [`CompileSession`] (so the compile *cost* is real and
//!   pay-as-you-go against the warm cache), read the *timing* from the
//!   exhaustive study's record. Used by
//!   [`incremental_search_records`](crate::driver::incremental_search_records)
//!   and everything Figure-10 shaped, where the oracle comparison must be
//!   exact.
//! * [`LiveEvaluator`] — measurement-in-the-loop: compile through any
//!   compile handle (a closure — typically a `prism_serve::CompileService`,
//!   so search traffic and serving traffic share one memo plane), submit the
//!   emitted text to a [`Platform`]'s driver, and time it with the harness
//!   under a deterministic per-shader noise stream. No exhaustive record is
//!   required or consulted.

use crate::results::ShaderPlatformRecord;
use prism_core::{CompileSession, OptFlags};
use prism_emit::BackendKind;
use prism_gpu::Platform;
use prism_harness::{measure_cost, MeasureConfig};
use std::cell::RefCell;
use std::sync::Arc;

/// What one search run has spent so far, in the units that matter to each
/// evaluator: compiles are the pay-as-you-go cost both modes share;
/// measurements (and the frames behind them) exist only in live mode, where
/// device time is the scarce resource.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalCost {
    /// Distinct flag combinations compiled.
    pub compiles: usize,
    /// Timing measurements taken (live mode; 0 for the oracle).
    pub measurements: usize,
    /// Total frames sampled across those measurements.
    pub measured_frames: usize,
    /// Candidates whose measurement was skipped because the static cost
    /// model ranked them strictly behind an already-measured arm (the
    /// static prefilter; 0 when the prefilter is off or in oracle mode).
    pub candidates_pruned: usize,
}

/// A source of frame times for flag combinations — the thing a
/// [`SearchDriver`](crate::driver::SearchDriver) wraps with budget and
/// memoisation. `evaluate` is called at most once per distinct combination
/// (the driver memoises); returning `None` reports an evaluation failure and
/// stops the strategy the same way budget exhaustion does.
pub trait Evaluator {
    /// Frame time (nanoseconds) of the variant `flags` produces, or `None`
    /// when this combination cannot be evaluated.
    fn evaluate(&self, flags: OptFlags) -> Option<f64>;

    /// Deterministic seed component tied to this evaluator's (shader,
    /// platform) identity, for reproducible randomised strategies. Uses
    /// FNV-1a rather than `DefaultHasher` so the stream — and therefore the
    /// perf gate's committed search counters — is stable across Rust
    /// releases.
    fn context_seed(&self) -> u64;

    /// The cost ledger so far.
    fn cost(&self) -> EvalCost;

    /// The combination a warm-started strategy should evaluate first —
    /// the übershader family's best-known set when one is known. `None`
    /// means "no prior": strategies fall back to the LunarGlass default.
    fn warm_start(&self) -> Option<OptFlags> {
        None
    }
}

/// FNV-1a over `shader NUL vendor` — the (shader, platform) identity hash
/// both evaluators key their RNG streams on.
pub(crate) fn context_seed_for(shader: &str, vendor: &str) -> u64 {
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    for byte in shader.bytes().chain([0u8]).chain(vendor.bytes()) {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// The offline evaluator: compiles through a live [`CompileSession`] (real,
/// incremental compile cost against the warm cache) and replays the
/// exhaustive study's deterministic timing for whatever variant the flags
/// produce — so strategy results are *exactly* comparable to the oracle.
pub struct OracleEvaluator<'a> {
    session: &'a CompileSession,
    record: &'a ShaderPlatformRecord,
    backend: BackendKind,
    ledger: RefCell<EvalCost>,
}

impl<'a> OracleEvaluator<'a> {
    /// An evaluator over `session`, scoring against `record`, emitting
    /// through `backend` (the platform's declared backend).
    pub fn new(
        session: &'a CompileSession,
        record: &'a ShaderPlatformRecord,
        backend: BackendKind,
    ) -> OracleEvaluator<'a> {
        OracleEvaluator {
            session,
            record,
            backend,
            ledger: RefCell::new(EvalCost::default()),
        }
    }

    /// The record being scored against (timing oracle and shader identity).
    pub fn record(&self) -> &ShaderPlatformRecord {
        self.record
    }
}

impl Evaluator for OracleEvaluator<'_> {
    fn evaluate(&self, flags: OptFlags) -> Option<f64> {
        // The actual pay-as-you-go compilation: exactly this combination,
        // through the platform's backend, against the warm session cache.
        self.session.text_for(flags, self.backend).ok()?;
        self.ledger.borrow_mut().compiles += 1;
        Some(self.record.time_for(flags))
    }

    fn context_seed(&self) -> u64 {
        context_seed_for(&self.record.shader, &self.record.vendor)
    }

    fn cost(&self) -> EvalCost {
        *self.ledger.borrow()
    }
}

/// The compile handle a [`LiveEvaluator`] draws emitted text from. The
/// `Arc<str>` return is deliberate: a `prism_serve::CompileService` answers
/// with its emission memo's shared handle, so search traffic that hits
/// text the serving plane already emitted costs a refcount bump, not a copy.
pub type CompileHandle<'a> = Box<dyn Fn(OptFlags) -> Result<Arc<str>, String> + 'a>;

/// The static-cost hook a [`LiveEvaluator`] prefilters through: maps a flag
/// combination to the static cost model's estimated cycles for the variant
/// it produces (typically `prism_serve::CompileService::analyze`, so the
/// walk is memoised per `(fingerprint, personality)` in the corpus cache).
/// `None` means "no static estimate" — the candidate is measured normally.
pub type StaticCostHook<'a> = Box<dyn Fn(OptFlags) -> Option<f64> + 'a>;

/// The measurement-in-the-loop evaluator: compile through a shared handle,
/// submit to the platform's driver, time with the harness. Every evaluation
/// spends real (simulated) device time, tracked in the ledger — the driver's
/// budget is therefore a *measurement* budget, the scarce resource of online
/// tuning.
pub struct LiveEvaluator<'a> {
    compile: CompileHandle<'a>,
    platform: &'a Platform,
    shader: String,
    measure: MeasureConfig,
    stream: u64,
    warm: Option<OptFlags>,
    static_cost: Option<StaticCostHook<'a>>,
    /// Best measured arm so far as (measured ns, static cost) — the
    /// incumbent the prefilter compares candidates against.
    incumbent: RefCell<Option<(f64, f64)>>,
    ledger: RefCell<EvalCost>,
}

impl<'a> LiveEvaluator<'a> {
    /// A live evaluator for `shader` on `platform`, compiling through
    /// `compile` (typically a closure over a `CompileService`) and timing
    /// each variant with `measure`. The noise stream is derived from the
    /// (shader, platform) identity, keeping runs reproducible.
    pub fn new(
        compile: CompileHandle<'a>,
        platform: &'a Platform,
        shader: impl Into<String>,
        measure: MeasureConfig,
    ) -> LiveEvaluator<'a> {
        let shader = shader.into();
        let stream = context_seed_for(&shader, platform.vendor().name());
        LiveEvaluator {
            compile,
            platform,
            shader,
            measure,
            stream,
            warm: None,
            static_cost: None,
            incumbent: RefCell::new(None),
            ledger: RefCell::new(EvalCost::default()),
        }
    }

    /// Warm-start hint: the family's best-known set, evaluated first by the
    /// explore/exploit strategies.
    pub fn with_warm_start(mut self, flags: OptFlags) -> LiveEvaluator<'a> {
        self.warm = Some(flags);
        self
    }

    /// Installs the static prefilter: before spending a timing measurement
    /// on a candidate, ask `hook` for its static cost and — once at least
    /// one arm has been measured — skip candidates whose static cost is at
    /// or above the best measured arm's. A pruned candidate
    /// still compiles (the hook needs the optimized IR) but costs zero
    /// measurements; it reports a *pessimistic* predicted time, scaled above
    /// the incumbent by the static-cost ratio, so the deploy-now choice can
    /// never land on an arm nobody measured. The warm-start set and the
    /// LunarGlass default are exempt — the quality floor both the search
    /// table and the tune tenant assert against is always truly measured.
    pub fn with_static_prefilter(mut self, hook: StaticCostHook<'a>) -> LiveEvaluator<'a> {
        self.static_cost = Some(hook);
        self
    }

    /// Measures `text` under this evaluator's deterministic noise stream and
    /// updates the ledger (and the prefilter incumbent, when `static_cost`
    /// carries the candidate's static estimate).
    fn measure(&self, text: &str, flags: OptFlags, static_cost: Option<f64>) -> Option<f64> {
        let cost = self.platform.submit(text, &self.shader).ok()?;
        // One stream per flag combination (mirroring the sweep's
        // per-variant streams), so re-tuning reproduces byte-identical
        // measurements.
        let stream = self.stream.wrapping_add(1 + flags.bits() as u64);
        let m = measure_cost(self.platform, &cost, &self.measure, stream);
        let mut ledger = self.ledger.borrow_mut();
        ledger.measurements += 1;
        ledger.measured_frames += m.samples;
        if let Some(s) = static_cost {
            let mut incumbent = self.incumbent.borrow_mut();
            if incumbent.is_none_or(|(best_ns, _)| m.mean_ns < best_ns) {
                *incumbent = Some((m.mean_ns, s));
            }
        }
        Some(m.mean_ns)
    }
}

impl Evaluator for LiveEvaluator<'_> {
    fn evaluate(&self, flags: OptFlags) -> Option<f64> {
        let text = (self.compile)(flags).ok()?;
        self.ledger.borrow_mut().compiles += 1;
        let Some(hook) = &self.static_cost else {
            return self.measure(&text, flags, None);
        };
        let Some(s) = hook(flags) else {
            // No static estimate for this candidate: measure it normally
            // (but it cannot seed the incumbent without a static cost).
            return self.measure(&text, flags, None);
        };
        let exempt = Some(flags) == self.warm || flags == OptFlags::lunarglass_default();
        if !exempt {
            if let Some((best_ns, best_static)) = *self.incumbent.borrow() {
                if s >= best_static && best_static > 0.0 {
                    // Statically dominated (at-or-above the incumbent: equal
                    // static cost almost always means the flags collapsed to
                    // the incumbent's own optimized variant, and re-timing it
                    // under a fresh noise stream buys nothing): skip the
                    // measurement and report a prediction strictly worse
                    // than the incumbent, so neither the strategy's
                    // best-seen nor the prefix-best deploy choice can select
                    // an unmeasured arm.
                    self.ledger.borrow_mut().candidates_pruned += 1;
                    return Some(best_ns * (s / best_static) * (1.0 + 1e-9));
                }
            }
        }
        self.measure(&text, flags, Some(s))
    }

    fn context_seed(&self) -> u64 {
        self.stream
    }

    fn cost(&self) -> EvalCost {
        *self.ledger.borrow()
    }

    fn warm_start(&self) -> Option<OptFlags> {
        self.warm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_gpu::Vendor;

    const SHADER: &str = "uniform sampler2D tex; uniform vec4 tint; in vec2 uv; out vec4 c;\n\
        void main() { c = texture(tex, uv) * tint * 2.0 * tint; }";

    fn live_session() -> CompileSession {
        let source = prism_glsl::ShaderSource::parse(SHADER).unwrap();
        CompileSession::new(&source, "live").unwrap()
    }

    #[test]
    fn live_evaluator_measures_deterministically_and_ledgers() {
        let session = live_session();
        let platform = Platform::new(Vendor::Amd);
        let run = || {
            let compile: CompileHandle = Box::new(|flags| {
                session
                    .text_for(flags, BackendKind::DesktopGlsl)
                    .map_err(|e| e.to_string())
            });
            let eval = LiveEvaluator::new(compile, &platform, "live", MeasureConfig::quick());
            let t_none = eval.evaluate(OptFlags::NONE).unwrap();
            let t_all = eval.evaluate(OptFlags::all()).unwrap();
            (t_none, t_all, eval.cost())
        };
        let (a_none, a_all, a_cost) = run();
        let (b_none, b_all, b_cost) = run();
        assert_eq!((a_none, a_all), (b_none, b_all));
        assert_eq!(a_cost, b_cost);
        assert_eq!(a_cost.compiles, 2);
        assert_eq!(a_cost.measurements, 2);
        assert_eq!(
            a_cost.measured_frames,
            2 * MeasureConfig::quick().total_frames()
        );
        assert!(a_none > 0.0 && a_all > 0.0);
    }

    #[test]
    fn live_evaluator_reports_compile_failures_as_none() {
        let platform = Platform::new(Vendor::Intel);
        let compile: CompileHandle = Box::new(|_| Err("down".to_string()));
        let eval = LiveEvaluator::new(compile, &platform, "down", MeasureConfig::quick());
        assert!(eval.evaluate(OptFlags::NONE).is_none());
        assert_eq!(eval.cost(), EvalCost::default());
    }

    #[test]
    fn static_prefilter_skips_dominated_candidates_but_measures_exempt_arms() {
        let session = live_session();
        let platform = Platform::new(Vendor::Amd);
        let compile: CompileHandle = Box::new(|flags| {
            session
                .text_for(flags, BackendKind::DesktopGlsl)
                .map_err(|e| e.to_string())
        });
        // Synthetic static model: every extra flag costs more cycles, so
        // anything beyond the empty set is statically dominated.
        let hook: StaticCostHook = Box::new(|flags| Some(1.0 + flags.len() as f64));
        let eval = LiveEvaluator::new(compile, &platform, "prefilter", MeasureConfig::quick())
            .with_static_prefilter(hook);

        let t_none = eval.evaluate(OptFlags::NONE).unwrap();
        // Dominated: pruned with a pessimistic prediction strictly above the
        // incumbent, and no timing measurement spent.
        let t_all = eval.evaluate(OptFlags::all()).unwrap();
        assert!(
            t_all > t_none,
            "pruned arm must predict worse: {t_all} vs {t_none}"
        );
        // The LunarGlass default is exempt: measured even though dominated.
        let t_default = eval.evaluate(OptFlags::lunarglass_default()).unwrap();
        assert!(t_default > 0.0);

        let cost = eval.cost();
        assert_eq!(cost.compiles, 3, "pruned arms still compile");
        assert_eq!(
            cost.measurements, 2,
            "only the undominated + exempt arms measure"
        );
        assert_eq!(cost.candidates_pruned, 1);
    }

    #[test]
    fn warm_start_defaults_to_none_and_is_settable() {
        let platform = Platform::new(Vendor::Arm);
        let compile: CompileHandle = Box::new(|_| Err("unused".to_string()));
        let eval = LiveEvaluator::new(compile, &platform, "w", MeasureConfig::quick());
        assert_eq!(eval.warm_start(), None);
        let compile: CompileHandle = Box::new(|_| Err("unused".to_string()));
        let eval = LiveEvaluator::new(compile, &platform, "w", MeasureConfig::quick())
            .with_warm_start(OptFlags::all());
        assert_eq!(eval.warm_start(), Some(OptFlags::all()));
    }
}
