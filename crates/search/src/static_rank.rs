//! Static-rank vs measured-rank agreement — the honest reproduction of the
//! paper's Fig. 4b claim.
//!
//! The paper characterises shaders with ARM's offline static analyser and
//! implicitly asks the reader to trust that static per-pipe cycle counts
//! track real frame times. This module measures that trust directly: for
//! every (shader, platform) the exhaustive study timed, rank the distinct
//! variants once by the [`prism_analyze::CostModel`]'s estimated cycles and
//! once by their measured mean frame time, and score how far the two
//! rankings disagree with the **Spearman footrule**
//! `F = Σ|rank_static(i) − rank_measured(i)|`, normalised to an agreement in
//! `[0, 1]` via the footrule's maximum `⌊n²/2⌋` (attained by reversed
//! rankings). Agreement 1.0 means the static model orders variants exactly
//! as the platform's driver + timer do; 0.0 means it orders them backwards.
//!
//! These rows are what `prism_report::fig_static` renders, and what
//! justifies the search tenant's static prefilter
//! ([`SearchConfig::static_prefilter`](crate::driver::SearchConfig)): the
//! prefilter is only as safe as the static ranking is faithful.

use crate::results::StudyResults;
use prism_analyze::CostModel;
use prism_core::OptFlags;
use prism_corpus::Corpus;
use prism_gpu::Vendor;

/// Static-vs-measured rank agreement of one (shader, platform): one row of
/// the `fig_static` table.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticRankRow {
    /// Platform name (`Vendor::name()`).
    pub vendor: String,
    /// Shader name.
    pub shader: String,
    /// Distinct variants ranked (the shader's deduplicated variant count).
    pub variants: usize,
    /// Raw Spearman footrule distance between the two rankings.
    pub footrule: f64,
    /// Normalised agreement in `[0, 1]`: `1 − F / ⌊n²/2⌋`.
    pub agreement: f64,
}

serde::impl_serde_struct!(StaticRankRow {
    vendor,
    shader,
    variants,
    footrule,
    agreement
});

/// Competition ranks of `values` (0-based): position in the ascending sort,
/// ties broken by original index so the ranking is deterministic.
fn ranks(values: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| {
        values[a]
            .partial_cmp(&values[b])
            .expect("costs are finite")
            .then_with(|| a.cmp(&b))
    });
    let mut rank = vec![0usize; values.len()];
    for (position, index) in order.into_iter().enumerate() {
        rank[index] = position;
    }
    rank
}

/// Spearman footrule distance and normalised agreement between two value
/// vectors of equal length (each is ranked ascending first). Lists shorter
/// than two elements agree trivially (footrule 0, agreement 1).
pub fn footrule_agreement(a: &[f64], b: &[f64]) -> (f64, f64) {
    assert_eq!(a.len(), b.len(), "rankings must cover the same items");
    let n = a.len();
    if n < 2 {
        return (0.0, 1.0);
    }
    let ra = ranks(a);
    let rb = ranks(b);
    let footrule: f64 = ra.iter().zip(&rb).map(|(x, y)| x.abs_diff(*y) as f64).sum();
    let max = ((n * n) / 2) as f64;
    (footrule, 1.0 - footrule / max)
}

/// One `fig_static` row per (shader, platform) of an exhaustively measured
/// study: each distinct variant's optimized IR is re-derived through a
/// compile session (memoised — one representative flag set per variant) and
/// costed by the platform personality's static model, then the static
/// ranking is scored against the study's measured ranking. Shaders the
/// optimizer rejected, records for unknown platforms, and degenerate
/// single-variant records are skipped, mirroring the sweep's own policy.
pub fn static_agreement_rows(corpus: &Corpus, study: &StudyResults) -> Vec<StaticRankRow> {
    let mut rows = Vec::new();
    for case in &corpus.cases {
        let Ok(session) = prism_core::CompileSession::new(&case.source, &case.name) else {
            continue;
        };
        for record in study.measurements.iter().filter(|m| m.shader == case.name) {
            let Some(vendor) = Vendor::from_name(&record.vendor) else {
                continue;
            };
            let model = CostModel::for_vendor(vendor);
            let mut static_costs = Vec::new();
            let mut measured = Vec::new();
            for variant in &record.variants {
                // Any flag set mapping to this variant reproduces its IR;
                // take the first recorded one as the representative.
                let Some(&bits) = variant.flag_bits.first() else {
                    continue;
                };
                let Ok(compiled) = session.compile(OptFlags::from_bits(bits)) else {
                    continue;
                };
                static_costs.push(model.cost(&compiled.ir).estimated_cycles);
                measured.push(variant.mean_ns);
            }
            if static_costs.len() < 2 {
                continue;
            }
            let (footrule, agreement) = footrule_agreement(&static_costs, &measured);
            rows.push(StaticRankRow {
                vendor: record.vendor.clone(),
                shader: record.shader.clone(),
                variants: static_costs.len(),
                footrule,
                agreement,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_rankings_agree_perfectly() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        let (footrule, agreement) = footrule_agreement(&a, &b);
        assert_eq!(footrule, 0.0);
        assert_eq!(agreement, 1.0);
    }

    #[test]
    fn reversed_rankings_have_zero_agreement() {
        // The footrule maximum ⌊n²/2⌋ is attained exactly by the reversed
        // permutation, so a backwards static model scores 0.
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [40.0, 30.0, 20.0, 10.0];
        let (footrule, agreement) = footrule_agreement(&a, &b);
        assert_eq!(footrule, 8.0);
        assert_eq!(agreement, 0.0);
    }

    #[test]
    fn one_swap_costs_two_footrule_steps() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 30.0, 20.0];
        let (footrule, agreement) = footrule_agreement(&a, &b);
        assert_eq!(footrule, 2.0);
        assert!((agreement - (1.0 - 2.0 / 4.0)).abs() < 1e-12);
    }

    #[test]
    fn degenerate_rankings_agree_trivially() {
        assert_eq!(footrule_agreement(&[], &[]), (0.0, 1.0));
        assert_eq!(footrule_agreement(&[5.0], &[7.0]), (0.0, 1.0));
    }

    #[test]
    fn ties_rank_deterministically_by_index() {
        // Equal values keep their original order, so re-running the ranking
        // is byte-stable — what keeps fig_static reproducible.
        assert_eq!(ranks(&[2.0, 2.0, 1.0]), vec![1, 2, 0]);
    }

    #[test]
    fn rows_round_trip_json() {
        let row = StaticRankRow {
            vendor: "ARM".into(),
            shader: "flagship_blur9".into(),
            variants: 12,
            footrule: 14.0,
            agreement: 0.8,
        };
        let json = serde_json::to_string(&row).unwrap();
        let back: StaticRankRow = serde_json::from_str(&json).unwrap();
        assert_eq!(back, row);
    }
}
