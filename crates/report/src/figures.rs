//! Text renderers that regenerate every table and figure of the paper's
//! evaluation from a [`StudyResults`].
//!
//! Each function returns the rows/series the corresponding figure plots; the
//! bench targets in `prism-bench` print them, and `EXPERIMENTS.md` records the
//! paper-reported versus measured values.

use crate::stats::{histogram, mean};
use crate::violin::ViolinSummary;
use prism_core::{Flag, OptFlags};
use prism_search::{
    flag_applicability, flag_impact, per_shader_speedups, platform_summaries, top_n_mean_best,
    top_n_speedups, Policy, StudyResults,
};
use std::fmt::Write;

/// Fig. 3: the motivating blur shader's best speed-up per platform, plus the
/// distribution of best-static speed-ups across all shaders on ARM.
pub fn fig3_motivating(study: &StudyResults, blur_name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 3 — motivating example ({blur_name})");
    let _ = writeln!(out, "  best optimized variant vs. original shader:");
    for vendor in study.platforms() {
        if let Some(m) = study.measurement(blur_name, &vendor) {
            let _ = writeln!(
                out,
                "    {vendor:<10} {:+6.2}%",
                m.best_speedup_vs_original()
            );
        }
    }
    // Right-hand side of Fig. 3: distribution of best-static speed-ups on ARM.
    let records = study.for_platform("ARM");
    if !records.is_empty() {
        let (flags, _) = prism_search::minimal_best_static(&records);
        let speedups = per_shader_speedups(&records, Policy::Static(flags));
        let _ = writeln!(
            out,
            "  ARM best-static ({flags}) speed-up distribution across all shaders:"
        );
        let _ = writeln!(out, "    {}", ViolinSummary::of(&speedups));
    }
    out
}

/// Fig. 4: corpus characterisation — (a) lines of code, (b) ARM static
/// cycles, (c) unique variants per shader.
pub fn fig4_characterization(study: &StudyResults) -> String {
    let mut out = String::new();
    let loc: Vec<f64> = study.shaders.iter().map(|s| s.loc as f64).collect();
    let cycles: Vec<f64> = study.shaders.iter().map(|s| s.arm_static_cycles).collect();
    let variants: Vec<f64> = study
        .shaders
        .iter()
        .map(|s| s.unique_variants as f64)
        .collect();
    let _ = writeln!(
        out,
        "Figure 4 — corpus characterisation ({} shaders)",
        study.shaders.len()
    );
    let _ = writeln!(
        out,
        "  (a) lines of code:       {}",
        distribution_line(&loc)
    );
    let _ = writeln!(
        out,
        "  (b) ARM static cycles:   {}",
        distribution_line(&cycles)
    );
    let _ = writeln!(
        out,
        "  (c) unique variants/256: {}",
        distribution_line(&variants)
    );
    let under_50 = loc.iter().filter(|&&l| l < 50.0).count();
    let _ = writeln!(
        out,
        "      shaders under 50 LoC: {under_50}/{} ({:.0}%)",
        loc.len(),
        100.0 * under_50 as f64 / loc.len().max(1) as f64
    );
    let (edges, counts) = histogram(&loc, 6);
    for (edge, count) in edges.iter().zip(&counts) {
        let _ = writeln!(out, "      LoC >= {edge:6.1}: {count}");
    }
    out
}

fn distribution_line(values: &[f64]) -> String {
    let v = ViolinSummary::of(values);
    format!(
        "min {:.1}  median {:.1}  mean {:.1}  max {:.1}",
        v.min, v.median, v.mean, v.max
    )
}

/// Fig. 5: average speed-up across all shaders for the three policies, per
/// platform.
pub fn fig5_overall(study: &StudyResults) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 5 — average speed-up across all shaders (vs. original)"
    );
    let _ = writeln!(
        out,
        "  {:<10} {:>14} {:>18} {:>14}",
        "platform", "per-shader best", "default LunarGlass", "best static"
    );
    for s in platform_summaries(study) {
        let _ = writeln!(
            out,
            "  {:<10} {:>13.2}% {:>17.2}% {:>13.2}%",
            s.vendor, s.mean_best, s.mean_default, s.mean_best_static
        );
    }
    out
}

/// Fig. 6: average speed-up of the 30 most-improved shaders per platform.
pub fn fig6_top30(study: &StudyResults, n: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 6 — mean speed-up of the {n} most-improved shaders"
    );
    for vendor in study.platforms() {
        let records = study.for_platform(&vendor);
        let top = top_n_mean_best(&records, n);
        let _ = writeln!(out, "  {vendor:<10} {top:+6.2}%");
        for (name, speedup) in top_n_speedups(&records, 5) {
            let _ = writeln!(out, "      {name:<28} {speedup:+6.2}%");
        }
    }
    out
}

/// Table I: the best static flag set per platform.
pub fn table1_best_static(study: &StudyResults) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table I — best static flags per platform");
    let _ = write!(out, "  {:<10}", "platform");
    for flag in Flag::ALL {
        let _ = write!(out, " {:>14}", flag.name());
    }
    let _ = writeln!(out);
    let summaries = platform_summaries(study);
    for s in &summaries {
        let _ = write!(out, "  {:<10}", s.vendor);
        for flag in Flag::ALL {
            let mark = if s.best_static.contains(flag) {
                "yes"
            } else {
                "-"
            };
            let _ = write!(out, " {mark:>14}");
        }
        let _ = writeln!(out);
    }
    // The "All" row: best single set across every platform's records pooled.
    let mut pooled: Vec<&prism_search::ShaderPlatformRecord> = Vec::new();
    for vendor in study.platforms() {
        pooled.extend(study.for_platform(&vendor));
    }
    if !pooled.is_empty() {
        let (flags, _) = prism_search::minimal_best_static(&pooled);
        let _ = write!(out, "  {:<10}", "All");
        for flag in Flag::ALL {
            let mark = if flags.contains(flag) { "yes" } else { "-" };
            let _ = write!(out, " {mark:>14}");
        }
        let _ = writeln!(out);
    }
    out
}

/// Fig. 7: per-shader speed-up distributions for the three policies, per
/// platform.
pub fn fig7_per_shader(study: &StudyResults) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 7 — per-shader speed-up distributions (vs. original)"
    );
    for vendor in study.platforms() {
        let records = study.for_platform(&vendor);
        let (static_flags, _) = prism_search::minimal_best_static(&records);
        let best = per_shader_speedups(&records, Policy::Best);
        let default = per_shader_speedups(&records, Policy::DefaultLunarGlass);
        let static_speedups = per_shader_speedups(&records, Policy::Static(static_flags));
        let _ = writeln!(out, "  {vendor}");
        let _ = writeln!(out, "    best (green):        {}", ViolinSummary::of(&best));
        let _ = writeln!(
            out,
            "    default LG (red):    {}",
            ViolinSummary::of(&default)
        );
        let _ = writeln!(
            out,
            "    best static (blue):  {}",
            ViolinSummary::of(&static_speedups)
        );
        let near_zero = best.iter().filter(|s| s.abs() < 1.0).count();
        let _ = writeln!(
            out,
            "    shaders within ±1% under best policy: {near_zero}/{}",
            best.len()
        );
    }
    out
}

/// Fig. 8: per-flag applicability and optimality fractions (platform given).
pub fn fig8_applicability(study: &StudyResults, vendor: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 8 — flag applicability on {vendor}");
    let _ = writeln!(
        out,
        "  {:<16} {:>8} {:>14} {:>18}",
        "flag", "shaders", "changes code", "in optimal 10%"
    );
    for row in flag_applicability(study, vendor) {
        let _ = writeln!(
            out,
            "  {:<16} {:>8} {:>9} ({:>4.0}%) {:>12} ({:>4.0}%)",
            row.flag.name(),
            row.total_shaders,
            row.changes_code,
            row.applicability_rate() * 100.0,
            row.in_optimal_set,
            row.optimality_rate() * 100.0
        );
    }
    out
}

/// Fig. 9: per-flag isolated speed-up distributions (vs. the no-flag
/// LunarGlass baseline), per platform.
pub fn fig9_per_flag(study: &StudyResults) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 9 — per-flag speed-up vs. the no-flag baseline");
    for vendor in study.platforms() {
        let _ = writeln!(out, "  {vendor}");
        for flag in Flag::ALL {
            let impact = flag_impact(study, &vendor, flag);
            let _ = writeln!(
                out,
                "    {:<16} {}",
                flag.name(),
                ViolinSummary::of(&impact.speedups)
            );
        }
    }
    out
}

/// Fig. 10 (beyond the paper): incremental flag-search strategies versus
/// the exhaustive oracle — mean speed-up achieved and fraction of the 256
/// combinations compiled, per platform.
pub fn fig10_incremental(study: &StudyResults) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 10 — incremental flag search vs the exhaustive oracle"
    );
    if study.search.is_empty() {
        let _ = writeln!(out, "  (study ran without incremental search)");
        return out;
    }
    for vendor in study.platforms() {
        let rows: Vec<_> = study.search.iter().filter(|r| r.vendor == vendor).collect();
        if rows.is_empty() {
            continue;
        }
        let _ = writeln!(out, "  {vendor}");
        let _ = writeln!(
            out,
            "    {:<16} {:>10} {:>10} {:>11} {:>12} {:>9}",
            "strategy", "speedup", "oracle", "% of oracle", "compiles/256", "budget"
        );
        for row in rows {
            let _ = writeln!(
                out,
                "    {:<16} {:>9.2}% {:>9.2}% {:>10.0}% {:>7.1} ({:>2.0}%) {:>8}",
                row.strategy,
                row.mean_speedup,
                row.oracle_mean_speedup,
                row.oracle_fraction() * 100.0,
                row.mean_compiles,
                row.compile_fraction() * 100.0,
                row.budget
            );
        }
    }
    out
}

/// Regret-vs-measurements report (beyond the paper): for each platform and
/// strategy, the mean speedup percentage points left on the table versus the
/// exhaustive oracle if tuning had stopped after 1, 2, 4, … budget
/// evaluations — the anytime view of [`fig10_incremental`]'s endpoint
/// numbers. Strategies without a recorded curve (pre-regret study reports)
/// are skipped.
pub fn fig_regret(study: &StudyResults) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure R — regret vs measurements (speedup %-points behind the oracle)"
    );
    let with_curves: Vec<_> = study
        .search
        .iter()
        .filter(|r| !r.mean_regret.is_empty())
        .collect();
    if with_curves.is_empty() {
        let _ = writeln!(out, "  (study carries no regret curves)");
        return out;
    }
    for vendor in study.platforms() {
        let rows: Vec<_> = with_curves.iter().filter(|r| r.vendor == vendor).collect();
        let Some(first) = rows.first() else { continue };
        let _ = writeln!(out, "  {vendor}");
        let mut header = format!("    {:<16}", "strategy");
        for k in &first.regret_checkpoints {
            let _ = write!(header, " {k:>7}");
        }
        let _ = writeln!(out, "{header}  (measurements)");
        for row in rows {
            let mut line = format!("    {:<16}", row.strategy);
            for r in &row.mean_regret {
                let _ = write!(line, " {r:>7.2}");
            }
            let _ = writeln!(out, "{line}");
        }
    }
    out
}

/// Corpus-cache work/sharing report of one study run: how much optimization
/// and emission work the sweep performed, how much was answered warm —
/// split into hits produced by this run's own sessions (cross-shader
/// sharing) and hits answered from a persistent warm-start snapshot — and
/// how healthy the snapshot itself was (shards loaded vs skipped).
pub fn fig_cache(study: &StudyResults) -> String {
    let stats = &study.cache.stats;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Corpus cache — {} sessions, {}",
        stats.sessions,
        if study.cache.shared {
            "one shared corpus-wide store"
        } else {
            "private per-session stores"
        }
    );
    let _ = writeln!(
        out,
        "  stages:    {:>6} runs  {:>6} hits ({:>5.1}% hit rate, {} cross-shader, {} warm-start)",
        stats.stage_runs,
        stats.stage_hits,
        stats.stage_hit_rate() * 100.0,
        stats.cross_shader_stage_hits,
        stats.warm_stage_hits,
    );
    let _ = writeln!(
        out,
        "  emissions: {:>6} done  {:>6} hits ({} cross-shader, {} warm-start)",
        stats.emissions,
        stats.emission_hits,
        stats.cross_shader_emission_hits,
        stats.warm_emission_hits,
    );
    if stats.evictions > 0 {
        let _ = writeln!(out, "  evictions: {:>6} (bounded store)", stats.evictions);
    }
    if stats.warm_shards_loaded + stats.warm_shards_skipped > 0 {
        let _ = writeln!(
            out,
            "  warm start: {} entries from {} shards ({} shard(s) skipped as stale/corrupt)",
            stats.warm_entries_loaded, stats.warm_shards_loaded, stats.warm_shards_skipped,
        );
    } else {
        let _ = writeln!(out, "  warm start: none (cold run)");
    }
    if stats.routed_requests > 0 {
        let _ = writeln!(
            out,
            "  serving:   {:>6} routed  {:>6} coalesced ({:>5.1}%)",
            stats.routed_requests,
            stats.coalesced_requests,
            100.0 * stats.coalesced_requests as f64 / stats.routed_requests as f64,
        );
    }
    out
}

/// One replayed request stream against the compile service, summarised for
/// [`fig_serve`]. Plain data so the report crate stays independent of the
/// serve crate: callers (the demo example, the perf gate) copy their
/// `LoadSummary`/`ServiceStats` counters in.
#[derive(Debug, Clone, Default)]
pub struct ServeRow {
    /// Stream label (e.g. `"cold"`, `"warm boot"`).
    pub label: String,
    /// Requests replayed.
    pub requests: usize,
    /// Requests in the measured (post-warm-up) window.
    pub measured: usize,
    /// p50 work-counter latency (stage runs + emissions) over the window.
    pub p50_latency: usize,
    /// p99 work-counter latency over the window.
    pub p99_latency: usize,
    /// Measured requests served entirely from the memo.
    pub memo_served: usize,
    /// Measured requests coalesced onto an in-flight compile.
    pub coalesced: usize,
    /// Responses answered with the emission memo's shared handle.
    pub zero_copy: usize,
    /// Stage runs over the whole stream (0 for a warm-booted replay).
    pub stage_runs: usize,
}

/// Compile-service load report (beyond the paper): deterministic p50/p99
/// work-counter latencies and free-serving rates for replayed request
/// streams — the serving-layer counterpart of [`fig_cache`]'s study-level
/// sharing report.
pub fn fig_serve(rows: &[ServeRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Compile service — Zipf request streams, work-counter latency"
    );
    let _ = writeln!(
        out,
        "  {:<10} {:>8} {:>8} {:>6} {:>6} {:>8} {:>9} {:>9} {:>10}",
        "stream",
        "requests",
        "measured",
        "p50",
        "p99",
        "memo",
        "coalesced",
        "zero-copy",
        "stage runs"
    );
    for row in rows {
        let _ = writeln!(
            out,
            "  {:<10} {:>8} {:>8} {:>6} {:>6} {:>8} {:>9} {:>9} {:>10}",
            row.label,
            row.requests,
            row.measured,
            row.p50_latency,
            row.p99_latency,
            row.memo_served,
            row.coalesced,
            row.zero_copy,
            row.stage_runs,
        );
    }
    out
}

/// Static-analysis rank agreement (beyond the paper, but in its spirit:
/// §III characterises shaders with ARM's offline static analyser): per
/// platform × shader, how closely the static cost model's variant ranking
/// tracks the measured ranking, as a normalised Spearman-footrule agreement
/// in `[0, 1]` (1 = identical order, 0 = reversed). This is the evidence
/// table behind the search tenant's static prefilter.
pub fn fig_static(rows: &[prism_search::StaticRankRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Static cost model — rank agreement vs measured frame times"
    );
    let _ = writeln!(
        out,
        "  {:<10} {:<16} {:>8} {:>9} {:>10}",
        "platform", "shader", "variants", "footrule", "agreement"
    );
    for row in rows {
        let _ = writeln!(
            out,
            "  {:<10} {:<16} {:>8} {:>9.1} {:>9.0}%",
            row.vendor,
            row.shader,
            row.variants,
            row.footrule,
            row.agreement * 100.0,
        );
    }
    if !rows.is_empty() {
        let mean = rows.iter().map(|r| r.agreement).sum::<f64>() / rows.len() as f64;
        let _ = writeln!(out, "  {:<36} mean agreement {:>5.0}%", "", mean * 100.0);
    }
    out
}

/// Source-form routing report (beyond the paper): which emission backend
/// each platform's driver consumed and which source-form version token the
/// driver front-end reported parsing — the end-to-end evidence that one
/// optimized IR reached N drivers through four different source forms.
pub fn fig_backends(study: &StudyResults) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Source forms — one IR, per-platform driver input");
    let _ = writeln!(
        out,
        "  {:<10} {:>8} {:>14} {:>8}",
        "platform", "backend", "driver parsed", "shaders"
    );
    for vendor in study.platforms() {
        let records = study.for_platform(&vendor);
        let Some(first) = records.first() else {
            continue;
        };
        debug_assert!(
            records.iter().all(|r| r.backend == first.backend
                && r.driver_source_version == first.driver_source_version),
            "{vendor}: mixed source forms on one platform"
        );
        let _ = writeln!(
            out,
            "  {vendor:<10} {:>8} {:>14} {:>8}",
            first.backend,
            first.driver_source_version,
            records.len()
        );
    }
    out
}

/// A compact overall summary used by the quickstart example.
pub fn summary(study: &StudyResults) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "study: {} shaders x {} platforms, {} measurements",
        study.shaders.len(),
        study.platforms().len(),
        study.measurements.len()
    );
    for s in platform_summaries(study) {
        let _ = writeln!(
            out,
            "  {:<10} best {:+5.2}%  default {:+5.2}%  static {:+5.2}%  ({})",
            s.vendor, s.mean_best, s.mean_default, s.mean_best_static, s.best_static
        );
    }
    out
}

/// Convenience: the mean best-policy speed-up per platform (used in tests and
/// EXPERIMENTS.md to compare against the paper's 1–4 % claim).
pub fn mean_best_speedups(study: &StudyResults) -> Vec<(String, f64)> {
    study
        .platforms()
        .into_iter()
        .map(|vendor| {
            let records = study.for_platform(&vendor);
            let v = per_shader_speedups(&records, Policy::Best);
            (vendor, mean(&v))
        })
        .collect()
}

/// Checks whether a flag appears in the reported best-static row for a
/// platform (used when comparing against the paper's Table I).
pub fn best_static_contains(study: &StudyResults, vendor: &str, flag: Flag) -> bool {
    let records = study.for_platform(vendor);
    if records.is_empty() {
        return false;
    }
    let (flags, _) = prism_search::minimal_best_static(&records);
    flags.contains(flag)
}

/// The full set of renderers in figure order, handy for "render everything".
/// Uniform-value specialization report (beyond the paper): per platform,
/// every interp-verified `(shader, assumption)` arm with the win the guarded
/// dispatch delivers while the assumption holds against the guard overhead
/// every draw pays when it does not — both sides of deploying the AZP axis.
/// Arms are listed best-win first within each platform.
pub fn fig_specialize(study: &StudyResults) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure S — uniform-value specialization (win when the assumption holds vs guard overhead)"
    );
    if study.specializations.is_empty() {
        let _ = writeln!(out, "  (study ran without the specialization axis)");
        return out;
    }
    let mut vendors: Vec<&str> = study
        .specializations
        .iter()
        .map(|r| r.vendor.as_str())
        .collect();
    vendors.sort_unstable();
    vendors.dedup();
    for vendor in vendors {
        let mut rows: Vec<_> = study
            .specializations
            .iter()
            .filter(|r| r.vendor == vendor)
            .collect();
        rows.sort_by(|a, b| {
            b.win_when_holds()
                .partial_cmp(&a.win_when_holds())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| (&a.shader, &a.spec).cmp(&(&b.shader, &b.spec)))
        });
        let _ = writeln!(out, "  {vendor}");
        let _ = writeln!(
            out,
            "    {:<20} {:<12} {:>10} {:>10} {:>8} {:>9} {:>9}",
            "shader", "assumption", "general", "special", "guard", "win", "overhead"
        );
        for r in rows {
            let _ = writeln!(
                out,
                "    {:<20} {:<12} {:>8.0}ns {:>8.0}ns {:>6.1}ns {:>8.2}% {:>8.2}%",
                r.shader,
                r.spec,
                r.general_ns,
                r.specialized_ns,
                r.guard_ns,
                r.win_when_holds(),
                r.overhead_when_violated(),
            );
        }
    }
    let confirms: usize = study
        .specializations
        .iter()
        .map(|r| r.interp_confirms)
        .sum();
    let _ = writeln!(
        out,
        "  every arm differentially interp-verified ({confirms} bit-exact confirmations)"
    );
    out
}

pub fn render_all(study: &StudyResults, blur_name: &str) -> String {
    let mut out = String::new();
    out.push_str(&fig3_motivating(study, blur_name));
    out.push('\n');
    out.push_str(&fig4_characterization(study));
    out.push('\n');
    out.push_str(&fig5_overall(study));
    out.push('\n');
    out.push_str(&fig6_top30(study, 30));
    out.push('\n');
    out.push_str(&table1_best_static(study));
    out.push('\n');
    out.push_str(&fig7_per_shader(study));
    out.push('\n');
    for vendor in study.platforms() {
        out.push_str(&fig8_applicability(study, &vendor));
        out.push('\n');
    }
    out.push_str(&fig9_per_flag(study));
    if !study.search.is_empty() {
        out.push('\n');
        out.push_str(&fig10_incremental(study));
        out.push('\n');
        out.push_str(&fig_regret(study));
    }
    out.push('\n');
    out.push_str(&fig_backends(study));
    if !study.specializations.is_empty() {
        out.push('\n');
        out.push_str(&fig_specialize(study));
    }
    out.push('\n');
    out.push_str(&fig_cache(study));
    out
}

// Re-export OptFlags so downstream doc examples can name it via this module.
#[allow(unused_imports)]
use OptFlags as _OptFlagsForDocs;

#[cfg(test)]
mod tests {
    use super::*;
    use prism_search::{ShaderPlatformRecord, ShaderRecord, VariantRecord};

    fn tiny_study() -> StudyResults {
        let mut flag_to_variant = vec![0usize; 256];
        for bits in 0..=255u8 {
            if OptFlags::from_bits(bits).contains(Flag::Unroll) {
                flag_to_variant[bits as usize] = 1;
            }
        }
        let record = |vendor: &str, fast: f64| ShaderPlatformRecord {
            shader: "blur".into(),
            vendor: vendor.into(),
            backend: "desktop".into(),
            driver_source_version: "450".into(),
            original_ns: 1000.0,
            variants: vec![
                VariantRecord {
                    index: 0,
                    flag_bits: vec![0],
                    mean_ns: 1005.0,
                    stddev_ns: 2.0,
                },
                VariantRecord {
                    index: 1,
                    flag_bits: vec![16],
                    mean_ns: fast,
                    stddev_ns: 2.0,
                },
            ],
            flag_to_variant: flag_to_variant.clone(),
        };
        StudyResults {
            shaders: vec![ShaderRecord {
                name: "blur".into(),
                family: "flagship".into(),
                loc: 14,
                arm_static_cycles: 40.0,
                unique_variants: 2,
                flag_changes_code: {
                    let mut v = vec![false; 8];
                    v[Flag::Unroll.bit() as usize] = true;
                    v
                },
            }],
            measurements: vec![record("AMD", 750.0), record("ARM", 650.0)],
            skipped: vec![],
            cache: Default::default(),
            search: vec![],
            warnings: vec![],
            specializations: vec![],
        }
    }

    #[test]
    fn every_figure_renders_nonempty_text() {
        let study = tiny_study();
        assert!(fig3_motivating(&study, "blur").contains("AMD"));
        assert!(fig4_characterization(&study).contains("lines of code"));
        assert!(fig5_overall(&study).contains("per-shader best"));
        assert!(fig6_top30(&study, 30).contains("most-improved"));
        assert!(table1_best_static(&study).contains("Unroll"));
        assert!(fig7_per_shader(&study).contains("best static"));
        assert!(fig8_applicability(&study, "AMD").contains("changes code"));
        assert!(fig9_per_flag(&study).contains("Unroll"));
        let backends = fig_backends(&study);
        assert!(backends.contains("desktop"), "{backends}");
        assert!(backends.contains("450"), "{backends}");
        assert!(summary(&study).contains("shaders"));
        let all = render_all(&study, "blur");
        assert!(all.len() > 500);
        // Without search rows, Fig. 10 is omitted from the full render but
        // still renders standalone with a note.
        assert!(!all.contains("Figure 10"));
        assert!(fig10_incremental(&study).contains("without incremental search"));
    }

    #[test]
    fn fig10_lists_every_strategy_per_platform() {
        let mut study = tiny_study();
        for vendor in ["AMD", "ARM"] {
            for strategy in ["greedy_forward", "ablation"] {
                study.search.push(prism_search::SearchRecord {
                    vendor: vendor.into(),
                    strategy: strategy.into(),
                    shaders: 1,
                    budget: 63,
                    mean_compiles: 12.0,
                    max_compiles: 12,
                    candidates_pruned: 0,
                    mean_speedup: 20.0,
                    oracle_mean_speedup: 25.0,
                    default_mean_speedup: 15.0,
                    regret_checkpoints: vec![1, 2, 4, 8, 16, 32, 63],
                    mean_regret: vec![6.0, 5.0, 5.0, 3.0, 2.0, 1.0, 1.0],
                    regret_final: 1.0,
                });
            }
        }
        let text = fig10_incremental(&study);
        assert!(text.contains("greedy_forward"));
        assert!(text.contains("ablation"));
        assert!(text.contains("AMD"));
        assert!(text.contains("ARM"));
        assert!(render_all(&study, "blur").contains("Figure 10"));
    }

    #[test]
    fn fig_regret_renders_curves_and_skips_rows_without_them() {
        let mut study = tiny_study();
        assert!(fig_regret(&study).contains("no regret curves"));
        study.search.push(prism_search::SearchRecord {
            vendor: "AMD".into(),
            strategy: "ucb1".into(),
            shaders: 1,
            budget: 63,
            mean_compiles: 20.0,
            max_compiles: 20,
            candidates_pruned: 0,
            mean_speedup: 24.0,
            oracle_mean_speedup: 25.0,
            default_mean_speedup: 15.0,
            regret_checkpoints: vec![1, 2, 4, 8, 16, 32, 63],
            mean_regret: vec![10.0, 6.0, 4.5, 2.0, 1.0, 1.0, 1.0],
            regret_final: 1.0,
        });
        // A pre-regret row (empty curve) must be skipped, not crash.
        study.search.push(prism_search::SearchRecord {
            vendor: "AMD".into(),
            strategy: "legacy".into(),
            shaders: 1,
            budget: 63,
            mean_compiles: 10.0,
            max_compiles: 10,
            candidates_pruned: 0,
            mean_speedup: 18.0,
            oracle_mean_speedup: 25.0,
            default_mean_speedup: 15.0,
            regret_checkpoints: vec![],
            mean_regret: vec![],
            regret_final: 0.0,
        });
        let text = fig_regret(&study);
        assert!(text.contains("ucb1"), "{text}");
        assert!(!text.contains("legacy"), "{text}");
        assert!(text.contains("10.00"), "{text}");
        assert!(render_all(&study, "blur").contains("Figure R"));
    }

    #[test]
    fn table1_reports_the_beneficial_flag() {
        let study = tiny_study();
        assert!(best_static_contains(&study, "AMD", Flag::Unroll));
        assert!(!best_static_contains(&study, "AMD", Flag::Hoist));
        assert!(!best_static_contains(&study, "Intel", Flag::Unroll));
    }

    #[test]
    fn mean_best_speedups_are_positive_here() {
        let study = tiny_study();
        for (vendor, speedup) in mean_best_speedups(&study) {
            assert!(speedup > 0.0, "{vendor}: {speedup}");
        }
    }

    #[test]
    fn fig_cache_reports_warm_and_cold_runs() {
        let mut study = tiny_study();
        let cold = fig_cache(&study);
        assert!(cold.contains("cold run"), "{cold}");
        assert!(render_all(&study, "blur").contains("Corpus cache"));

        study.cache.shared = true;
        study.cache.stats.stage_runs = 10;
        study.cache.stats.stage_hits = 30;
        study.cache.stats.warm_stage_hits = 25;
        study.cache.stats.warm_emission_hits = 4;
        study.cache.stats.warm_entries_loaded = 40;
        study.cache.stats.warm_shards_loaded = 15;
        study.cache.stats.warm_shards_skipped = 1;
        let warm = fig_cache(&study);
        assert!(warm.contains("one shared corpus-wide store"), "{warm}");
        assert!(warm.contains("40 entries from 15 shards"), "{warm}");
        assert!(warm.contains("1 shard(s) skipped"), "{warm}");
        assert!(warm.contains("25 warm-start"), "{warm}");

        // Study sweeps never route requests; the serving line only appears
        // once a compile service has driven the cache.
        assert!(!warm.contains("serving:"), "{warm}");
        study.cache.stats.routed_requests = 200;
        study.cache.stats.coalesced_requests = 50;
        let served = fig_cache(&study);
        assert!(served.contains("200 routed"), "{served}");
        assert!(served.contains("50 coalesced ( 25.0%)"), "{served}");
    }

    #[test]
    fn fig_serve_renders_one_line_per_stream() {
        let rows = vec![
            ServeRow {
                label: "cold".into(),
                requests: 400,
                measured: 250,
                p50_latency: 0,
                p99_latency: 12,
                memo_served: 230,
                coalesced: 0,
                zero_copy: 231,
                stage_runs: 597,
            },
            ServeRow {
                label: "warm boot".into(),
                requests: 400,
                measured: 400,
                stage_runs: 0,
                memo_served: 400,
                zero_copy: 400,
                ..ServeRow::default()
            },
        ];
        let text = fig_serve(&rows);
        assert!(text.contains("Compile service"), "{text}");
        assert!(text.contains("cold"), "{text}");
        assert!(text.contains("warm boot"), "{text}");
        assert!(text.contains("597"), "{text}");
    }

    #[test]
    fn fig_static_renders_agreement_rows_and_their_mean() {
        let rows = vec![
            prism_search::StaticRankRow {
                vendor: "ARM".into(),
                shader: "blur".into(),
                variants: 8,
                footrule: 8.0,
                agreement: 0.75,
            },
            prism_search::StaticRankRow {
                vendor: "Apple".into(),
                shader: "blur".into(),
                variants: 8,
                footrule: 0.0,
                agreement: 1.0,
            },
        ];
        let text = fig_static(&rows);
        assert!(text.contains("Static cost model"), "{text}");
        assert!(text.contains("ARM"), "{text}");
        assert!(text.contains("75%"), "{text}");
        assert!(text.contains("mean agreement"), "{text}");
        assert!(text.contains("88%"), "{text}");
        assert_eq!(fig_static(&[]).lines().count(), 2, "header only when empty");
    }

    #[test]
    fn specialize_report_shows_both_sides_of_the_guard() {
        let mut study = tiny_study();
        let empty = fig_specialize(&study);
        assert!(empty.contains("without the specialization axis"), "{empty}");
        assert!(
            !render_all(&study, "blur").contains("Figure S"),
            "flag-only studies must not render an empty specialization figure"
        );

        study.specializations = vec![
            prism_search::SpecializationRecord {
                shader: "blur".into(),
                vendor: "AMD".into(),
                spec: "u1=0".into(),
                flag_bits: OptFlags::lunarglass_default().bits(),
                general_ns: 1000.0,
                specialized_ns: 800.0,
                guard_ns: 6.0,
                interp_confirms: 10,
            },
            prism_search::SpecializationRecord {
                shader: "blur".into(),
                vendor: "AMD".into(),
                spec: "u0=1".into(),
                flag_bits: OptFlags::lunarglass_default().bits(),
                general_ns: 1000.0,
                specialized_ns: 950.0,
                guard_ns: 6.0,
                interp_confirms: 10,
            },
        ];
        let text = fig_specialize(&study);
        assert!(text.contains("Figure S"), "{text}");
        assert!(text.contains("u1=0"), "{text}");
        assert!(text.contains("AMD"), "{text}");
        assert!(text.contains("20 bit-exact confirmations"), "{text}");
        // Best win sorts first within the platform.
        let zero_line = text.lines().position(|l| l.contains("u1=0")).unwrap();
        let one_line = text.lines().position(|l| l.contains("u0=1")).unwrap();
        assert!(zero_line < one_line, "{text}");
        assert!(render_all(&study, "blur").contains("Figure S"));
    }
}
