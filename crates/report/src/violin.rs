//! Violin-plot style summaries of speed-up distributions (Figs. 7 and 9).

use crate::stats::{mean, percentile};
use std::fmt;

/// The numbers a violin plot of a distribution conveys.
#[derive(Debug, Clone, PartialEq)]
pub struct ViolinSummary {
    /// Smallest value (largest slow-down).
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Largest value (largest speed-up).
    pub max: f64,
    /// Mean.
    pub mean: f64,
    /// Number of observations.
    pub count: usize,
}

impl ViolinSummary {
    /// Summarises a distribution; all-zero for an empty slice.
    pub fn of(values: &[f64]) -> ViolinSummary {
        if values.is_empty() {
            return ViolinSummary {
                min: 0.0,
                p25: 0.0,
                median: 0.0,
                p75: 0.0,
                max: 0.0,
                mean: 0.0,
                count: 0,
            };
        }
        ViolinSummary {
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            p25: percentile(values, 25.0),
            median: percentile(values, 50.0),
            p75: percentile(values, 75.0),
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            mean: mean(values),
            count: values.len(),
        }
    }
}

impl fmt::Display for ViolinSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "min {:+6.2}%  p25 {:+6.2}%  med {:+6.2}%  p75 {:+6.2}%  max {:+6.2}%  mean {:+6.2}%  (n={})",
            self.min, self.p25, self.median, self.p75, self.max, self.mean, self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarises_distributions() {
        let v = ViolinSummary::of(&[-10.0, -1.0, 0.0, 0.0, 2.0, 25.0]);
        assert_eq!(v.min, -10.0);
        assert_eq!(v.max, 25.0);
        assert_eq!(v.median, 0.0);
        assert_eq!(v.count, 6);
        assert!(v.mean > 0.0);
        let text = v.to_string();
        assert!(text.contains("max"));
        assert!(text.contains("n=6"));
    }

    #[test]
    fn empty_distribution_is_all_zero() {
        let v = ViolinSummary::of(&[]);
        assert_eq!(v.count, 0);
        assert_eq!(v.max, 0.0);
    }
}
