//! Small statistics helpers shared by the figure renderers.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Population standard deviation; 0 for fewer than two values.
pub fn stddev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    (values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64).sqrt()
}

/// Linear-interpolated percentile (`p` in 0–100); 0 for an empty slice.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let rank = (p / 100.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (50th percentile).
pub fn median(values: &[f64]) -> f64 {
    percentile(values, 50.0)
}

/// Histogram with equal-width buckets over `[min, max]`.
///
/// Returns `(bucket_lower_edges, counts)`.
pub fn histogram(values: &[f64], buckets: usize) -> (Vec<f64>, Vec<usize>) {
    if values.is_empty() || buckets == 0 {
        return (Vec::new(), Vec::new());
    }
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let width = ((hi - lo) / buckets as f64).max(1e-12);
    let mut counts = vec![0usize; buckets];
    for v in values {
        let idx = (((v - lo) / width) as usize).min(buckets - 1);
        counts[idx] += 1;
    }
    let edges = (0..buckets).map(|i| lo + i as f64 * width).collect();
    (edges, counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_median_stddev() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&v), 2.5);
        assert_eq!(median(&v), 2.5);
        assert!((stddev(&v) - 1.118).abs() < 1e-3);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(stddev(&[1.0]), 0.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let v = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&v, 0.0), 10.0);
        assert_eq!(percentile(&v, 100.0), 50.0);
        assert_eq!(percentile(&v, 50.0), 30.0);
        assert_eq!(percentile(&v, 25.0), 20.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn histogram_buckets_cover_all_values() {
        let v = [1.0, 2.0, 2.5, 3.0, 9.9];
        let (edges, counts) = histogram(&v, 3);
        assert_eq!(edges.len(), 3);
        assert_eq!(counts.iter().sum::<usize>(), v.len());
        assert!(histogram(&[], 3).1.is_empty());
    }
}
