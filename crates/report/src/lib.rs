//! # prism-report — statistics and table/figure renderers
//!
//! Turns [`prism_search::StudyResults`] into the rows and series the paper's
//! evaluation section reports: Fig. 3 (motivating example), Fig. 4 (corpus
//! characterisation), Fig. 5 (overall averages), Fig. 6 (top-30 shaders),
//! Table I (best static flags), Fig. 7 (per-shader distributions), Fig. 8
//! (flag applicability), Fig. 9 (per-flag isolated impact), and — beyond the
//! paper — Fig. 10 (incremental flag-search strategies vs the exhaustive
//! oracle).

pub mod figures;
pub mod stats;
pub mod violin;

pub use figures::{
    best_static_contains, fig10_incremental, fig3_motivating, fig4_characterization, fig5_overall,
    fig6_top30, fig7_per_shader, fig8_applicability, fig9_per_flag, fig_backends, fig_cache,
    fig_regret, fig_serve, fig_specialize, fig_static, mean_best_speedups, render_all, summary,
    table1_best_static, ServeRow,
};
pub use stats::{histogram, mean, median, percentile, stddev};
pub use violin::ViolinSummary;
