//! # prism-corpus — the GFXBench-4.0-like benchmark shader corpus
//!
//! GFXBench 4.0 is proprietary, so the study's shaders cannot be shipped;
//! this crate provides the synthetic substitute described in DESIGN.md §1:
//! around a hundred fragment shaders organised into übershader families
//! specialised through `#define` switches (§IV-A of the paper), plus the
//! hand-written flagship shaders including the paper's Listing-1 blur.
//! The corpus is deterministic and matches the structural statistics the
//! paper reports in §V (size distribution, loop/branch rarity, constant
//! divisions, per-component vector writes).
//!
//! ```
//! use prism_corpus::Corpus;
//! let corpus = Corpus::gfxbench_like();
//! assert!(corpus.len() >= 100);
//! assert!(corpus.blur9().source.text.contains("weightTotal"));
//! ```

pub mod corpus;
pub mod families;
pub mod flagship;

pub use corpus::{Corpus, CorpusStats, LocSummary, ShaderCase};
pub use families::{all_families, Family};
