//! The assembled benchmark corpus.

use crate::families::{all_families, Family};
use crate::flagship;
use prism_glsl::{GlslError, ShaderSource};
use std::collections::HashMap;

/// One benchmark fragment shader, ready for the optimizer and the harness.
#[derive(Debug, Clone)]
pub struct ShaderCase {
    /// Unique corpus name (`family_NN` or `flagship_*`).
    pub name: String,
    /// The übershader family this instance was specialised from.
    pub family: String,
    /// The `#define` switches used to specialise it.
    pub defines: Vec<(String, String)>,
    /// The preprocessed, parsed and checked shader.
    pub source: ShaderSource,
}

impl ShaderCase {
    /// The paper's lines-of-code metric for this shader (post-preprocessing).
    pub fn lines_of_code(&self) -> usize {
        self.source.lines_of_code
    }
}

/// The full benchmark corpus (the stand-in for GFXBench 4.0's fragment
/// shaders — see DESIGN.md §1 for the substitution argument).
#[derive(Debug, Clone)]
pub struct Corpus {
    /// All shader cases, in deterministic order.
    pub cases: Vec<ShaderCase>,
}

impl Corpus {
    /// Builds the GFXBench-4.0-like corpus: three hand-written flagship
    /// shaders plus every specialisation of every übershader family.
    ///
    /// # Panics
    ///
    /// Panics if any built-in corpus shader fails the front-end — that is a
    /// bug in the corpus itself and is covered by tests.
    pub fn gfxbench_like() -> Corpus {
        Corpus::try_build().expect("built-in corpus shaders must pass the front-end")
    }

    /// Fallible corpus construction (exposed for error-path testing).
    pub fn try_build() -> Result<Corpus, (String, GlslError)> {
        let mut cases = Vec::new();
        for (name, src) in flagship::all() {
            let source = ShaderSource::preprocess_and_parse(src, &HashMap::new())
                .map_err(|e| (name.to_string(), e))?;
            cases.push(ShaderCase {
                name: name.to_string(),
                family: "flagship".to_string(),
                defines: Vec::new(),
                source,
            });
        }
        for family in all_families() {
            instantiate_family(&family, &mut cases)?;
        }
        Ok(Corpus { cases })
    }

    /// Instantiates every specialisation of a single übershader family as
    /// its own corpus (no flagships). A family with zero specialisations
    /// yields an empty corpus — a legal, if degenerate, input every corpus
    /// statistic must tolerate.
    ///
    /// # Errors
    ///
    /// Returns the failing instance name and front-end error if a
    /// specialisation does not parse.
    pub fn from_family(family: &Family) -> Result<Corpus, (String, GlslError)> {
        let mut cases = Vec::new();
        instantiate_family(family, &mut cases)?;
        Ok(Corpus { cases })
    }

    /// The canonical small slice for smoke benches, CI gates and quick
    /// studies: the blur flagship (real optimization headroom), two
    /// texture_combine übershader family members (cross-shader cache
    /// sharing) and two simple shaders. One definition so the perf gate,
    /// benches and tests all exercise the same corpus.
    pub const FAMILY_MIX: [&'static str; 5] = [
        "flagship_blur9",
        "texture_combine_00",
        "texture_combine_01",
        "ui_blit_00",
        "color_grade_01",
    ];

    /// The [`Corpus::FAMILY_MIX`] sub-corpus.
    pub fn family_mix() -> Corpus {
        Corpus::gfxbench_like().subset(&Corpus::FAMILY_MIX)
    }

    /// The sub-corpus containing only the named shaders (in corpus order).
    /// The one constructor behind every test/bench/CI corpus slice, so the
    /// slices cannot drift apart when the corpus is renamed or regrown.
    ///
    /// # Panics
    ///
    /// Panics if any requested name is absent — a misspelt slice must fail
    /// loudly, not silently shrink a benchmark.
    pub fn subset(&self, names: &[&str]) -> Corpus {
        for name in names {
            assert!(
                self.case(name).is_some(),
                "corpus subset requests unknown shader `{name}`"
            );
        }
        Corpus {
            cases: self
                .cases
                .iter()
                .filter(|c| names.contains(&c.name.as_str()))
                .cloned()
                .collect(),
        }
    }

    /// Number of shaders in the corpus.
    pub fn len(&self) -> usize {
        self.cases.len()
    }

    /// `true` if the corpus is empty (never the case for the built-in one).
    pub fn is_empty(&self) -> bool {
        self.cases.is_empty()
    }

    /// Looks a case up by name.
    pub fn case(&self, name: &str) -> Option<&ShaderCase> {
        self.cases.iter().find(|c| c.name == name)
    }

    /// The motivating-example blur shader.
    pub fn blur9(&self) -> &ShaderCase {
        self.case(flagship::BLUR9_NAME)
            .expect("flagship blur is always present")
    }

    /// Per-shader lines-of-code values (Fig. 4a input).
    pub fn loc_distribution(&self) -> Vec<usize> {
        self.cases.iter().map(ShaderCase::lines_of_code).collect()
    }

    /// Median and maximum of the lines-of-code distribution, or `None` for
    /// an empty corpus. Callers used to take `loc.iter().max().unwrap()`
    /// themselves, which panicked the moment a zero-member übershader
    /// family (or an over-filtered subset) produced an empty corpus.
    pub fn loc_summary(&self) -> Option<LocSummary> {
        let mut sorted = self.loc_distribution();
        sorted.sort_unstable();
        let max = *sorted.last()?;
        Some(LocSummary {
            median: sorted[sorted.len() / 2],
            max,
        })
    }

    /// Structural summary used to check the corpus against the paper's §V
    /// characterisation.
    pub fn stats(&self) -> CorpusStats {
        let mut stats = CorpusStats {
            shader_count: self.cases.len(),
            ..CorpusStats::default()
        };
        for case in &self.cases {
            let text = &case.source.text;
            if text.contains("for (") || text.contains("for(") {
                stats.with_loops += 1;
            }
            if text.contains("if (") || text.contains("if(") || text.contains(" ? ") {
                stats.with_branches += 1;
            }
            if has_constant_division(text) {
                stats.with_constant_division += 1;
            }
            if text.contains(".rgb =")
                || text.contains(".a =")
                || text.contains(".x =")
                || text.contains(".xyz =")
            {
                stats.with_component_writes += 1;
            }
            let loc = case.lines_of_code();
            stats.max_loc = stats.max_loc.max(loc);
            if loc < 50 {
                stats.under_50_loc += 1;
            }
        }
        stats
    }
}

/// Instantiates one family's specialisations into `cases` (shared by the
/// full corpus builder and [`Corpus::from_family`]).
fn instantiate_family(
    family: &Family,
    cases: &mut Vec<ShaderCase>,
) -> Result<(), (String, GlslError)> {
    for (idx, spec) in family.specializations.iter().enumerate() {
        let defines: HashMap<String, String> = spec
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let name = format!("{}_{:02}", family.name, idx);
        let source = ShaderSource::preprocess_and_parse(family.source, &defines)
            .map_err(|e| (name.clone(), e))?;
        cases.push(ShaderCase {
            name,
            family: family.name.to_string(),
            defines: spec
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            source,
        });
    }
    Ok(())
}

/// Median and maximum lines of code of a corpus (see
/// [`Corpus::loc_summary`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocSummary {
    /// Median per-shader lines of code.
    pub median: usize,
    /// Largest per-shader lines of code.
    pub max: usize,
}

/// Crude textual check for "divides by a literal constant somewhere".
fn has_constant_division(text: &str) -> bool {
    let bytes = text.as_bytes();
    for (i, b) in bytes.iter().enumerate() {
        if *b == b'/' && i + 1 < bytes.len() {
            let rest = text[i + 1..].trim_start();
            if rest
                .chars()
                .next()
                .map(|c| c.is_ascii_digit())
                .unwrap_or(false)
            {
                return true;
            }
        }
    }
    false
}

/// Structural statistics of the corpus (compared against the paper's §V).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CorpusStats {
    /// Total number of shaders.
    pub shader_count: usize,
    /// Shaders containing at least one loop.
    pub with_loops: usize,
    /// Shaders containing a conditional or ternary.
    pub with_branches: usize,
    /// Shaders dividing by a literal constant.
    pub with_constant_division: usize,
    /// Shaders writing outputs/vectors component by component.
    pub with_component_writes: usize,
    /// Shaders with fewer than 50 lines of code.
    pub under_50_loc: usize,
    /// Largest lines-of-code value.
    pub max_loc: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_builds_and_has_the_right_size() {
        let corpus = Corpus::gfxbench_like();
        assert!(corpus.len() >= 100, "corpus has {} shaders", corpus.len());
        assert!(!corpus.is_empty());
        assert!(corpus.case(crate::flagship::BLUR9_NAME).is_some());
        assert_eq!(corpus.blur9().family, "flagship");
    }

    #[test]
    fn corpus_names_are_unique() {
        let corpus = Corpus::gfxbench_like();
        let mut names: Vec<&str> = corpus.cases.iter().map(|c| c.name.as_str()).collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(before, names.len());
    }

    #[test]
    fn structure_matches_paper_characterisation() {
        let corpus = Corpus::gfxbench_like();
        let stats = corpus.stats();
        let n = stats.shader_count as f64;
        // Loops are uncommon (§V-A).
        assert!((stats.with_loops as f64) < 0.25 * n, "{stats:?}");
        // A majority of shaders are under 50 lines (Fig. 4a).
        assert!((stats.under_50_loc as f64) > 0.5 * n, "{stats:?}");
        // Even the longest shader stays in the low hundreds of lines.
        assert!(stats.max_loc < 350, "{stats:?}");
        assert!(stats.max_loc > 30, "{stats:?}");
        // Constant division and component writes are widespread (Fig. 8a/8b).
        assert!((stats.with_constant_division as f64) > 0.4 * n, "{stats:?}");
        assert!((stats.with_component_writes as f64) > 0.6 * n, "{stats:?}");
        // Branches show up in a meaningful minority.
        assert!((stats.with_branches as f64) > 0.15 * n, "{stats:?}");
    }

    #[test]
    fn loc_distribution_is_power_law_like() {
        let corpus = Corpus::gfxbench_like();
        let LocSummary { median, max } = corpus.loc_summary().expect("non-empty corpus");
        assert!(
            max > 3 * median,
            "expected a long tail: median {median}, max {max}"
        );
    }

    #[test]
    fn zero_member_family_yields_a_harmless_empty_corpus() {
        // A family with no specialisations is legal corpus input: every
        // statistic must degrade gracefully instead of panicking (the old
        // `loc.iter().max().unwrap()` pattern died here).
        let barren = Family {
            name: "barren",
            source: "out vec4 c; void main() { c = vec4(1.0); }",
            specializations: vec![],
        };
        let corpus = Corpus::from_family(&barren).expect("empty family builds");
        assert!(corpus.is_empty());
        assert_eq!(corpus.len(), 0);
        assert_eq!(corpus.loc_summary(), None);
        assert_eq!(corpus.loc_distribution(), Vec::<usize>::new());
        assert_eq!(corpus.stats().shader_count, 0);
        assert_eq!(corpus.stats().max_loc, 0);
        assert!(corpus.case("barren_00").is_none());
    }

    #[test]
    fn single_family_corpus_instantiates_every_specialisation() {
        let family = all_families()
            .into_iter()
            .find(|f| f.name == "ui_blit")
            .expect("ui_blit family exists");
        let corpus = Corpus::from_family(&family).unwrap();
        assert_eq!(corpus.len(), family.specializations.len());
        assert!(corpus.cases.iter().all(|c| c.family == "ui_blit"));
        assert!(corpus.loc_summary().is_some());
    }

    #[test]
    fn every_case_lowers_and_compiles_unoptimized() {
        // The whole corpus must survive the optimizer's front half; this is
        // the corpus-side contract the search crate relies on.
        let corpus = Corpus::gfxbench_like();
        for case in &corpus.cases {
            let result = prism_core::compile(&case.source, &case.name, prism_core::OptFlags::NONE);
            assert!(
                result.is_ok(),
                "{} failed to compile: {result:?}",
                case.name
            );
        }
    }
}
