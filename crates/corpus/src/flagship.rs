//! Hand-written flagship shaders, including the paper's motivating example.

/// The paper's Listing 1: a 9-tap weighted blur whose loop, constant weight
/// table and shared `3.0 * ambient` factor give the offline optimizer its
/// largest wins (§II, Fig. 3).
pub const BLUR9: &str = r#"
out vec4 fragColor;
in vec2 uv;
uniform sampler2D tex;
uniform vec4 ambient;
void main() {
    const vec4[] weights = vec4[](
        vec4(0.01), vec4(0.03), vec4(0.15), vec4(0.42), vec4(0.63),
        vec4(0.42), vec4(0.15), vec4(0.03), vec4(0.01));
    const vec2[] offsets = vec2[](
        vec2(-0.0083), vec2(-0.0062), vec2(-0.0042), vec2(-0.0021), vec2(0.0),
        vec2(0.0021), vec2(0.0042), vec2(0.0062), vec2(0.0083));
    float weightTotal = 0.0;
    fragColor = vec4(0.0);
    for (int i = 0; i < 9; i++) {
        weightTotal += weights[i][0];
        fragColor += weights[i] * texture(tex, uv + offsets[i]) * 3.0 * ambient;
    }
    fragColor /= weightTotal;
}
"#;

/// The corpus name used for the motivating example.
pub const BLUR9_NAME: &str = "flagship_blur9";

/// A filmic tonemapping pass: transcendental heavy, division by constants,
/// no control flow — representative of GFXBench's post-processing shaders.
pub const TONEMAP: &str = r#"
out vec4 fragColor;
in vec2 uv;
uniform sampler2D hdrBuffer;
uniform float exposure;
uniform float gamma;
void main() {
    vec3 hdr = texture(hdrBuffer, uv).rgb;
    vec3 exposed = hdr * exposure * 1.0;
    vec3 x = max(exposed - vec3(0.004), vec3(0.0));
    vec3 numerator = x * (6.2 * x + vec3(0.5));
    vec3 denominator = x * (6.2 * x + vec3(1.7)) + vec3(0.06);
    vec3 mapped = numerator / denominator;
    vec3 corrected = pow(mapped, vec3(1.0 / 2.2));
    fragColor.rgb = corrected / gamma;
    fragColor.a = 1.0;
}
"#;

/// Corpus name of the tonemap flagship.
pub const TONEMAP_NAME: &str = "flagship_tonemap";

/// A deferred point-light accumulation shader: matrix transforms, dot-product
/// lighting, conditionals and a discard — representative of GFXBench's
/// heavier lit geometry shaders.
pub const DEFERRED_LIGHT: &str = r#"
out vec4 fragColor;
in vec2 uv;
in vec3 viewRay;
uniform sampler2D gbufferAlbedo;
uniform sampler2D gbufferNormal;
uniform sampler2D gbufferDepth;
uniform mat4 invView;
uniform vec4 lightPosRadius;
uniform vec4 lightColor;
uniform float ambientLevel;
void main() {
    vec4 albedo = texture(gbufferAlbedo, uv);
    vec3 normal = normalize(texture(gbufferNormal, uv).xyz * 2.0 - vec3(1.0));
    float depth = texture(gbufferDepth, uv).x;
    if (depth > 0.9999) {
        discard;
    }
    vec3 viewPos = viewRay * depth;
    vec4 worldPos = invView * vec4(viewPos, 1.0);
    vec3 toLight = lightPosRadius.xyz - worldPos.xyz;
    float dist = length(toLight);
    vec3 lightDir = toLight / dist;
    float atten = clamp(1.0 - dist / lightPosRadius.w, 0.0, 1.0);
    atten = atten * atten;
    float ndotl = max(dot(normal, lightDir), 0.0);
    vec3 diffuse = albedo.rgb * lightColor.rgb * ndotl * atten;
    vec3 ambient = albedo.rgb * ambientLevel * 0.25;
    fragColor.rgb = diffuse + ambient;
    fragColor.a = albedo.a;
}
"#;

/// Corpus name of the deferred-lighting flagship.
pub const DEFERRED_LIGHT_NAME: &str = "flagship_deferred_light";

/// All flagship shaders as `(name, source)` pairs.
pub fn all() -> Vec<(&'static str, &'static str)> {
    vec![
        (BLUR9_NAME, BLUR9),
        (TONEMAP_NAME, TONEMAP),
        (DEFERRED_LIGHT_NAME, DEFERRED_LIGHT),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism_glsl::ShaderSource;
    use std::collections::HashMap;

    #[test]
    fn all_flagships_pass_the_front_end() {
        for (name, src) in all() {
            let parsed = ShaderSource::preprocess_and_parse(src, &HashMap::new());
            assert!(parsed.is_ok(), "{name} failed the front-end: {parsed:?}");
        }
    }

    #[test]
    fn blur9_matches_the_paper_listing_shape() {
        let s = ShaderSource::preprocess_and_parse(BLUR9, &HashMap::new()).unwrap();
        assert_eq!(s.interface.samplers.len(), 1);
        assert_eq!(s.interface.uniforms.len(), 1);
        assert_eq!(s.interface.inputs.len(), 1);
        // 9 weights, 9 offsets, one loop.
        assert!(s.text.contains("for (int i = 0; i < 9; i++)"));
    }

    #[test]
    fn flagship_names_are_unique() {
        let names: Vec<&str> = all().iter().map(|(n, _)| *n).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
    }
}
