//! Übershader family templates.
//!
//! GFXBench's shaders follow the übershader pattern the paper describes in
//! §IV-A: one base source file per technique, specialised into many concrete
//! shader instances through preprocessor `#define` switches. Each [`Family`]
//! below is one such base source together with the list of specialisations
//! the corpus instantiates. The families are chosen so the corpus matches the
//! structural statistics the paper reports (§V): many small shaders, few
//! loops, conditionals in roughly a quarter of shaders, constant divisions and
//! per-component vector writes nearly everywhere.

/// One übershader family: a base source and its specialisations.
#[derive(Debug, Clone)]
pub struct Family {
    /// Family name (used as the prefix of instance names).
    pub name: &'static str,
    /// Base GLSL source containing `#ifdef` specialisation points.
    pub source: &'static str,
    /// Each entry is one instance: a list of `(MACRO, value)` definitions.
    pub specializations: Vec<Vec<(&'static str, &'static str)>>,
}

/// Simple UI / sprite blit shaders — the "long tail" of trivial shaders that
/// dominates the corpus size distribution (Fig. 4a).
const UI_BLIT: &str = r#"
out vec4 fragColor;
in vec2 uv;
uniform sampler2D sprite;
uniform vec4 tintColor;
uniform float opacity;
void main() {
    vec4 base = texture(sprite, uv);
#ifdef USE_TINT
    base = base * tintColor;
#endif
#ifdef USE_GRAYSCALE
    float luma = dot(base.rgb, vec3(0.299, 0.587, 0.114));
    base.rgb = vec3(luma);
#endif
#ifdef USE_PREMULTIPLY
    base.rgb = base.rgb * base.a;
#endif
#ifdef USE_HALF_INTENSITY
    base.rgb = base.rgb / 2.0;
#endif
#ifdef USE_VIGNETTE
    float d = distance(uv, vec2(0.5, 0.5));
    base.rgb = base.rgb * clamp(1.0 - d * d / 0.55, 0.0, 1.0);
#endif
    fragColor.rgb = base.rgb;
    fragColor.a = base.a * opacity / OPACITY_SCALE;
}
"#;

/// Particle / additive effect shaders: tiny, often alpha-tested.
const PARTICLE: &str = r#"
out vec4 fragColor;
in vec2 uv;
in vec4 particleColor;
uniform sampler2D particleTex;
uniform float fadeScale;
void main() {
    vec4 tex = texture(particleTex, uv);
    vec4 color = tex * particleColor;
#ifdef USE_SOFT_FADE
    color.a = color.a * clamp(fadeScale * FADE_RATE, 0.0, 1.0);
#endif
#ifdef USE_ALPHA_TEST
    if (color.a < 0.0125) {
        discard;
    }
#endif
#ifdef USE_BOOST
    color.rgb = color.rgb * BOOST_FACTOR;
#endif
    fragColor = color;
}
"#;

/// Environment / skybox sampling.
const SKYBOX: &str = r#"
out vec4 fragColor;
in vec3 viewDir;
uniform samplerCube envMap;
uniform float envIntensity;
uniform float horizonFade;
void main() {
    vec3 dir = normalize(viewDir);
    vec4 env = texture(envMap, dir);
    vec3 color = env.rgb * envIntensity;
#ifdef USE_HORIZON_FADE
    float fade = clamp(dir.y * 4.0 + horizonFade, 0.0, 1.0);
    color = color * fade;
#endif
#ifdef USE_EXPOSURE
    color = color * EXPOSURE_VALUE;
#endif
    fragColor.rgb = color;
    fragColor.a = 1.0;
}
"#;

/// Terrain / decal multi-texture blends.
const TEXTURE_COMBINE: &str = r#"
out vec4 fragColor;
in vec2 uv;
in vec2 detailUv;
uniform sampler2D baseMap;
uniform sampler2D detailMap;
uniform sampler2D blendMask;
uniform vec4 blendTint;
uniform float detailStrength;
void main() {
    vec4 base = texture(baseMap, uv);
    vec4 detail = texture(detailMap, detailUv * DETAIL_SCALE);
    float mask = texture(blendMask, uv).r;
    vec3 blended = mix(base.rgb, detail.rgb, mask * detailStrength);
#ifdef USE_TINT
    blended = blended * blendTint.rgb;
#endif
#ifdef USE_CONTRAST
    blended = (blended - vec3(0.5)) * CONTRAST_FACTOR + vec3(0.5);
#endif
#ifdef USE_DESATURATE
    float luma = dot(blended, vec3(0.299, 0.587, 0.114));
    blended = mix(blended, vec3(luma), 0.35);
#endif
    fragColor.rgb = blended;
    fragColor.a = base.a;
}
"#;

/// The big forward-lighting übershader: per-pixel lighting with many optional
/// features, the largest family in the corpus (a few hundred lines when all
/// features are enabled).
const FORWARD_LIT: &str = r#"
out vec4 fragColor;
in vec2 uv;
in vec3 worldNormal;
in vec3 worldPos;
in vec3 viewDir;
uniform sampler2D albedoMap;
uniform sampler2D normalMap;
uniform sampler2D specularMap;
uniform sampler2D emissiveMap;
uniform samplerCube envMap;
uniform vec4 lightDirIntensity;
uniform vec4 lightColor;
uniform vec4 ambientColor;
uniform vec4 fogColorDensity;
uniform vec4 materialParams;
uniform float alphaCutoff;

vec3 decodeNormal(vec2 coords) {
    vec3 raw = texture(normalMap, coords).xyz;
    return normalize(raw * 2.0 - vec3(1.0));
}

float specularTerm(vec3 normal, vec3 lightDir, vec3 eyeDir, float power) {
    vec3 halfVec = normalize(lightDir + eyeDir);
    float nh = max(dot(normal, halfVec), 0.0);
    return pow(nh, power);
}

void main() {
    vec4 albedo = texture(albedoMap, uv);
#ifdef USE_ALPHA_TEST
    if (albedo.a < alphaCutoff) {
        discard;
    }
#endif
    vec3 normal = normalize(worldNormal);
#ifdef USE_NORMAL_MAP
    vec3 mapped = decodeNormal(uv);
    normal = normalize(normal + mapped * 0.8);
#endif
    vec3 lightDir = normalize(lightDirIntensity.xyz);
    vec3 eyeDir = normalize(viewDir);
    float ndotl = max(dot(normal, lightDir), 0.0);
    vec3 diffuse = albedo.rgb * lightColor.rgb * ndotl * lightDirIntensity.w;
    vec3 ambient = albedo.rgb * ambientColor.rgb * ambientColor.a;
    vec3 color = diffuse + ambient;
#ifdef USE_SPECULAR
    float specMask = texture(specularMap, uv).r;
    float spec = specularTerm(normal, lightDir, eyeDir, materialParams.x);
    color = color + lightColor.rgb * spec * specMask * materialParams.y;
#endif
#ifdef USE_ENV_REFLECTION
    vec3 reflected = reflect(-eyeDir, normal);
    vec3 envSample = texture(envMap, reflected).rgb;
    color = mix(color, envSample, materialParams.z * 0.5);
#endif
#ifdef USE_EMISSIVE
    vec3 emissive = texture(emissiveMap, uv).rgb;
    color = color + emissive * materialParams.w;
#endif
#ifdef USE_FOG
    float fogDist = length(worldPos - viewDir);
    float fogAmount = 1.0 - exp(-fogDist * fogColorDensity.w);
    color = mix(color, fogColorDensity.rgb, clamp(fogAmount, 0.0, 1.0));
#endif
#ifdef USE_RIM_LIGHT
    float rim = 1.0 - max(dot(normal, eyeDir), 0.0);
    color = color + lightColor.rgb * rim * rim * 0.3;
#endif
#ifdef USE_GAMMA
    color = pow(color, vec3(1.0 / 2.2));
#endif
    fragColor.rgb = color;
    fragColor.a = albedo.a;
}
"#;

/// Percentage-closer shadow filtering — one of the few loop-carrying families.
const SHADOW_FILTER: &str = r#"
out vec4 fragColor;
in vec2 uv;
in vec4 shadowCoord;
uniform sampler2D shadowMap;
uniform sampler2D sceneColor;
uniform float shadowStrength;
uniform float texelSize;
void main() {
    vec3 scene = texture(sceneColor, uv).rgb;
    vec2 base = shadowCoord.xy / shadowCoord.w;
    float reference = shadowCoord.z / shadowCoord.w - 0.0015;
    float lit = 0.0;
    for (int i = 0; i < TAP_COUNT; i++) {
        const vec2[] taps = vec2[](
            vec2(-0.94, -0.40), vec2(0.94, -0.77), vec2(-0.09, -0.93), vec2(0.34, 0.29),
            vec2(-0.91, 0.45), vec2(-0.81, -0.87), vec2(-0.38, 0.27), vec2(0.97, 0.44),
            vec2(0.45, -0.39), vec2(0.41, 0.92), vec2(-0.42, -0.46), vec2(-0.54, 0.76),
            vec2(0.27, -0.63), vec2(-0.12, 0.72), vec2(0.74, 0.11), vec2(0.06, 0.24));
        vec2 offset = taps[i] * texelSize * SPREAD;
        float depth = texture(shadowMap, base + offset).r;
        lit += depth > reference ? 1.0 : 0.0;
    }
    lit = lit / float(TAP_COUNT);
#ifdef USE_SOFT_CONTACT
    lit = smoothstep(0.1, 0.9, lit);
#endif
    float shadowed = mix(1.0 - shadowStrength, 1.0, lit);
    fragColor.rgb = scene * shadowed;
    fragColor.a = 1.0;
}
"#;

/// Separable gaussian blur / bloom downsampling — the other loop family.
const BLOOM_BLUR: &str = r#"
out vec4 fragColor;
in vec2 uv;
uniform sampler2D inputImage;
uniform vec2 blurDirection;
uniform float bloomBoost;
void main() {
    const float[] kernel = float[](0.05, 0.09, 0.12, 0.15, 0.18, 0.15, 0.12, 0.09, 0.05);
    vec4 acc = vec4(0.0);
    for (int i = 0; i < RADIUS; i++) {
        float offset = (float(i) - HALF_RADIUS) * 0.004;
        vec2 sampleUv = uv + blurDirection * offset;
        acc += texture(inputImage, sampleUv) * kernel[i];
    }
#ifdef USE_THRESHOLD
    vec3 bright = max(acc.rgb - vec3(0.7), vec3(0.0));
    acc.rgb = bright * bloomBoost;
#endif
#ifdef USE_BOOST
    acc.rgb = acc.rgb * bloomBoost * 1.0;
#endif
    fragColor = acc / WEIGHT_SUM;
}
"#;

/// Screen-space ambient occlusion estimation (loop + dot products).
const SSAO: &str = r#"
out vec4 fragColor;
in vec2 uv;
uniform sampler2D depthBuffer;
uniform sampler2D normalBuffer;
uniform float aoRadius;
uniform float aoBias;
void main() {
    const vec2[] kernel = vec2[](
        vec2(0.53, 0.21), vec2(-0.62, 0.17), vec2(0.12, -0.67), vec2(-0.25, -0.42),
        vec2(0.31, 0.58), vec2(-0.48, 0.55), vec2(0.71, -0.23), vec2(-0.11, 0.36));
    float centerDepth = texture(depthBuffer, uv).r;
    vec3 normal = texture(normalBuffer, uv).xyz * 2.0 - vec3(1.0);
    float occlusion = 0.0;
    for (int i = 0; i < SAMPLE_COUNT; i++) {
        vec2 offset = kernel[i] * aoRadius;
        float sampleDepth = texture(depthBuffer, uv + offset).r;
        float delta = centerDepth - sampleDepth - aoBias;
        occlusion += clamp(delta * 40.0, 0.0, 1.0) * (1.0 - clamp(delta * 8.0, 0.0, 1.0));
    }
    float ao = 1.0 - occlusion / float(SAMPLE_COUNT);
#ifdef USE_POWER_CURVE
    ao = pow(ao, 1.6);
#endif
    fragColor.rgb = vec3(ao);
    fragColor.a = 1.0;
}
"#;

/// Animated water surface: transcendental-heavy with reflections.
const WATER: &str = r#"
out vec4 fragColor;
in vec2 uv;
in vec3 viewDir;
uniform sampler2D normalMap;
uniform samplerCube envMap;
uniform vec4 waterTint;
uniform float waveTime;
uniform float waveScale;
void main() {
    vec2 wave1 = uv * 4.0 + vec2(waveTime * 0.03, waveTime * 0.017);
    vec2 wave2 = uv * 7.0 - vec2(waveTime * 0.021, waveTime * 0.013);
    vec3 n1 = texture(normalMap, wave1).xyz * 2.0 - vec3(1.0);
    vec3 n2 = texture(normalMap, wave2).xyz * 2.0 - vec3(1.0);
    vec3 normal = normalize(n1 + n2 * waveScale);
    float ripple = sin(uv.x * 40.0 + waveTime) * cos(uv.y * 33.0 - waveTime) * 0.02;
    normal.x = normal.x + ripple;
    vec3 eye = normalize(viewDir);
    vec3 reflected = reflect(-eye, normal);
    vec3 env = texture(envMap, reflected).rgb;
    float fresnel = pow(1.0 - max(dot(eye, normal), 0.0), 5.0);
    vec3 color = mix(waterTint.rgb, env, clamp(fresnel * FRESNEL_SCALE, 0.0, 1.0));
#ifdef USE_FOAM
    float foam = smoothstep(0.6, 0.9, fresnel + ripple * 12.0);
    color = color + vec3(foam * 0.35);
#endif
    fragColor.rgb = color;
    fragColor.a = waterTint.a;
}
"#;

/// Post-processing colour grading / tonemapping variants.
const COLOR_GRADE: &str = r#"
out vec4 fragColor;
in vec2 uv;
uniform sampler2D sceneColor;
uniform float exposure;
uniform vec4 liftGammaGain;
void main() {
    vec3 color = texture(sceneColor, uv).rgb * exposure;
#ifdef USE_REINHARD
    color = color / (color + vec3(1.0));
#endif
#ifdef USE_FILMIC
    vec3 x = max(color - vec3(0.004), vec3(0.0));
    color = (x * (6.2 * x + vec3(0.5))) / (x * (6.2 * x + vec3(1.7)) + vec3(0.06));
#endif
#ifdef USE_LIFT_GAIN
    color = color * liftGammaGain.z + vec3(liftGammaGain.x * 0.1);
#endif
#ifdef USE_SATURATION
    float luma = dot(color, vec3(0.2126, 0.7152, 0.0722));
    color = mix(vec3(luma), color, SATURATION);
#endif
    color = pow(color, vec3(1.0 / GAMMA));
    fragColor.rgb = color;
    fragColor.a = 1.0;
}
"#;

/// Depth-of-field style circle-of-confusion + small utility passes.
const UTILITY: &str = r#"
out vec4 fragColor;
in vec2 uv;
uniform sampler2D inputA;
uniform sampler2D inputB;
uniform vec4 params;
void main() {
    vec4 a = texture(inputA, uv);
#ifdef MODE_COPY
    fragColor = a;
#endif
#ifdef MODE_SCALE_BIAS
    fragColor = a * params.x + vec4(params.y);
#endif
#ifdef MODE_BLEND
    vec4 b = texture(inputB, uv);
    fragColor = mix(a, b, params.z);
#endif
#ifdef MODE_LUMA
    float luma = dot(a.rgb, vec3(0.299, 0.587, 0.114));
    fragColor = vec4(luma, luma, luma, 1.0);
#endif
#ifdef MODE_COC
    float depth = a.r;
    float coc = clamp(abs(depth - params.x) / params.y, 0.0, 1.0);
    fragColor = vec4(coc, coc, coc, 1.0);
#endif
}
"#;

/// Builds the full family list with their specialisations.
pub fn all_families() -> Vec<Family> {
    vec![
        Family {
            name: "ui_blit",
            source: UI_BLIT,
            specializations: cross(
                &[
                    &[],
                    &[("USE_TINT", "")],
                    &[("USE_GRAYSCALE", "")],
                    &[("USE_TINT", ""), ("USE_PREMULTIPLY", "")],
                    &[("USE_TINT", ""), ("USE_VIGNETTE", "")],
                    &[("USE_HALF_INTENSITY", "")],
                    &[
                        ("USE_TINT", ""),
                        ("USE_GRAYSCALE", ""),
                        ("USE_VIGNETTE", ""),
                    ],
                    &[("USE_PREMULTIPLY", ""), ("USE_HALF_INTENSITY", "")],
                ],
                &[("OPACITY_SCALE", "1.0"), ("OPACITY_SCALE", "2.0")],
            ),
        },
        Family {
            name: "particle",
            source: PARTICLE,
            specializations: cross(
                &[
                    &[],
                    &[("USE_SOFT_FADE", ""), ("FADE_RATE", "1.5")],
                    &[("USE_ALPHA_TEST", "")],
                    &[("USE_BOOST", ""), ("BOOST_FACTOR", "2.5")],
                    &[
                        ("USE_SOFT_FADE", ""),
                        ("FADE_RATE", "0.75"),
                        ("USE_ALPHA_TEST", ""),
                    ],
                    &[
                        ("USE_BOOST", ""),
                        ("BOOST_FACTOR", "1.25"),
                        ("USE_ALPHA_TEST", ""),
                    ],
                ],
                &[("_PAD", "0")],
            ),
        },
        Family {
            name: "skybox",
            source: SKYBOX,
            specializations: vec![
                vec![],
                vec![("USE_HORIZON_FADE", "")],
                vec![("USE_EXPOSURE", ""), ("EXPOSURE_VALUE", "1.4")],
                vec![
                    ("USE_EXPOSURE", ""),
                    ("EXPOSURE_VALUE", "0.8"),
                    ("USE_HORIZON_FADE", ""),
                ],
            ],
        },
        Family {
            name: "texture_combine",
            source: TEXTURE_COMBINE,
            specializations: cross(
                &[
                    &[("DETAIL_SCALE", "4.0")],
                    &[("DETAIL_SCALE", "8.0"), ("USE_TINT", "")],
                    &[
                        ("DETAIL_SCALE", "4.0"),
                        ("USE_CONTRAST", ""),
                        ("CONTRAST_FACTOR", "1.3"),
                    ],
                    &[("DETAIL_SCALE", "16.0"), ("USE_DESATURATE", "")],
                    &[
                        ("DETAIL_SCALE", "8.0"),
                        ("USE_TINT", ""),
                        ("USE_CONTRAST", ""),
                        ("CONTRAST_FACTOR", "1.1"),
                    ],
                ],
                &[("_PAD", "0"), ("_PAD", "1")],
            ),
        },
        Family {
            name: "forward_lit",
            source: FORWARD_LIT,
            specializations: forward_lit_specializations(),
        },
        Family {
            name: "shadow_filter",
            source: SHADOW_FILTER,
            specializations: vec![
                vec![("TAP_COUNT", "4"), ("SPREAD", "1.0")],
                vec![("TAP_COUNT", "8"), ("SPREAD", "1.0")],
                vec![("TAP_COUNT", "16"), ("SPREAD", "1.0")],
                vec![
                    ("TAP_COUNT", "8"),
                    ("SPREAD", "2.0"),
                    ("USE_SOFT_CONTACT", ""),
                ],
                vec![
                    ("TAP_COUNT", "16"),
                    ("SPREAD", "1.5"),
                    ("USE_SOFT_CONTACT", ""),
                ],
                vec![
                    ("TAP_COUNT", "4"),
                    ("SPREAD", "0.5"),
                    ("USE_SOFT_CONTACT", ""),
                ],
            ],
        },
        Family {
            name: "bloom_blur",
            source: BLOOM_BLUR,
            specializations: vec![
                vec![
                    ("RADIUS", "5"),
                    ("HALF_RADIUS", "2.0"),
                    ("WEIGHT_SUM", "0.59"),
                ],
                vec![
                    ("RADIUS", "9"),
                    ("HALF_RADIUS", "4.0"),
                    ("WEIGHT_SUM", "1.0"),
                ],
                vec![
                    ("RADIUS", "9"),
                    ("HALF_RADIUS", "4.0"),
                    ("WEIGHT_SUM", "1.0"),
                    ("USE_THRESHOLD", ""),
                ],
                vec![
                    ("RADIUS", "5"),
                    ("HALF_RADIUS", "2.0"),
                    ("WEIGHT_SUM", "0.59"),
                    ("USE_BOOST", ""),
                ],
                vec![
                    ("RADIUS", "7"),
                    ("HALF_RADIUS", "3.0"),
                    ("WEIGHT_SUM", "0.86"),
                    ("USE_THRESHOLD", ""),
                ],
                vec![
                    ("RADIUS", "7"),
                    ("HALF_RADIUS", "3.0"),
                    ("WEIGHT_SUM", "0.86"),
                    ("USE_BOOST", ""),
                ],
            ],
        },
        Family {
            name: "ssao",
            source: SSAO,
            specializations: vec![
                vec![("SAMPLE_COUNT", "4")],
                vec![("SAMPLE_COUNT", "8")],
                vec![("SAMPLE_COUNT", "8"), ("USE_POWER_CURVE", "")],
                vec![("SAMPLE_COUNT", "4"), ("USE_POWER_CURVE", "")],
            ],
        },
        Family {
            name: "water",
            source: WATER,
            specializations: vec![
                vec![("FRESNEL_SCALE", "1.0")],
                vec![("FRESNEL_SCALE", "1.5")],
                vec![("FRESNEL_SCALE", "1.0"), ("USE_FOAM", "")],
                vec![("FRESNEL_SCALE", "2.0"), ("USE_FOAM", "")],
            ],
        },
        Family {
            name: "color_grade",
            source: COLOR_GRADE,
            specializations: vec![
                vec![("GAMMA", "2.2")],
                vec![("GAMMA", "2.2"), ("USE_REINHARD", "")],
                vec![("GAMMA", "2.4"), ("USE_FILMIC", "")],
                vec![
                    ("GAMMA", "2.2"),
                    ("USE_REINHARD", ""),
                    ("USE_SATURATION", ""),
                    ("SATURATION", "1.2"),
                ],
                vec![("GAMMA", "2.2"), ("USE_FILMIC", ""), ("USE_LIFT_GAIN", "")],
                vec![
                    ("GAMMA", "1.8"),
                    ("USE_LIFT_GAIN", ""),
                    ("USE_SATURATION", ""),
                    ("SATURATION", "0.8"),
                ],
                vec![
                    ("GAMMA", "2.2"),
                    ("USE_FILMIC", ""),
                    ("USE_SATURATION", ""),
                    ("SATURATION", "1.1"),
                ],
                vec![
                    ("GAMMA", "2.4"),
                    ("USE_REINHARD", ""),
                    ("USE_LIFT_GAIN", ""),
                ],
            ],
        },
        Family {
            name: "utility",
            source: UTILITY,
            specializations: vec![
                vec![("MODE_COPY", "")],
                vec![("MODE_SCALE_BIAS", "")],
                vec![("MODE_BLEND", "")],
                vec![("MODE_LUMA", "")],
                vec![("MODE_COC", "")],
            ],
        },
    ]
}

/// The forward-lighting übershader gets the widest spread of specialisations,
/// like GFXBench's families of near-identical lit shaders.
fn forward_lit_specializations() -> Vec<Vec<(&'static str, &'static str)>> {
    let feature_sets: Vec<Vec<(&'static str, &'static str)>> = vec![
        vec![],
        vec![("USE_NORMAL_MAP", "")],
        vec![("USE_SPECULAR", "")],
        vec![("USE_NORMAL_MAP", ""), ("USE_SPECULAR", "")],
        vec![
            ("USE_NORMAL_MAP", ""),
            ("USE_SPECULAR", ""),
            ("USE_ENV_REFLECTION", ""),
        ],
        vec![
            ("USE_NORMAL_MAP", ""),
            ("USE_SPECULAR", ""),
            ("USE_EMISSIVE", ""),
        ],
        vec![("USE_FOG", "")],
        vec![("USE_NORMAL_MAP", ""), ("USE_FOG", "")],
        vec![("USE_SPECULAR", ""), ("USE_FOG", ""), ("USE_RIM_LIGHT", "")],
        vec![
            ("USE_NORMAL_MAP", ""),
            ("USE_SPECULAR", ""),
            ("USE_ENV_REFLECTION", ""),
            ("USE_EMISSIVE", ""),
            ("USE_FOG", ""),
        ],
        vec![("USE_ALPHA_TEST", "")],
        vec![("USE_ALPHA_TEST", ""), ("USE_NORMAL_MAP", "")],
        vec![
            ("USE_ALPHA_TEST", ""),
            ("USE_NORMAL_MAP", ""),
            ("USE_SPECULAR", ""),
        ],
        vec![("USE_RIM_LIGHT", "")],
        vec![("USE_EMISSIVE", "")],
        vec![("USE_ENV_REFLECTION", "")],
    ];
    let mut out = Vec::new();
    for set in &feature_sets {
        // Non-gamma and gamma variants of each feature set.
        out.push(set.clone());
        let mut with_gamma = set.clone();
        with_gamma.push(("USE_GAMMA", ""));
        out.push(with_gamma);
    }
    out
}

/// Cartesian product helper: every base specialisation combined with every
/// extra parameter assignment.
fn cross(
    bases: &[&[(&'static str, &'static str)]],
    params: &[(&'static str, &'static str)],
) -> Vec<Vec<(&'static str, &'static str)>> {
    let mut out = Vec::new();
    for base in bases {
        for param in params {
            let mut spec: Vec<(&'static str, &'static str)> = base.to_vec();
            spec.push(*param);
            out.push(spec);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_inventory_is_diverse() {
        let families = all_families();
        assert!(families.len() >= 10);
        let total: usize = families.iter().map(|f| f.specializations.len()).sum();
        assert!(total >= 100, "expected at least 100 instances, got {total}");
        // Loop-carrying families are a minority, as in the paper.
        let loopy: usize = families
            .iter()
            .filter(|f| f.source.contains("for ("))
            .map(|f| f.specializations.len())
            .sum();
        assert!((loopy as f64) < 0.25 * total as f64);
    }

    #[test]
    fn family_names_are_unique() {
        let mut names: Vec<&str> = all_families().iter().map(|f| f.name).collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(before, names.len());
    }

    #[test]
    fn cross_products_compose() {
        let specs = cross(&[&[], &[("A", "")]], &[("P", "1"), ("P", "2")]);
        assert_eq!(specs.len(), 4);
        assert!(specs[3].contains(&("A", "")));
        assert!(specs[3].contains(&("P", "2")));
    }
}
