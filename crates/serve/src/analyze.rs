//! Static analysis as a compile-service request path.
//!
//! [`CompileService::analyze`] answers "what does this platform's static
//! model think of this shader under these flags" through the same lifecycle
//! as any compile: route → coalesce → batch → memo. The analysed IR is the
//! *optimized* IR of the requested flag combination (the schedule walk is
//! memo-warm when any tenant already compiled it), and the report itself is
//! memoised per `(fingerprint, personality)` in the shared [`CorpusCache`] —
//! a repeat analysis of the same optimized form is an `Arc<str>` refcount
//! bump, never a re-walk. Warm-start snapshots persist the reports, so a
//! rebooted service answers analyses it never computed in this process.
//!
//! This is the endpoint the online tuner's static prefilter calls per
//! candidate ([`TuneSpec::with_static_prefilter`](crate::tune::TuneSpec)),
//! and what the CI lint-artifact job drains for the flagship corpus.
//!
//! [`CorpusCache`]: prism_core::CorpusCache

use crate::service::{CompileRequest, CompileService, ServeError};
use prism_analyze::StaticReport;
use prism_core::OptFlags;
use prism_gpu::Vendor;

impl CompileService {
    /// The static-analysis report (per-pipe cost model + lints) of `source`
    /// compiled under `flags`, as seen by `vendor`'s platform personality.
    ///
    /// # Errors
    ///
    /// [`ServeError`] when the underlying compile fails, or when the memoised
    /// report text fails to parse (an internal bug, surfaced as
    /// [`ServeError::Compile`]).
    pub fn analyze(
        &self,
        source: &str,
        flags: OptFlags,
        vendor: Vendor,
    ) -> Result<StaticReport, ServeError> {
        let request = CompileRequest::builder(source)
            .flags(flags)
            .backend(vendor.backend())
            .analyze(vendor)
            .build();
        let response = self.compile(&request)?;
        let json = response.analysis.ok_or_else(|| {
            ServeError::Compile("analysis requested but response carried none".to_string())
        })?;
        StaticReport::from_json(&json).map_err(ServeError::Compile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServeConfig;
    use prism_core::CacheStore;

    const SHADER: &str = r#"
        uniform sampler2D tex; uniform vec4 tint; uniform float unused_knob;
        in vec2 uv; out vec4 color;
        void main() {
            vec4 t = texture(tex, uv);
            color = t * tint + vec4(0.5) * 2.0;
        }
    "#;

    #[test]
    fn analyze_reports_cost_and_is_memoised_per_personality() {
        let service = CompileService::new(ServeConfig::default());
        let report = service
            .analyze(SHADER, OptFlags::lunarglass_default(), Vendor::Arm)
            .unwrap();
        assert_eq!(report.personality, Vendor::Arm.name());
        assert!(report.cost.estimated_cycles > 0.0);

        let after_first = service.cache().stats();
        assert_eq!(after_first.static_analyses, 1);

        // The same (flags, personality) again: served from the analysis
        // memo, no fresh walk.
        let again = service
            .analyze(SHADER, OptFlags::lunarglass_default(), Vendor::Arm)
            .unwrap();
        assert_eq!(again, report);
        let after_second = service.cache().stats();
        assert_eq!(after_second.static_analyses, 1);
        assert_eq!(after_second.analysis_memo_hits, 1);

        // A different personality is a distinct memo line.
        let apple = service
            .analyze(SHADER, OptFlags::lunarglass_default(), Vendor::Apple)
            .unwrap();
        assert_eq!(apple.personality, Vendor::Apple.name());
        assert_eq!(service.cache().stats().static_analyses, 2);
    }

    #[test]
    fn analyze_counts_lints_once_per_fresh_analysis() {
        let service = CompileService::new(ServeConfig::default());
        // `unused_knob` is declared but never read: at least one lint.
        let report = service
            .analyze(SHADER, OptFlags::NONE, Vendor::Qualcomm)
            .unwrap();
        assert!(!report.lints.is_empty(), "expected an unused-uniform lint");
        let emitted = service.stats().lints_emitted;
        assert_eq!(emitted, report.lints.len());

        // A memo-served repeat does not re-count its lints.
        service
            .analyze(SHADER, OptFlags::NONE, Vendor::Qualcomm)
            .unwrap();
        assert_eq!(service.stats().lints_emitted, emitted);
    }

    #[test]
    fn warm_restart_serves_analyses_from_disk() {
        let dir = std::env::temp_dir().join(format!(
            "prism-serve-analyze-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let config = ServeConfig::default().with_warm_start_dir(&dir);
        let first = CompileService::new(config.clone());
        let report = first
            .analyze(SHADER, OptFlags::lunarglass_default(), Vendor::Radv)
            .unwrap();
        first.shutdown().unwrap();

        let second = CompileService::new(config);
        let replayed = second
            .analyze(SHADER, OptFlags::lunarglass_default(), Vendor::Radv)
            .unwrap();
        assert_eq!(replayed, report);
        // Answered by the warmed memo: no fresh analysis walk this process.
        let stats = second.cache().stats();
        assert_eq!(stats.static_analyses, 0);
        assert_eq!(
            stats.warm_analysis_hits, 1,
            "hit must come from the snapshot"
        );

        let _ = std::fs::remove_dir_all(&dir);
    }
}
