//! Online flag tuning as a compile-service tenant.
//!
//! [`CompileService::tune`] runs a measurement-in-the-loop flag search for
//! one shader on one simulated platform, *through the service itself*: every
//! candidate combination the search strategy wants to try becomes an
//! ordinary [`CompileRequest`] and walks the same route → coalesce → batch →
//! memo lifecycle as serving traffic. The consequences are exactly the ones
//! the service was built for:
//!
//! * variants the serving plane already emitted cost the search tenant a
//!   memo hit (an `Arc<str>` refcount bump), not an emission — and vice
//!   versa: variants the tuner paid for are served zero-copy afterwards;
//! * concurrent tuners and servers asking for the same `(fingerprint,
//!   flags, backend)` coalesce onto one compile;
//! * the tuner's compiles warm the shared [`CorpusCache`] for the whole
//!   übershader family.
//!
//! Measurement goes through [`prism_search::LiveEvaluator`]: the emitted
//! text is submitted to the platform's driver model and timed by the
//! harness under a deterministic per-(shader, platform) noise stream, so a
//! tune pass is reproducible end to end. The search itself is one of the
//! explore/exploit bandits from `prism_search::bandit`, warm-started from
//! the family's best-known set (tracked service-side, last-wins, across
//! tune passes). When the caller holds an exhaustive
//! [`ShaderPlatformRecord`] for the same (shader, platform), passing it to
//! [`CompileService::tune_spec`] scores the run's anytime behaviour as a
//! [`RegretTracker`] curve and publishes the final regret in
//! [`ServiceStats::tune_regret_x1000`](crate::ServiceStats).

use crate::service::{CompileRequest, CompileService, ServeError};
use prism_core::{OptFlags, SpecKey};
use prism_gpu::{Platform, Vendor};
use prism_harness::{measure_cost, MeasureConfig};
use prism_search::{
    CompileHandle, EpsilonGreedy, LiveEvaluator, RegretTracker, SearchDriver, SearchStrategy,
    ShaderPlatformRecord, StaticCostHook, Ucb1,
};

/// Which bandit drives a tune pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TuneStrategy {
    /// Seeded ε-greedy over the 8 flag toggles.
    EpsilonGreedy {
        /// Exploration probability in `[0, 1]`.
        epsilon: f64,
    },
    /// Deterministic UCB1 over the 8 flag toggles (the default: no RNG, so
    /// counters are stable by construction).
    Ucb1 {
        /// Confidence-bonus width.
        exploration: f64,
    },
}

/// Everything one tune pass needs beyond the source text.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct TuneSpec {
    /// The platform to tune for (decides the emission backend too).
    pub vendor: Vendor,
    /// Hard cap on distinct flag combinations measured.
    pub budget: usize,
    /// Seed for the randomised strategies.
    pub seed: u64,
    /// Per-variant measurement loop configuration.
    pub measure: MeasureConfig,
    /// Übershader family for warm-start bookkeeping (`None` = the global
    /// pool).
    pub family: Option<String>,
    /// The bandit to run.
    pub strategy: TuneStrategy,
    /// When `true`, candidates whose static cost
    /// ([`CompileService::analyze`]) is dominated by an already-measured
    /// arm skip their timing measurement (the warm start and the LunarGlass
    /// default are always truly measured). Pruned arms are counted in
    /// [`TuneOutcome::candidates_pruned`] and
    /// [`ServiceStats::search_candidates_pruned`](crate::ServiceStats).
    pub static_prefilter: bool,
    /// Uniform-value specialization arms to evaluate after the flag bandit
    /// settles: each key is compiled as `(best_flags, key)` through the
    /// service (substituted, folded and interp-verified like any specialized
    /// request) and measured once under its own deterministic noise stream.
    /// These measurements are *in addition to* the flag budget — the caller
    /// opted into exactly this many extra arms. Keys that do not apply to
    /// the source, or whose specialized text is identical to the general
    /// one, are skipped without spending a measurement. Empty (the default)
    /// skips the phase entirely.
    pub spec_candidates: Vec<SpecKey>,
}

impl TuneSpec {
    /// A spec for `vendor` with the service defaults: budget 16, quick
    /// measurement loop, deterministic UCB1.
    pub fn new(vendor: Vendor) -> TuneSpec {
        TuneSpec {
            vendor,
            budget: 16,
            seed: 0x5EED_CAFE,
            measure: MeasureConfig::quick(),
            family: None,
            strategy: TuneStrategy::Ucb1 { exploration: 1.5 },
            static_prefilter: false,
            spec_candidates: Vec::new(),
        }
    }

    /// This spec with a different measurement budget.
    pub fn with_budget(mut self, budget: usize) -> TuneSpec {
        self.budget = budget;
        self
    }

    /// This spec with a different strategy seed.
    pub fn with_seed(mut self, seed: u64) -> TuneSpec {
        self.seed = seed;
        self
    }

    /// This spec with a different measurement-loop configuration.
    pub fn with_measure(mut self, measure: MeasureConfig) -> TuneSpec {
        self.measure = measure;
        self
    }

    /// This spec tagged with an übershader family for warm-start sharing.
    pub fn with_family(mut self, family: impl Into<String>) -> TuneSpec {
        self.family = Some(family.into());
        self
    }

    /// This spec with a different bandit.
    pub fn with_strategy(mut self, strategy: TuneStrategy) -> TuneSpec {
        self.strategy = strategy;
        self
    }

    /// This spec with the static-cost prefilter switched on or off.
    pub fn with_static_prefilter(mut self, on: bool) -> TuneSpec {
        self.static_prefilter = on;
        self
    }

    /// This spec with uniform-value specialization arms to evaluate after
    /// the flag bandit (see [`TuneSpec::spec_candidates`]).
    pub fn with_spec_candidates(mut self, candidates: Vec<SpecKey>) -> TuneSpec {
        self.spec_candidates = candidates;
        self
    }
}

/// What one tune pass found and spent.
#[derive(Debug, Clone, PartialEq)]
pub struct TuneOutcome {
    /// Platform name tuned for.
    pub vendor: String,
    /// The bandit that ran.
    pub strategy: String,
    /// The best flag combination found.
    pub best_flags: OptFlags,
    /// Its measured mean frame time (nanoseconds).
    pub best_ns: f64,
    /// Timing measurements taken (distinct combinations measured; the
    /// budgeted resource).
    pub measurements_taken: usize,
    /// Frames sampled across those measurements.
    pub measured_frames: usize,
    /// Distinct combinations compiled through the service.
    pub search_compiles: usize,
    /// Candidates whose timing measurement the static prefilter skipped
    /// (always 0 with [`TuneSpec::static_prefilter`] off).
    pub candidates_pruned: usize,
    /// The budget the driver enforced.
    pub budget: usize,
    /// The combination the bandit evaluated first (the family's best-known
    /// set, or the LunarGlass default on a cold service).
    pub warm_start: OptFlags,
    /// The winning specialization key among the evaluated
    /// [`TuneSpec::spec_candidates`] — general when none was tried or none
    /// beat the general program at `best_flags`. A non-general winner is a
    /// deploy recommendation for a *guarded dispatch*: bind its program when
    /// the assumptions hold, the general `best_flags` program otherwise.
    pub best_spec: SpecKey,
    /// Measured mean frame time (ns) of the `(best_flags, best_spec)`
    /// program; equals `best_ns` when `best_spec` is general.
    pub best_spec_ns: f64,
    /// Specialization arms actually measured (applicable, effective keys).
    pub spec_arms_measured: usize,
    /// Regret-vs-measurements curve against the exhaustive oracle — only
    /// when [`CompileService::tune_spec`] was given a record to score
    /// against.
    pub regret: Option<RegretTracker>,
}

impl CompileService {
    /// Tunes `source` for `vendor` under a measurement `budget`, with the
    /// default spec (quick measurement loop, deterministic UCB1, global
    /// warm-start pool). See [`CompileService::tune_spec`].
    ///
    /// # Errors
    ///
    /// [`ServeError`] when the source never produces a measurable variant
    /// (front-stage rejection, unknown target, compile failure).
    pub fn tune(
        &self,
        source: &str,
        vendor: Vendor,
        budget: usize,
    ) -> Result<TuneOutcome, ServeError> {
        self.tune_spec(source, &TuneSpec::new(vendor).with_budget(budget), None)
    }

    /// Tunes `source` per `spec`, routing every candidate compile through
    /// this service (see the [module docs](self)). With `oracle` set — an
    /// exhaustive record for the same (shader, platform) — the pass is also
    /// scored as a regret curve and the final regret lands in
    /// [`ServiceStats::tune_regret_x1000`](crate::ServiceStats).
    ///
    /// # Errors
    ///
    /// [`ServeError`] when no combination could be evaluated at all; the
    /// error is re-derived from a direct compile of the warm-start
    /// combination so the caller sees the front-end or compile failure
    /// rather than a generic "nothing measured".
    pub fn tune_spec(
        &self,
        source: &str,
        spec: &TuneSpec,
        oracle: Option<&ShaderPlatformRecord>,
    ) -> Result<TuneOutcome, ServeError> {
        let platform = Platform::new(spec.vendor);
        let backend = platform.backend();
        let family = spec.family.clone().unwrap_or_default();
        let warm = self
            .tune_warm_hint(&family)
            .unwrap_or_else(OptFlags::lunarglass_default);

        let compile: CompileHandle = Box::new(|flags| {
            let request = CompileRequest::builder(source)
                .flags(flags)
                .backend(backend)
                .build();
            self.compile(&request)
                .map(|response| response.text)
                .map_err(|e| e.to_string())
        });
        // The shader's measurement identity is its source hash — the same
        // name the front stage gives the IR — so re-tuning the same text
        // reproduces byte-identical noise streams.
        let shader_name = crate::service::source_name(source);
        let mut evaluator =
            LiveEvaluator::new(compile, &platform, shader_name.clone(), spec.measure)
                .with_warm_start(warm);
        if spec.static_prefilter {
            // Per-candidate static cost through the service's analysis path:
            // memoised per (fingerprint, personality), so a candidate that
            // collapses to an already-analysed optimized form costs a memo
            // hit, not a walk.
            let hook: StaticCostHook = Box::new(move |flags| {
                self.analyze(source, flags, spec.vendor)
                    .ok()
                    .map(|report| report.cost.estimated_cycles)
            });
            evaluator = evaluator.with_static_prefilter(hook);
        }
        let driver = SearchDriver::over(Box::new(evaluator), spec.budget);

        let strategy: Box<dyn SearchStrategy> = match spec.strategy {
            TuneStrategy::EpsilonGreedy { epsilon } => Box::new(EpsilonGreedy {
                seed: spec.seed,
                epsilon,
            }),
            TuneStrategy::Ucb1 { exploration } => Box::new(Ucb1 { exploration }),
        };
        strategy.run(&driver);

        let Some((best_flags, best_ns)) = driver.best_evaluated() else {
            // Nothing measured: surface the underlying service error.
            let request = CompileRequest::builder(source)
                .flags(warm)
                .backend(backend)
                .build();
            return Err(match self.compile(&request) {
                Err(e) => e,
                Ok(_) => ServeError::Compile(
                    "platform driver rejected every measured variant".to_string(),
                ),
            });
        };

        let cost = driver.cost();

        // Specialization phase: with the flag bandit settled on `best_flags`,
        // evaluate each requested `(best_flags, spec)` arm. The compile walks
        // the ordinary service lifecycle — substituted, folded and
        // interp-verified against the general base before anything is served
        // — so an arm that reaches measurement is already known to be exact.
        let mut best_spec = SpecKey::general();
        let mut best_spec_ns = best_ns;
        let mut spec_arms_measured = 0usize;
        let mut spec_compiles = 0usize;
        let mut spec_frames = 0usize;
        if !spec.spec_candidates.is_empty() {
            let general_text = CompileRequest::builder(source)
                .flags(best_flags)
                .backend(backend)
                .build();
            let general_text = self.compile(&general_text).ok().map(|r| r.text);
            for key in &spec.spec_candidates {
                if key.is_general() {
                    continue;
                }
                let request = CompileRequest::builder(source)
                    .flags(best_flags)
                    .backend(backend)
                    .specialize(key.clone())
                    .build();
                // Inapplicable keys (unknown slot, unsupported type) are
                // skipped arms, not tune failures.
                let Ok(response) = self.compile(&request) else {
                    continue;
                };
                spec_compiles += 1;
                // An ineffective specialization (text identical to the
                // general program) would measure the same code under a
                // different noise stream — skip it.
                if general_text.as_deref() == Some(&*response.text) {
                    continue;
                }
                let Ok(shader_cost) = platform.submit(&response.text, &shader_name) else {
                    continue;
                };
                // One deterministic stream per (shader, platform, flags,
                // spec) arm, disjoint from the flag streams by the key hash.
                let stream = crate::service::fnv64(
                    format!(
                        "{shader_name}\0{}\0{}\0{key}",
                        spec.vendor.name(),
                        best_flags
                    )
                    .as_bytes(),
                );
                let m = measure_cost(&platform, &shader_cost, &spec.measure, stream);
                spec_arms_measured += 1;
                spec_frames += m.samples;
                if m.mean_ns < best_spec_ns {
                    best_spec_ns = m.mean_ns;
                    best_spec = key.clone();
                }
            }
        }

        let regret = oracle
            .map(|record| RegretTracker::from_log(&driver.evaluation_log(), record, spec.budget));
        let regret_x1000 = regret
            .as_ref()
            .map(|r| (r.final_regret().max(0.0) * 1000.0).round() as usize);
        self.record_tune(
            &family,
            best_flags,
            cost.measurements + spec_arms_measured,
            cost.compiles + spec_compiles,
            cost.candidates_pruned,
            regret_x1000,
        );

        Ok(TuneOutcome {
            vendor: spec.vendor.name().to_string(),
            strategy: strategy.name().to_string(),
            best_flags,
            best_ns,
            measurements_taken: cost.measurements + spec_arms_measured,
            measured_frames: cost.measured_frames + spec_frames,
            search_compiles: cost.compiles + spec_compiles,
            candidates_pruned: cost.candidates_pruned,
            budget: spec.budget,
            warm_start: warm,
            best_spec,
            best_spec_ns,
            spec_arms_measured,
            regret,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServeConfig;
    use prism_emit::BackendKind;

    const SHADER: &str = r#"
        uniform sampler2D tex; uniform vec4 ambient; in vec2 uv; out vec4 c;
        void main() {
            const vec2[] offs = vec2[](vec2(-0.01), vec2(0.0), vec2(0.01));
            c = vec4(0.0);
            float total = 0.0;
            for (int i = 0; i < 3; i++) {
                total += 0.25;
                c += texture(tex, uv + offs[i]) * 2.0 * ambient;
            }
            c /= total;
        }
    "#;

    #[test]
    fn tune_is_deterministic_and_respects_its_budget() {
        let run = || {
            let service = CompileService::new(ServeConfig::default());
            let outcome = service.tune(SHADER, Vendor::Amd, 12).unwrap();
            let stats = service.stats();
            (outcome, stats)
        };
        let (a, a_stats) = run();
        let (b, b_stats) = run();
        assert_eq!(a, b, "same spec on a fresh service must reproduce exactly");
        assert_eq!(a_stats, b_stats);
        assert!(a.measurements_taken <= 12, "{a:?}");
        assert_eq!(a.search_compiles, a.measurements_taken);
        assert_eq!(a.warm_start, OptFlags::lunarglass_default());
        assert!(a.best_ns > 0.0);
        assert_eq!(a_stats.tune_requests, 1);
        assert_eq!(a_stats.measurements_taken, a.measurements_taken);
        assert_eq!(a_stats.search_compiles, a.search_compiles);
        // No oracle: the regret gauge stays untouched.
        assert_eq!(a_stats.tune_regret_x1000, 0);
        assert!(a.regret.is_none());
    }

    #[test]
    fn second_tune_warm_starts_from_the_first_and_reuses_the_memo() {
        let service = CompileService::new(ServeConfig::default());
        let first = service.tune(SHADER, Vendor::Amd, 12).unwrap();
        let emissions_after_first = service.stats().cache.emissions;
        let second = service.tune(SHADER, Vendor::Amd, 12).unwrap();
        assert_eq!(second.warm_start, first.best_flags);
        // The second pass starts from a different incumbent, so it may
        // explore a few fresh combinations — but the bulk of its compiles
        // must be answered by the memo the first pass paid for.
        let new_emissions = service.stats().cache.emissions - emissions_after_first;
        assert!(
            new_emissions < second.search_compiles,
            "second tune re-emitted everything: {new_emissions} of {}",
            second.search_compiles
        );
        assert!(service.stats().cache.emission_hits > 0);
        assert_eq!(service.stats().tune_requests, 2);
    }

    #[test]
    fn tune_on_a_mobile_platform_compiles_the_gles_form() {
        let service = CompileService::new(ServeConfig::default());
        let outcome = service.tune(SHADER, Vendor::Arm, 8).unwrap();
        assert!(outcome.measurements_taken <= 8);
        // The Mali platform consumes GLES text: the service emitted through
        // that backend, not desktop GLSL.
        assert!(service.stats().cache.emissions_by_backend[BackendKind::Gles.index()] > 0);
        assert_eq!(
            service.stats().cache.emissions_by_backend[BackendKind::DesktopGlsl.index()],
            0
        );
    }

    #[test]
    fn tune_surfaces_frontend_errors() {
        let service = CompileService::new(ServeConfig::default());
        let err = service
            .tune("void main() { broken", Vendor::Amd, 4)
            .unwrap_err();
        assert!(matches!(err, ServeError::Frontend(_)), "{err:?}");
        // A failed tune records nothing.
        assert_eq!(service.stats().tune_requests, 0);
    }

    #[test]
    fn static_prefilter_accounting_is_deterministic_and_consistent() {
        let spec = TuneSpec::new(Vendor::Amd)
            .with_budget(12)
            .with_static_prefilter(true);
        let run = || {
            let service = CompileService::new(ServeConfig::default());
            let outcome = service.tune_spec(SHADER, &spec, None).unwrap();
            let stats = service.stats();
            (outcome, stats)
        };
        let (a, a_stats) = run();
        let (b, b_stats) = run();
        assert_eq!(a, b, "prefilter tunes must reproduce exactly");
        assert_eq!(a_stats, b_stats);
        // Every evaluated arm was either truly measured or statically
        // pruned; the analysis path never loses one.
        assert_eq!(
            a.search_compiles,
            a.measurements_taken + a.candidates_pruned
        );
        assert_eq!(a_stats.search_candidates_pruned, a.candidates_pruned);
        // The prefilter's analyses went through the shared memo.
        assert!(a_stats.cache.static_analyses > 0);
        assert!(a.best_ns > 0.0);
    }

    #[test]
    fn spec_candidate_arms_ride_the_tune_and_deploy_a_guarded_winner() {
        use prism_core::SpecValue;
        // `ambient` is the shader's only non-sampler uniform: slot 0.
        let zero_ambient = SpecKey::single(0, SpecValue::Zero);
        let spec = TuneSpec::new(Vendor::Amd)
            .with_budget(10)
            .with_spec_candidates(vec![
                SpecKey::general(), // ignored: not an arm
                zero_ambient.clone(),
                SpecKey::single(99, SpecValue::One), // inapplicable: skipped
            ]);
        let run = || {
            let service = CompileService::new(ServeConfig::default());
            let outcome = service.tune_spec(SHADER, &spec, None).unwrap();
            let stats = service.stats();
            (outcome, stats)
        };
        let (a, a_stats) = run();
        let (b, b_stats) = run();
        assert_eq!(a, b, "spec-arm tunes must reproduce exactly");
        assert_eq!(a_stats, b_stats);
        // Exactly the applicable, effective arm was measured, on top of the
        // flag budget, and both ledgers agree.
        assert_eq!(a.spec_arms_measured, 1);
        assert!(a.measurements_taken <= 10 + 1);
        assert_eq!(a_stats.measurements_taken, a.measurements_taken);
        // Zeroing `ambient` folds the whole accumulation loop away — the
        // specialized program must win, and the outcome recommends the
        // guarded dispatch.
        assert_eq!(a.best_spec, zero_ambient);
        assert!(a.best_spec_ns < a.best_ns, "{a:?}");
    }

    #[test]
    fn tunes_without_spec_candidates_report_a_general_winner() {
        let service = CompileService::new(ServeConfig::default());
        let outcome = service.tune(SHADER, Vendor::Amd, 8).unwrap();
        assert!(outcome.best_spec.is_general());
        assert_eq!(outcome.best_spec_ns, outcome.best_ns);
        assert_eq!(outcome.spec_arms_measured, 0);
    }

    #[test]
    fn epsilon_greedy_tunes_are_seeded_deterministic() {
        let spec = TuneSpec::new(Vendor::Nvidia)
            .with_budget(10)
            .with_strategy(TuneStrategy::EpsilonGreedy { epsilon: 0.3 })
            .with_seed(42);
        let run = || {
            let service = CompileService::new(ServeConfig::default());
            service.tune_spec(SHADER, &spec, None).unwrap()
        };
        let a = run();
        assert_eq!(a, run());
        assert_eq!(a.strategy, "epsilon_greedy");
        assert!(a.measurements_taken <= 10);
    }
}
