//! The sharded compile service.
//!
//! One [`CompileService`] owns a [`CorpusCache`] and serves
//! [`CompileRequest`]s through a four-step lifecycle:
//!
//! 1. **route** — the source text goes through a shared *lower-once front
//!    stage* (parse + lower + verify, memoised per source text), and the
//!    base IR's [`fingerprint`] picks the owning shard with the cache's own
//!    16-way split ([`prism_core::shard_of`]) — the same split the warm-start
//!    snapshot files use, so shard ownership survives restarts without
//!    re-keying;
//! 2. **coalesce** — a singleflight table keyed `(fingerprint, flags,
//!    backend)` merges identical in-flight requests: one leader compiles,
//!    every waiter blocks on the same flight and receives the same `Arc`'d
//!    result ([`CacheStats::coalesced_requests`] counts the merged ones);
//! 3. **batch** — the leader's job lands in its shard's queue, and the
//!    shard's owner drains the queue in batches so the queue lock is taken
//!    once per batch, not once per request;
//! 4. **memo** — the compile itself runs against the shared [`CorpusCache`]:
//!    stage transitions and emitted text are answered from the memo whenever
//!    an equivalent request (or a warm-start snapshot) already paid for them,
//!    and the response body is the memo's shared `Arc<str>` handle — a
//!    refcount bump, never a copy.
//!
//! With `workers == 0` the service is *inline*: the submitting thread drives
//! its own shard, which makes request streams fully deterministic (the load
//! harness and the perf gate run this mode). With `workers > 0` a pool of
//! shard-owner threads drains the queues; each worker owns the shards
//! congruent to its index.

use prism_core::cache::SessionId;
use prism_core::specialize::default_probe_points;
use prism_core::{
    build_schedule, shard_of, specialize_shader, CacheStats, CacheStore, CorpusCache, OptFlags,
    Snapshot, SpecKey, Stage, FINGERPRINT_SHARDS,
};
use prism_emit::{BackendChain, BackendKind};
use prism_glsl::ShaderInterface;
use prism_gpu::Vendor;
use prism_ir::fingerprint::{fingerprint, Fingerprint};
use prism_ir::interp::{results_exactly_equal, run_fragment};
use prism_ir::verify::verify;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::Duration;

/// The pass schedule, instantiated once per thread: `Stage` holds boxed
/// passes without `Send + Sync` bounds, so each thread that compiles owns
/// its own (deterministic) copy instead of sharing one behind a lock.
fn with_schedule<R>(f: impl FnOnce(&[Stage]) -> R) -> R {
    thread_local! {
        static SCHEDULE: Vec<Stage> = build_schedule();
    }
    SCHEDULE.with(|s| f(s))
}

/// The deterministic name the service gives an anonymous source text — used
/// for the lowered IR and as the tune tenant's measurement identity.
pub(crate) fn source_name(source: &str) -> String {
    format!("serve-{:016x}", fnv64(source.as_bytes()))
}

/// FNV-1a 64-bit hash (shader naming for anonymous request sources; the
/// tune tenant's specialization-arm stream derivation).
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Service configuration.
///
/// Marked `#[non_exhaustive]`: construct with [`ServeConfig::default`] and
/// the `with_*` setters, so future knobs are not breaking changes.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServeConfig {
    /// Shard-owner worker threads. `0` = inline mode: the submitting thread
    /// drives its own shard (deterministic; what benches and gates use).
    pub workers: usize,
    /// Maximum jobs drained from a shard queue per lock acquisition.
    pub batch_limit: usize,
    /// Warm-start directory: loaded on boot ([`CorpusCache::load`]) and
    /// snapshotted on [`CompileService::shutdown`] ([`CorpusCache::save`]).
    pub warm_start_dir: Option<PathBuf>,
    /// Entry budget for the underlying cache (`None` = unbounded).
    pub cache_budget: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            batch_limit: 64,
            warm_start_dir: None,
            cache_budget: None,
        }
    }
}

impl ServeConfig {
    /// This config with a different worker-pool size (`0` = inline mode).
    pub fn with_workers(mut self, workers: usize) -> ServeConfig {
        self.workers = workers;
        self
    }

    /// This config with a different per-drain batch limit.
    pub fn with_batch_limit(mut self, batch_limit: usize) -> ServeConfig {
        self.batch_limit = batch_limit;
        self
    }

    /// This config with a warm-start snapshot directory.
    pub fn with_warm_start_dir(mut self, dir: impl Into<PathBuf>) -> ServeConfig {
        self.warm_start_dir = Some(dir.into());
        self
    }

    /// This config with a bounded cache-entry budget.
    pub fn with_cache_budget(mut self, budget: usize) -> ServeConfig {
        self.cache_budget = Some(budget);
        self
    }
}

/// What a request asks to be compiled to: a backend identity, or a named
/// target *form* resolved through the [`BackendChain`] (so a request may say
/// `"metal"` or `"essl"` without knowing which emitter serves it).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RequestTarget {
    /// A direct backend identity.
    Kind(BackendKind),
    /// A named form, resolved by chain fall-through.
    Named(String),
}

/// One compile request: source text, flag combination, emission target, and
/// an optional static-analysis personality whose report rides the response.
#[derive(Debug, Clone)]
pub struct CompileRequest {
    /// GLSL source text.
    pub source: String,
    /// Optimization flag combination.
    pub flags: OptFlags,
    /// Emission target.
    pub target: RequestTarget,
    /// When set, the response also carries the platform personality's
    /// static-analysis report (cost model + lints) for the optimized IR,
    /// memoised per `(fingerprint, personality)` exactly like emitted text.
    pub analyze: Option<Vendor>,
    /// Uniform-value assumptions to compile under (the `(flags, spec)`
    /// variant axis). The general key — the default — is the ordinary
    /// unspecialized compile; a non-general key substitutes the assumed
    /// constants into the base IR, folds, interp-verifies the fold against
    /// the general base, and runs the flag schedule from the specialized
    /// base. The response's `text` is then only valid while the assumptions
    /// hold — callers pair it with a general compile behind a guard.
    pub specialize: SpecKey,
}

impl CompileRequest {
    /// A request for a direct backend.
    pub fn new(source: impl Into<String>, flags: OptFlags, backend: BackendKind) -> CompileRequest {
        CompileRequest {
            source: source.into(),
            flags,
            target: RequestTarget::Kind(backend),
            analyze: None,
            specialize: SpecKey::general(),
        }
    }

    /// A request for a named target form (chain-resolved).
    pub fn named(source: impl Into<String>, flags: OptFlags, form: &str) -> CompileRequest {
        CompileRequest {
            source: source.into(),
            flags,
            target: RequestTarget::Named(form.to_string()),
            analyze: None,
            specialize: SpecKey::general(),
        }
    }

    /// A builder over `source` — the one construction path the tune
    /// endpoint, the load generator and the demo binary share. Defaults: no
    /// flags, desktop GLSL, no analysis, general (unspecialized).
    pub fn builder(source: impl Into<String>) -> CompileRequestBuilder {
        CompileRequestBuilder {
            source: source.into(),
            flags: OptFlags::NONE,
            target: RequestTarget::Kind(BackendKind::DesktopGlsl),
            analyze: None,
            specialize: SpecKey::general(),
        }
    }
}

/// Builder for [`CompileRequest`]; see [`CompileRequest::builder`].
#[derive(Debug, Clone)]
pub struct CompileRequestBuilder {
    source: String,
    flags: OptFlags,
    target: RequestTarget,
    analyze: Option<Vendor>,
    specialize: SpecKey,
}

impl CompileRequestBuilder {
    /// Sets the optimization flag combination (default: none).
    pub fn flags(mut self, flags: OptFlags) -> CompileRequestBuilder {
        self.flags = flags;
        self
    }

    /// Compiles under uniform-value assumptions (default: general).
    pub fn specialize(mut self, spec: SpecKey) -> CompileRequestBuilder {
        self.specialize = spec;
        self
    }

    /// Targets a direct backend (default: desktop GLSL).
    pub fn backend(mut self, backend: BackendKind) -> CompileRequestBuilder {
        self.target = RequestTarget::Kind(backend);
        self
    }

    /// Targets a named form, resolved through the backend chain.
    pub fn named_target(mut self, form: &str) -> CompileRequestBuilder {
        self.target = RequestTarget::Named(form.to_string());
        self
    }

    /// Also requests the platform personality's static-analysis report
    /// (default: none).
    pub fn analyze(mut self, vendor: Vendor) -> CompileRequestBuilder {
        self.analyze = Some(vendor);
        self
    }

    /// Finishes the request.
    pub fn build(self) -> CompileRequest {
        CompileRequest {
            source: self.source,
            flags: self.flags,
            target: self.target,
            analyze: self.analyze,
            specialize: self.specialize,
        }
    }
}

/// Why a request failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The front stage rejected the source (parse/lower/verify).
    Frontend(String),
    /// No backend in the chain serves the requested form.
    UnknownTarget(String),
    /// A pass broke IR invariants mid-compile (internal bug).
    Compile(String),
    /// The request's specialization key does not apply to the source (bad
    /// slot / unsupported type), or the specialized fold failed its
    /// differential interp verification against the general base.
    Specialize(String),
    /// The compile panicked twice (once plus one retry); waiters receive
    /// this error rather than hanging.
    Panicked(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Frontend(e) => write!(f, "front stage: {e}"),
            ServeError::UnknownTarget(t) => write!(f, "no backend serves target `{t}`"),
            ServeError::Compile(e) => write!(f, "compile: {e}"),
            ServeError::Specialize(e) => write!(f, "specialize: {e}"),
            ServeError::Panicked(e) => write!(f, "compile panicked: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Deterministic work counters of one served compile — the service's latency
/// measure (stage runs and emissions are the units of real work; hits are
/// free). A coalesced waiter reports the leader's work, because that is the
/// work its response cost the service.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestWork {
    /// Stages actually executed (transition-memo misses).
    pub stage_runs: usize,
    /// Stages answered from the transition memo.
    pub stage_hits: usize,
    /// Emissions actually performed (emission-memo misses).
    pub emissions: usize,
    /// Emissions answered from the emission memo.
    pub emission_hits: usize,
}

impl RequestWork {
    /// The work-counter latency of this request: stage runs + emissions.
    /// Deterministic (unlike wall-clock), which is what lets the perf gate
    /// hold p50/p99 to a baseline.
    pub fn latency(&self) -> usize {
        self.stage_runs + self.emissions
    }
}

/// A served compile.
#[derive(Debug, Clone)]
pub struct CompileResponse {
    /// The emitted text — the emission memo's shared handle (zero-copy).
    pub text: Arc<str>,
    /// The backend that produced `text` (after chain resolution).
    pub backend: BackendKind,
    /// `true` when the request named a form without a direct emitter and
    /// fell through the backend chain.
    pub chain_fallback: bool,
    /// Structural fingerprint of the optimized IR behind `text`.
    pub fingerprint: Fingerprint,
    /// The shader's external interface (from the shared front stage).
    pub interface: Arc<ShaderInterface>,
    /// Work-counter latency breakdown.
    pub work: RequestWork,
    /// `true` when this response was coalesced onto another in-flight
    /// request instead of compiling on its own.
    pub coalesced: bool,
    /// `true` when the body was answered by the emission memo (no emitter
    /// ran for this request).
    pub zero_copy: bool,
    /// The requested personality's static-analysis report as machine-
    /// readable JSON (`prism_analyze::StaticReport::from_json` parses it) —
    /// the analysis memo's shared handle, present iff the request set
    /// [`CompileRequest::analyze`].
    pub analysis: Option<Arc<str>>,
}

/// Singleflight key: requests agreeing on all five coalesce onto one
/// compile. (`SpecKey` is `Arc`-backed, so the key is `Clone`-cheap but no
/// longer `Copy`.)
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct FlightKey {
    fp: Fingerprint,
    flags: OptFlags,
    backend: BackendKind,
    analyze: Option<Vendor>,
    spec: SpecKey,
}

/// What a completed flight hands every merged request.
#[derive(Debug, Clone)]
struct Served {
    text: Arc<str>,
    fp: Fingerprint,
    work: RequestWork,
    zero_copy: bool,
    analysis: Option<Arc<str>>,
}

/// One in-flight compile. `state` moves `None → Some(result)` exactly once;
/// the condvar wakes every waiter at that moment.
struct Flight {
    state: Mutex<Option<Result<Served, ServeError>>>,
    cv: Condvar,
    waiters: AtomicUsize,
}

impl Flight {
    fn new() -> Flight {
        Flight {
            state: Mutex::new(None),
            cv: Condvar::new(),
            waiters: AtomicUsize::new(0),
        }
    }

    fn complete(&self, result: Result<Served, ServeError>) {
        let mut state = self.state.lock().expect("flight poisoned");
        if state.is_none() {
            *state = Some(result);
        }
        self.cv.notify_all();
    }

    fn wait(&self) -> Result<Served, ServeError> {
        let mut state = self.state.lock().expect("flight poisoned");
        loop {
            if let Some(result) = state.as_ref() {
                return result.clone();
            }
            state = self.cv.wait(state).expect("flight poisoned");
        }
    }

    fn is_done(&self) -> bool {
        self.state.lock().expect("flight poisoned").is_some()
    }
}

/// Probe handed to the test-only compute hook: visibility into the flight
/// being computed, without exposing `Flight` itself.
#[doc(hidden)]
pub struct FlightProbe<'a> {
    flight: &'a Flight,
}

impl FlightProbe<'_> {
    /// Requests currently coalesced onto this flight.
    pub fn waiters(&self) -> usize {
        self.flight.waiters.load(Ordering::SeqCst)
    }
}

#[doc(hidden)]
pub type ComputeHook = Box<dyn Fn(&FlightProbe<'_>) + Send + Sync>;

/// The cached outcome of the shared front stage for one source text.
struct FrontEntry {
    base: Snapshot,
    interface: Arc<ShaderInterface>,
}

/// A queued compile job (the leader's, never a waiter's).
struct Job {
    key: FlightKey,
    base: Snapshot,
    flight: Arc<Flight>,
}

/// Wake signal for one worker thread.
struct WorkerSignal {
    state: Mutex<u64>,
    cv: Condvar,
}

/// Monotonic service counters (everything not already owned by the cache).
#[derive(Default)]
struct Counters {
    requests: AtomicUsize,
    front_hits: AtomicUsize,
    front_lowers: AtomicUsize,
    front_errors: AtomicUsize,
    chain_fallbacks: AtomicUsize,
    zero_copy_hits: AtomicUsize,
    compile_panics: AtomicUsize,
    retried_jobs: AtomicUsize,
    batches: AtomicUsize,
    batched_requests: AtomicUsize,
    tune_requests: AtomicUsize,
    tune_measurements: AtomicUsize,
    search_compiles: AtomicUsize,
    search_candidates_pruned: AtomicUsize,
    lints_emitted: AtomicUsize,
    // The last completed tune's regret, in milli-percentage-points (an
    // integer so `ServiceStats` stays `Eq`); not monotonic.
    tune_regret_x1000: AtomicUsize,
}

/// A point-in-time snapshot of service telemetry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Requests accepted (front stage attempted).
    pub requests: usize,
    /// Requests whose front stage was answered from the source-text memo.
    pub front_hits: usize,
    /// Front-stage lowers actually performed (memo misses).
    pub front_lowers: usize,
    /// Requests rejected by the front stage.
    pub front_errors: usize,
    /// Requests that named a form and fell through the backend chain.
    pub chain_fallbacks: usize,
    /// Response bodies answered by the emission memo's shared handle.
    pub zero_copy_hits: usize,
    /// Compile attempts that panicked (each is retried once).
    pub compile_panics: usize,
    /// Jobs that succeeded on their post-panic retry.
    pub retried_jobs: usize,
    /// Shard-queue batch drains (each takes the queue lock exactly once).
    pub batches: usize,
    /// Jobs processed across those batches.
    pub batched_requests: usize,
    /// Online-tune passes completed (`CompileService::tune*`).
    pub tune_requests: usize,
    /// Timing measurements taken across all tune passes (the online search
    /// tenant's scarce-resource spend).
    pub measurements_taken: usize,
    /// Distinct flag combinations the search tenant compiled across all
    /// tune passes (each went through route → coalesce → batch → memo like
    /// any serving request).
    pub search_compiles: usize,
    /// Search candidates whose timing measurement was skipped because the
    /// static prefilter found their static cost dominated by an already-
    /// measured arm (across all tune passes).
    pub search_candidates_pruned: usize,
    /// Lints produced by fresh static analyses (memo-served reports do not
    /// re-count their lints — this tracks analysis work, not report reads).
    pub lints_emitted: usize,
    /// The last completed oracle-scored tune's final regret, in
    /// milli-percentage-points behind the exhaustive best (0 when no
    /// oracle-scored tune ran). Integer so this snapshot stays `Eq`.
    pub tune_regret_x1000: usize,
    /// The underlying cache's counters, including `routed_requests` and
    /// `coalesced_requests`.
    pub cache: CacheStats,
}

/// Everything the service and its worker threads share.
struct Inner {
    config: ServeConfig,
    cache: Arc<CorpusCache>,
    session: SessionId,
    chain: BackendChain,
    front: RwLock<HashMap<String, Result<Arc<FrontEntry>, ServeError>>>,
    /// Specialized-base memo: the substituted-folded-verified snapshot each
    /// `(base fingerprint, spec key)` pair starts its flag walk from —
    /// derived (and interp-verified against the general base) once, then a
    /// refcount bump for every later request.
    spec_bases: RwLock<HashMap<(Fingerprint, SpecKey), Snapshot>>,
    flights: Mutex<HashMap<FlightKey, Arc<Flight>>>,
    queues: Vec<Mutex<VecDeque<Job>>>,
    signals: Vec<WorkerSignal>,
    counters: Counters,
    shutdown: AtomicBool,
    hook: RwLock<Option<ComputeHook>>,
}

/// The compile service. See the [module docs](self) for the request
/// lifecycle; construction is [`CompileService::new`], teardown
/// [`CompileService::shutdown`] (graceful, snapshots the cache) or `Drop`
/// (joins workers, no snapshot).
pub struct CompileService {
    inner: Arc<Inner>,
    workers: Vec<std::thread::JoinHandle<()>>,
    /// Per-übershader-family best-known flag sets, updated by every
    /// completed tune pass and used to warm-start the next one. The empty
    /// key `""` is the global fallback.
    best_known: Mutex<HashMap<String, OptFlags>>,
}

impl CompileService {
    /// Boots a service: builds the cache (bounded if configured), warm-starts
    /// it from `warm_start_dir` when set, and spawns the worker pool.
    pub fn new(config: ServeConfig) -> CompileService {
        let cache = Arc::new(match config.cache_budget {
            Some(budget) => CorpusCache::bounded(budget),
            None => CorpusCache::new(),
        });
        // Register the analysis personalities this service can answer for
        // BEFORE warm-starting: persisted analysis entries keyed by an
        // unknown personality are skipped (and counted) at load time.
        let personalities: Vec<&str> = Vendor::ALL.iter().map(|v| v.name()).collect();
        cache.register_personalities(&personalities);
        if let Some(dir) = &config.warm_start_dir {
            cache.load(dir);
        }
        let session = cache.register_session_in("serve");
        let worker_count = config.workers;
        let inner = Arc::new(Inner {
            config,
            cache,
            session,
            chain: BackendChain::standard(),
            front: RwLock::new(HashMap::new()),
            spec_bases: RwLock::new(HashMap::new()),
            flights: Mutex::new(HashMap::new()),
            queues: (0..FINGERPRINT_SHARDS)
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            signals: (0..worker_count)
                .map(|_| WorkerSignal {
                    state: Mutex::new(0),
                    cv: Condvar::new(),
                })
                .collect(),
            counters: Counters::default(),
            shutdown: AtomicBool::new(false),
            hook: RwLock::new(None),
        });
        let workers = (0..worker_count)
            .map(|w| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("prism-serve-{w}"))
                    .spawn(move || Inner::worker_loop(&inner, w))
                    .expect("spawn serve worker")
            })
            .collect();
        CompileService {
            inner,
            workers,
            best_known: Mutex::new(HashMap::new()),
        }
    }

    /// The service's shared cache (for telemetry and tests).
    pub fn cache(&self) -> &Arc<CorpusCache> {
        &self.inner.cache
    }

    /// Current service telemetry.
    pub fn stats(&self) -> ServiceStats {
        let c = &self.inner.counters;
        ServiceStats {
            requests: c.requests.load(Ordering::Relaxed),
            front_hits: c.front_hits.load(Ordering::Relaxed),
            front_lowers: c.front_lowers.load(Ordering::Relaxed),
            front_errors: c.front_errors.load(Ordering::Relaxed),
            chain_fallbacks: c.chain_fallbacks.load(Ordering::Relaxed),
            zero_copy_hits: c.zero_copy_hits.load(Ordering::Relaxed),
            compile_panics: c.compile_panics.load(Ordering::Relaxed),
            retried_jobs: c.retried_jobs.load(Ordering::Relaxed),
            batches: c.batches.load(Ordering::Relaxed),
            batched_requests: c.batched_requests.load(Ordering::Relaxed),
            tune_requests: c.tune_requests.load(Ordering::Relaxed),
            measurements_taken: c.tune_measurements.load(Ordering::Relaxed),
            search_compiles: c.search_compiles.load(Ordering::Relaxed),
            search_candidates_pruned: c.search_candidates_pruned.load(Ordering::Relaxed),
            lints_emitted: c.lints_emitted.load(Ordering::Relaxed),
            tune_regret_x1000: c.tune_regret_x1000.load(Ordering::Relaxed),
            cache: self.inner.cache.stats(),
        }
    }

    /// Serves one request (blocking). See the [module docs](self) for the
    /// route → coalesce → batch → memo lifecycle.
    ///
    /// # Errors
    ///
    /// [`ServeError`] on front-stage rejection, unknown target form, or a
    /// (twice-)failing compile. Errors are results, never hangs: a panicking
    /// compile is retried once and then reported to every merged request.
    pub fn compile(&self, request: &CompileRequest) -> Result<CompileResponse, ServeError> {
        self.inner.compile(request)
    }

    /// Graceful shutdown: joins the worker pool, then snapshots the cache to
    /// the configured warm-start directory (if any) so the next boot serves
    /// this process's work from disk.
    ///
    /// # Errors
    ///
    /// Propagates [`CorpusCache::save`] failures (the workers are already
    /// joined by then).
    pub fn shutdown(mut self) -> Result<Option<prism_core::SaveReport>, String> {
        self.stop_workers();
        match &self.inner.config.warm_start_dir {
            Some(dir) => self.inner.cache.save(dir).map(Some),
            None => Ok(None),
        }
    }

    /// Installs the test-only compute hook (runs at the start of every
    /// leader compile). Used by the coalescing and torn-request suites to
    /// hold or crash a compile deterministically.
    #[doc(hidden)]
    pub fn set_compute_hook(&self, hook: Option<ComputeHook>) {
        *self.inner.hook.write().expect("hook poisoned") = hook;
    }

    /// The best-known flag set for a family (falling back to the global
    /// `""` entry), if any tune pass has recorded one.
    pub(crate) fn tune_warm_hint(&self, family: &str) -> Option<OptFlags> {
        let map = self.best_known.lock().expect("best-known map poisoned");
        map.get(family).copied().or_else(|| map.get("").copied())
    }

    /// Records a completed tune pass: updates the family's (and the global)
    /// best-known set last-wins, and bumps the tune counters.
    pub(crate) fn record_tune(
        &self,
        family: &str,
        best_flags: OptFlags,
        measurements: usize,
        search_compiles: usize,
        candidates_pruned: usize,
        regret_x1000: Option<usize>,
    ) {
        {
            let mut map = self.best_known.lock().expect("best-known map poisoned");
            map.insert(family.to_string(), best_flags);
            map.insert(String::new(), best_flags);
        }
        let c = &self.inner.counters;
        c.tune_requests.fetch_add(1, Ordering::Relaxed);
        c.tune_measurements
            .fetch_add(measurements, Ordering::Relaxed);
        c.search_compiles
            .fetch_add(search_compiles, Ordering::Relaxed);
        c.search_candidates_pruned
            .fetch_add(candidates_pruned, Ordering::Relaxed);
        if let Some(regret) = regret_x1000 {
            c.tune_regret_x1000.store(regret, Ordering::Relaxed);
        }
    }

    fn stop_workers(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        for signal in &self.inner.signals {
            let _guard = signal.state.lock().expect("signal poisoned");
            signal.cv.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for CompileService {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

/// Completes a flight (and unregisters it) exactly once, even if the
/// processing path unwinds: dropping an unfinished guard reports a panic
/// error to every waiter instead of leaving them blocked forever.
struct FlightGuard<'a> {
    inner: &'a Inner,
    key: FlightKey,
    flight: Arc<Flight>,
    done: bool,
}

impl FlightGuard<'_> {
    fn finish(mut self, result: Result<Served, ServeError>) {
        self.done = true;
        self.flight.complete(result);
        self.inner.unregister_flight(&self.key, &self.flight);
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if !self.done {
            self.flight.complete(Err(ServeError::Panicked(
                "compile worker unwound without completing its flight".to_string(),
            )));
            self.inner.unregister_flight(&self.key, &self.flight);
        }
    }
}

impl Inner {
    fn compile(&self, request: &CompileRequest) -> Result<CompileResponse, ServeError> {
        self.counters.requests.fetch_add(1, Ordering::Relaxed);
        let (backend, chain_fallback) = self.resolve_target(&request.target)?;
        if chain_fallback {
            self.counters
                .chain_fallbacks
                .fetch_add(1, Ordering::Relaxed);
        }
        let front = self.front_entry(&request.source)?;
        // Routed: the front stage succeeded and the fingerprint picked an
        // owning shard.
        self.cache.note_routed_request();
        let key = FlightKey {
            fp: front.base.fp,
            flags: request.flags,
            backend,
            analyze: request.analyze,
            spec: request.specialize.clone(),
        };

        let (flight, leader) = {
            let mut flights = self.flights.lock().expect("flights poisoned");
            match flights.get(&key) {
                Some(flight) => {
                    flight.waiters.fetch_add(1, Ordering::SeqCst);
                    (Arc::clone(flight), false)
                }
                None => {
                    let flight = Arc::new(Flight::new());
                    flights.insert(key.clone(), Arc::clone(&flight));
                    (flight, true)
                }
            }
        };

        if leader {
            let shard = shard_of(key.fp);
            self.enqueue(
                shard,
                Job {
                    key,
                    base: front.base.clone(),
                    flight: Arc::clone(&flight),
                },
            );
            if self.config.workers == 0 {
                self.drive_shard(shard, &flight);
            }
        } else {
            self.cache.note_coalesced_request();
        }

        let served = flight.wait()?;
        Ok(CompileResponse {
            text: served.text,
            backend,
            chain_fallback,
            fingerprint: served.fp,
            interface: Arc::clone(&front.interface),
            work: served.work,
            coalesced: !leader,
            zero_copy: served.zero_copy,
            analysis: served.analysis,
        })
    }

    fn resolve_target(&self, target: &RequestTarget) -> Result<(BackendKind, bool), ServeError> {
        match target {
            RequestTarget::Kind(kind) => Ok((*kind, false)),
            RequestTarget::Named(form) => match self.chain.resolve(form) {
                Some(kind) => Ok((kind, self.chain.is_fallback(form))),
                None => Err(ServeError::UnknownTarget(form.clone())),
            },
        }
    }

    /// The shared lower-once front stage: parse + lower + verify, memoised
    /// per source text (errors included, so a hostile source costs one
    /// front-stage failure, not one per request).
    fn front_entry(&self, source: &str) -> Result<Arc<FrontEntry>, ServeError> {
        if let Some(entry) = self.front.read().expect("front memo poisoned").get(source) {
            self.counters.front_hits.fetch_add(1, Ordering::Relaxed);
            return entry.clone();
        }
        // Lower outside the lock (slow); a racing duplicate lower of the
        // same text is wasted work but deterministic — the base IR and its
        // fingerprint are pure functions of the source.
        let entry = self.lower_front(source);
        if entry.is_err() {
            self.counters.front_errors.fetch_add(1, Ordering::Relaxed);
        }
        self.front
            .write()
            .expect("front memo poisoned")
            .entry(source.to_string())
            .or_insert_with(|| entry.clone());
        entry
    }

    fn lower_front(&self, source: &str) -> Result<Arc<FrontEntry>, ServeError> {
        self.counters.front_lowers.fetch_add(1, Ordering::Relaxed);
        let parsed = prism_glsl::ShaderSource::parse(source)
            .map_err(|e| ServeError::Frontend(e.to_string()))?;
        // Requests are anonymous; name the shader by its source hash so the
        // IR (and everything memoised from it) is deterministic per text.
        let name = source_name(source);
        let ir =
            prism_core::lower(&parsed, &name).map_err(|e| ServeError::Frontend(e.to_string()))?;
        verify(&ir).map_err(|e| ServeError::Frontend(e.to_string()))?;
        let fp = fingerprint(&ir);
        // Intern the base into the cache's exemplar plane: repeat requests
        // (and racing duplicate lowers) of the same source then share one
        // allocation, and the compute walk resolves it by pointer identity.
        let base = self.cache.intern(Snapshot {
            ir: Arc::new(ir),
            fp,
        });
        Ok(Arc::new(FrontEntry {
            base,
            interface: Arc::new(parsed.interface),
        }))
    }

    fn enqueue(&self, shard: usize, job: Job) {
        self.queues[shard]
            .lock()
            .expect("shard queue poisoned")
            .push_back(job);
        if !self.signals.is_empty() {
            let signal = &self.signals[shard % self.signals.len()];
            let mut epoch = signal.state.lock().expect("signal poisoned");
            *epoch += 1;
            signal.cv.notify_one();
        }
    }

    /// Inline mode: the submitting thread drains its own shard until its
    /// flight completes. Another inline submitter may steal the job in its
    /// own batch — then this loop simply waits on the flight.
    fn drive_shard(&self, shard: usize, until: &Flight) {
        while !until.is_done() {
            if !self.process_batch(shard) {
                return; // queue empty: someone else owns our job; wait() blocks.
            }
        }
    }

    /// Drains one batch from a shard queue — the queue lock is taken exactly
    /// once — and processes every job in it. Returns `false` on an empty
    /// queue.
    fn process_batch(&self, shard: usize) -> bool {
        let batch: Vec<Job> = {
            let mut queue = self.queues[shard].lock().expect("shard queue poisoned");
            let take = queue.len().min(self.config.batch_limit.max(1));
            queue.drain(..take).collect()
        };
        if batch.is_empty() {
            return false;
        }
        self.counters.batches.fetch_add(1, Ordering::Relaxed);
        self.counters
            .batched_requests
            .fetch_add(batch.len(), Ordering::Relaxed);
        for job in batch {
            self.process_job(job);
        }
        true
    }

    /// Runs one job to flight completion. A panicking compile is caught and
    /// retried once (transient failures — including the test hook — succeed
    /// on retry); a second panic becomes a [`ServeError::Panicked`] result.
    /// Either way the flight completes: waiters never hang.
    fn process_job(&self, job: Job) {
        let guard = FlightGuard {
            inner: self,
            key: job.key.clone(),
            flight: Arc::clone(&job.flight),
            done: false,
        };
        let attempt = || self.compute(&job);
        let result = match catch_unwind(AssertUnwindSafe(attempt)) {
            Ok(result) => result,
            Err(_) => {
                self.counters.compile_panics.fetch_add(1, Ordering::Relaxed);
                match catch_unwind(AssertUnwindSafe(attempt)) {
                    Ok(result) => {
                        self.counters.retried_jobs.fetch_add(1, Ordering::Relaxed);
                        result
                    }
                    Err(_) => {
                        self.counters.compile_panics.fetch_add(1, Ordering::Relaxed);
                        Err(ServeError::Panicked(
                            "compile panicked twice; giving up".to_string(),
                        ))
                    }
                }
            }
        };
        guard.finish(result);
    }

    /// The memo-backed compile: replays the pass schedule against the shared
    /// cache (stage transitions confirmed structurally, exactly like a
    /// `CompileSession`), then answers the emission from the memo or runs
    /// the emitter once and records it.
    fn compute(&self, job: &Job) -> Result<Served, ServeError> {
        if let Some(hook) = self.hook.read().expect("hook poisoned").as_ref() {
            hook(&FlightProbe {
                flight: &job.flight,
            });
        }
        // A specialized request runs the ordinary flag schedule, just from a
        // different starting snapshot: the substituted-and-folded base. That
        // base is another IR structure, so everything downstream (transition
        // memo, emission memo, analysis memo) dedups by fingerprint with no
        // special cases.
        let base = self.spec_base(job)?;
        let mut work = RequestWork::default();
        let state = with_schedule(|schedule| -> Result<Snapshot, ServeError> {
            // The same walk a `CompileSession` performs: read the store's
            // clean-stage mask once per distinct state, skip every enabled
            // stage it marks as identity in O(1) (no lookup, no fingerprint,
            // no clone), and re-read it only after a real transition. A
            // memo-warm request therefore does zero IR clones end to end.
            let mut state = base.clone();
            let mut clean = self.cache.identity_stages(&state);
            let mut skipped = 0usize;
            for (stage_idx, stage) in schedule.iter().enumerate() {
                if !stage.enabled_for(job.key.flags) {
                    continue;
                }
                if stage_idx < 64 && clean & (1 << stage_idx) != 0 {
                    skipped += 1;
                    work.stage_hits += 1;
                    continue;
                }
                if let Some(output) = self.cache.transition(self.session, stage_idx, &state) {
                    work.stage_hits += 1;
                    if Arc::ptr_eq(&output.ir, &state.ir) {
                        if stage_idx < 64 {
                            clean |= 1 << stage_idx;
                        }
                    } else {
                        state = output;
                        clean = self.cache.identity_stages(&state);
                    }
                    continue;
                }
                let mut ir = (*state.ir).clone();
                let changed = stage.run(&mut ir);
                work.stage_runs += 1;
                if !changed {
                    // Identity fast path: the input snapshot is the output —
                    // record the clean bit, keep the allocation, skip the
                    // re-verify and re-fingerprint.
                    self.cache.record_transition(
                        self.session,
                        stage_idx,
                        state.clone(),
                        state.clone(),
                    );
                    if stage_idx < 64 {
                        clean |= 1 << stage_idx;
                    }
                    continue;
                }
                verify(&ir).map_err(|e| ServeError::Compile(e.to_string()))?;
                let output = Snapshot {
                    fp: fingerprint(&ir),
                    ir: Arc::new(ir),
                };
                self.cache
                    .record_transition(self.session, stage_idx, state, output.clone());
                state = output;
                clean = self.cache.identity_stages(&state);
            }
            if skipped > 0 {
                self.cache.note_identity_skips(self.session, skipped);
            }
            Ok(state)
        })?;

        let backend = job.key.backend;
        let (text, zero_copy) = match self.cache.emission(self.session, backend, &state) {
            Some(text) => {
                work.emission_hits += 1;
                self.counters.zero_copy_hits.fetch_add(1, Ordering::Relaxed);
                (text, true)
            }
            None => {
                let text: Arc<str> = Arc::from(backend.backend().emit(&state.ir));
                work.emissions += 1;
                self.cache
                    .record_emission(self.session, backend, &state, Arc::clone(&text));
                (text, false)
            }
        };
        // The analysis rides the same memo discipline as emitted text: one
        // walk of the optimized IR per distinct `(fingerprint, personality)`,
        // then shared `Arc` handles forever (including across warm restarts).
        let analysis = match job.key.analyze {
            None => None,
            Some(vendor) => {
                let personality = vendor.name();
                match self.cache.analysis(self.session, personality, &state) {
                    Some(json) => Some(json),
                    None => {
                        let report = prism_analyze::analyze(&state.ir, vendor);
                        self.counters
                            .lints_emitted
                            .fetch_add(report.lints.len(), Ordering::Relaxed);
                        let json: Arc<str> =
                            Arc::from(report.to_json().map_err(ServeError::Compile)?.as_str());
                        self.cache.record_analysis(
                            self.session,
                            personality,
                            &state,
                            Arc::clone(&json),
                        );
                        Some(json)
                    }
                }
            }
        };
        Ok(Served {
            text,
            fp: state.fp,
            work,
            zero_copy,
            analysis,
        })
    }

    /// The snapshot a job's flag walk starts from: the front-stage base for
    /// a general request, else the memoised specialized base for this
    /// `(fingerprint, spec)` pair.
    ///
    /// On a memo miss the derivation substitutes the assumed constants,
    /// folds, checks IR invariants, and then differentially executes the
    /// specialized base against the general base through the interpreter on
    /// assumption-holding contexts at the standard probe points — the fold
    /// must be bit-for-bit exact or the request fails rather than serve a
    /// miscompile. The verified snapshot is interned into the cache's
    /// exemplar plane so it dedups like any other structure.
    fn spec_base(&self, job: &Job) -> Result<Snapshot, ServeError> {
        let spec = &job.key.spec;
        if spec.is_general() {
            return Ok(job.base.clone());
        }
        let memo_key = (job.base.fp, spec.clone());
        if let Some(snap) = self
            .spec_bases
            .read()
            .expect("spec-base memo poisoned")
            .get(&memo_key)
        {
            return Ok(snap.clone());
        }
        let ir = specialize_shader(&job.base.ir, spec)
            .map_err(|e| ServeError::Specialize(e.to_string()))?;
        verify(&ir).map_err(|e| ServeError::Compile(e.to_string()))?;
        for (fx, fy) in default_probe_points() {
            let ctx = spec.holding_context(&job.base.ir, fx, fy);
            let fast = run_fragment(&ir, &ctx)
                .map_err(|e| ServeError::Specialize(format!("specialized base faulted: {e}")))?;
            let slow = run_fragment(&job.base.ir, &ctx)
                .map_err(|e| ServeError::Specialize(format!("general base faulted: {e}")))?;
            if !results_exactly_equal(&fast, &slow) {
                return Err(ServeError::Specialize(format!(
                    "fold diverges from the general program under [{spec}] at ({fx},{fy})"
                )));
            }
        }
        let snap = self.cache.intern(Snapshot {
            fp: fingerprint(&ir),
            ir: Arc::new(ir),
        });
        // A racing duplicate derivation of the same pair is wasted but
        // deterministic work; last write wins with an identical snapshot.
        self.spec_bases
            .write()
            .expect("spec-base memo poisoned")
            .insert(memo_key, snap.clone());
        Ok(snap)
    }

    fn unregister_flight(&self, key: &FlightKey, flight: &Arc<Flight>) {
        let mut flights = self.flights.lock().expect("flights poisoned");
        if let Some(current) = flights.get(key) {
            if Arc::ptr_eq(current, flight) {
                flights.remove(key);
            }
        }
    }

    /// Worker `w` owns every shard congruent to `w` modulo the pool size;
    /// it drains batches until told to shut down, napping briefly when all
    /// its queues are empty (the nap doubles as the missed-notify backstop).
    fn worker_loop(inner: &Arc<Inner>, w: usize) {
        let workers = inner.signals.len();
        loop {
            let mut did_work = false;
            for shard in (w..FINGERPRINT_SHARDS).step_by(workers) {
                while inner.process_batch(shard) {
                    did_work = true;
                }
            }
            if inner.shutdown.load(Ordering::SeqCst) {
                if !did_work {
                    return; // queues drained after the shutdown signal
                }
                continue;
            }
            if !did_work {
                let signal = &inner.signals[w];
                let epoch = signal.state.lock().expect("signal poisoned");
                let _ = signal
                    .cv
                    .wait_timeout(epoch, Duration::from_millis(20))
                    .expect("signal poisoned");
            }
        }
    }
}
