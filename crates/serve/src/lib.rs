//! # prism-serve — the sharded compile service
//!
//! Wraps the prism optimizer in a compile-request API of the kind a driver
//! vendor's shader-cache daemon or a cloud shader-build farm would expose:
//! clients submit `(source, flags, backend)` and get back emitted text plus
//! interface and work counters. The service exists to make the corpus-wide
//! sharing the paper's übershader study measures (ISPASS'18 §IV) pay off
//! *across* clients, not just within one study process.
//!
//! ## Request lifecycle: route → coalesce → batch → memo
//!
//! 1. **route** — a shared *lower-once front stage* parses, lowers and
//!    verifies the source (memoised per source text), and the base IR's
//!    structural fingerprint routes the request to its owning shard using
//!    the cache's own 16-way split ([`prism_core::FINGERPRINT_SHARDS`] /
//!    [`prism_core::shard_of`]). Warm-start snapshot files use the same
//!    split, so shard ownership is stable across restarts.
//! 2. **coalesce** — identical in-flight requests (same fingerprint, flags
//!    and backend) merge onto one compile via a singleflight table: one
//!    leader compiles, every waiter receives the same `Arc`'d result.
//!    Merged requests are counted in
//!    [`CacheStats::coalesced_requests`](prism_core::CacheStats).
//! 3. **batch** — shard owners drain their queues in batches, taking the
//!    queue lock once per batch rather than once per request.
//! 4. **memo** — the compile replays the pass schedule against the shared
//!    [`CorpusCache`](prism_core::CorpusCache): stage transitions and
//!    emitted text that any previous request (or a warm-start snapshot)
//!    paid for are answered from the memo, and response bodies are the
//!    memo's shared `Arc<str>` handle — a refcount bump, never a copy.
//!
//! With `workers == 0` ([`ServeConfig`]) the submitting thread drives its
//! own shard inline, making request streams fully deterministic; the
//! [`load`] harness and the perf gate run this mode. With `workers > 0` a
//! pool of shard-owner threads serves the queues.
//!
//! ## The search tenant
//!
//! Serving is not the only client of the memo plane: [`CompileService::tune`]
//! ([`tune`] module) runs an online, measurement-in-the-loop flag search
//! whose every candidate compile is an ordinary request through the same
//! route → coalesce → batch → memo lifecycle — so tuning traffic and serving
//! traffic share one cache, coalesce against each other, and hand each other
//! zero-copy emissions. Spend and results are visible in
//! [`ServiceStats::tune_requests`], [`ServiceStats::measurements_taken`],
//! [`ServiceStats::search_compiles`] and
//! [`ServiceStats::tune_regret_x1000`].
//!
//! ```
//! use prism_serve::{CompileRequest, CompileService, ServeConfig};
//! use prism_core::OptFlags;
//! use prism_emit::BackendKind;
//!
//! let service = CompileService::new(ServeConfig::default());
//! let source = "uniform float u_gain;\nin vec2 v_uv;\nout vec4 frag;\nvoid main() {\n    frag = vec4(v_uv * u_gain, 0.0, 1.0);\n}\n";
//! let request = CompileRequest::new(source, OptFlags::all(), BackendKind::Gles);
//! let first = service.compile(&request).unwrap();
//! let second = service.compile(&request).unwrap();
//! assert_eq!(first.text, second.text);
//! assert!(second.zero_copy, "the replay is answered by the emission memo");
//! assert_eq!(second.work.latency(), 0);
//! ```

pub mod analyze;
pub mod load;
pub mod service;
pub mod tune;

pub use load::{percentile, request_stream, run_stream, LoadSummary, StreamSpec};
pub use service::{
    CompileRequest, CompileRequestBuilder, CompileResponse, CompileService, RequestTarget,
    RequestWork, ServeConfig, ServeError, ServiceStats,
};
pub use tune::{TuneOutcome, TuneSpec, TuneStrategy};

#[cfg(test)]
mod tests {
    use super::*;
    use prism_core::{CacheStore, OptFlags};
    use prism_emit::BackendKind;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Barrier};

    const SOURCE: &str = "uniform float u_gain;\nuniform vec4 u_tint;\nin vec2 v_uv;\nout vec4 frag;\nvoid main() {\n    vec2 scaled = v_uv * u_gain;\n    vec4 base = vec4(scaled, 0.5, 1.0);\n    frag = base * u_tint;\n}\n";

    fn request(flags: OptFlags, backend: BackendKind) -> CompileRequest {
        CompileRequest::new(SOURCE, flags, backend)
    }

    #[test]
    fn identical_requests_are_memo_served_and_zero_copy() {
        let service = CompileService::new(ServeConfig::default());
        let req = request(OptFlags::all(), BackendKind::Msl);
        let first = service.compile(&req).unwrap();
        assert!(!first.zero_copy);
        assert!(first.work.latency() > 0);
        let second = service.compile(&req).unwrap();
        assert_eq!(first.text, second.text);
        assert!(
            Arc::ptr_eq(&first.text, &second.text),
            "the replayed body must be the memo's handle, not a copy"
        );
        assert!(second.zero_copy);
        assert_eq!(second.work.latency(), 0, "{:?}", second.work);
        let stats = service.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.front_hits, 1);
        assert_eq!(stats.cache.routed_requests, 2);
    }

    #[test]
    fn named_targets_fall_through_the_backend_chain() {
        let service = CompileService::new(ServeConfig::default());
        let named = CompileRequest::named(SOURCE, OptFlags::NONE, "metal");
        let response = service.compile(&named).unwrap();
        assert_eq!(response.backend, BackendKind::Msl);
        assert!(response.chain_fallback);
        assert_eq!(service.stats().chain_fallbacks, 1);

        let direct = CompileRequest::named(SOURCE, OptFlags::NONE, "msl");
        let response = service.compile(&direct).unwrap();
        assert!(!response.chain_fallback);

        let err = service
            .compile(&CompileRequest::named(SOURCE, OptFlags::NONE, "dxbc"))
            .unwrap_err();
        assert_eq!(err, ServeError::UnknownTarget("dxbc".to_string()));
    }

    #[test]
    fn front_stage_errors_are_memoised_per_source() {
        let service = CompileService::new(ServeConfig::default());
        let bad = CompileRequest::new(
            "void main() { frag = ; }",
            OptFlags::NONE,
            BackendKind::Gles,
        );
        assert!(matches!(
            service.compile(&bad),
            Err(ServeError::Frontend(_))
        ));
        assert!(matches!(
            service.compile(&bad),
            Err(ServeError::Frontend(_))
        ));
        let stats = service.stats();
        assert_eq!(stats.front_errors, 1, "the second failure is a memo hit");
        assert_eq!(stats.front_lowers, 1);
        assert_eq!(
            stats.cache.routed_requests, 0,
            "rejected requests never route"
        );
    }

    /// Satellite 3 (coalescing): N threads submit the identical request and
    /// the whole group costs exactly one compile — one stage-run/emission
    /// delta — with byte-identical (indeed pointer-identical) responses.
    #[test]
    fn n_identical_inflight_requests_cost_exactly_one_compile() {
        const CLIENTS: usize = 6;
        let service = Arc::new(CompileService::new(ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        }));

        // The hook holds the leader's compile until every other client has
        // joined the flight as a waiter, making the coalescing deterministic.
        service.set_compute_hook(Some(Box::new(|probe| {
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            while probe.waiters() < CLIENTS - 1 {
                assert!(
                    std::time::Instant::now() < deadline,
                    "waiters never joined: {}",
                    probe.waiters()
                );
                std::thread::yield_now();
            }
        })));

        let baseline = service.cache().stats();
        let barrier = Arc::new(Barrier::new(CLIENTS));
        let responses: Vec<CompileResponse> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|_| {
                    let service = Arc::clone(&service);
                    let barrier = Arc::clone(&barrier);
                    scope.spawn(move || {
                        barrier.wait();
                        service
                            .compile(&request(OptFlags::all(), BackendKind::SpirvAsm))
                            .unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        service.set_compute_hook(None);

        let stats = service.cache().stats();
        assert_eq!(
            stats.coalesced_requests - baseline.coalesced_requests,
            CLIENTS - 1,
            "every non-leader coalesces"
        );
        assert_eq!(
            stats.emissions - baseline.emissions,
            1,
            "exactly one emission for the whole group"
        );
        let ran = stats.stage_runs - baseline.stage_runs;
        let schedule_len = prism_core::build_schedule().len();
        assert!(
            ran > 0 && ran <= schedule_len,
            "exactly one schedule's worth of stage runs, got {ran}"
        );
        let leader_text = &responses[0].text;
        let mut coalesced = 0;
        for response in &responses {
            assert!(Arc::ptr_eq(&response.text, leader_text));
            if response.coalesced {
                coalesced += 1;
            }
        }
        assert_eq!(coalesced, CLIENTS - 1);
    }

    /// Satellite 3 (torn request): a panic mid-compile does not poison the
    /// singleflight table — the job retries and every waiter still gets a
    /// result; nobody hangs.
    #[test]
    fn a_panicking_compile_is_retried_and_never_hangs_waiters() {
        let service = CompileService::new(ServeConfig::default());
        let crashes = Arc::new(AtomicUsize::new(0));
        let crashes_hook = Arc::clone(&crashes);
        service.set_compute_hook(Some(Box::new(move |_| {
            if crashes_hook.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("injected torn-request crash");
            }
        })));
        // catch_unwind still prints the panic backtrace by default; silence
        // it for the injected crash so the test log stays readable.
        let saved = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = service.compile(&request(OptFlags::all(), BackendKind::DesktopGlsl));
        std::panic::set_hook(saved);
        service.set_compute_hook(None);

        let response = result.expect("the retry must serve the request");
        assert!(response.work.latency() > 0);
        assert_eq!(crashes.load(Ordering::SeqCst), 2, "one crash + one retry");
        let stats = service.stats();
        assert_eq!(stats.compile_panics, 1);
        assert_eq!(stats.retried_jobs, 1);

        // The flight table is clean: the same request is served again,
        // from the memo this time.
        let replay = service
            .compile(&request(OptFlags::all(), BackendKind::DesktopGlsl))
            .unwrap();
        assert_eq!(replay.work.latency(), 0);
        assert_eq!(replay.text, response.text);
    }

    /// A compile that panics twice (retry included) reports an error to its
    /// waiters instead of hanging them, and leaves the service healthy.
    #[test]
    fn a_twice_panicking_compile_becomes_an_error_result() {
        let service = CompileService::new(ServeConfig::default());
        service.set_compute_hook(Some(Box::new(|_| panic!("always torn"))));
        let saved = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = service.compile(&request(OptFlags::NONE, BackendKind::Gles));
        std::panic::set_hook(saved);
        assert!(matches!(result, Err(ServeError::Panicked(_))));
        assert_eq!(service.stats().compile_panics, 2);

        service.set_compute_hook(None);
        let healthy = service
            .compile(&request(OptFlags::NONE, BackendKind::Gles))
            .unwrap();
        assert!(healthy.work.latency() > 0, "the error was not memoised");
    }

    /// Tentpole acceptance (warm boot): a service booted from the previous
    /// service's snapshot serves the replayed stream with **zero** stage
    /// runs and byte-identical responses.
    #[test]
    fn warm_booted_service_replays_the_stream_with_zero_stage_runs() {
        let corpus =
            prism_corpus::Corpus::gfxbench_like().subset(&["ui_blit_00", "forward_lit_00"]);
        let spec = StreamSpec::standard(11, 60);
        let stream = request_stream(&corpus, &spec);
        let dir = std::env::temp_dir().join(format!(
            "prism-serve-warm-{}-{:p}",
            std::process::id(),
            &spec
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let config = ServeConfig {
            warm_start_dir: Some(dir.clone()),
            ..ServeConfig::default()
        };

        let cold = CompileService::new(config.clone());
        let cold_texts: Vec<_> = stream
            .iter()
            .map(|r| cold.compile(r).unwrap().text)
            .collect();
        assert!(cold.stats().cache.stage_runs > 0);
        cold.shutdown().unwrap().expect("snapshot written");

        let warm = CompileService::new(config);
        let summary = run_stream(&warm, &stream, 0);
        assert_eq!(
            summary.stage_runs, 0,
            "warm boot re-ran stages: {summary:?}"
        );
        assert_eq!(summary.errors, 0);
        assert_eq!(summary.memo_served, summary.measured, "{summary:?}");
        let warm_texts: Vec<_> = stream
            .iter()
            .map(|r| warm.compile(r).unwrap().text)
            .collect();
        for (cold_text, warm_text) in cold_texts.iter().zip(&warm_texts) {
            assert_eq!(cold_text, warm_text);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Tentpole acceptance (skewed stream): after warm-up, coalesced +
    /// memo-served requests are ≥ 90% of the measured window, and batching
    /// touches the queue lock less than once per request.
    #[test]
    fn zipf_stream_is_mostly_free_after_warmup() {
        let corpus = prism_corpus::Corpus::gfxbench_like();
        let spec = StreamSpec::standard(7, 1600);
        let stream = request_stream(&corpus, &spec);
        let service = CompileService::new(ServeConfig::default());
        let warmup = 600;
        let summary = run_stream(&service, &stream, warmup);
        assert_eq!(summary.errors, 0);
        assert!(
            summary.free_fraction() >= 0.9,
            "free fraction {:.3} below the 90% acceptance: {summary:?}",
            summary.free_fraction()
        );
        assert_eq!(summary.p50_latency, 0, "the p50 request must be free");
        let stats = service.stats();
        assert_eq!(stats.batched_requests, stream.len());
        assert_eq!(
            stats.batches, stats.batched_requests,
            "sequential inline replay drains one job per batch"
        );
    }

    /// The stream generator is a pure function of (corpus, spec), and its
    /// Zipf head is actually hot.
    #[test]
    fn request_streams_are_deterministic_and_head_heavy() {
        let corpus = prism_corpus::Corpus::gfxbench_like().subset(&["ui_blit_00"]);
        let spec = StreamSpec::standard(3, 200);
        let a = request_stream(&corpus, &spec);
        let b = request_stream(&corpus, &spec);
        assert_eq!(a.len(), 200);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.source, y.source);
            assert_eq!(x.flags, y.flags);
            assert_eq!(x.target, y.target);
        }
        // The hottest combination must take far more than a uniform share
        // (200 / 16 combinations = 12.5 requests each if unskewed).
        let mut counts = std::collections::HashMap::new();
        for r in &a {
            *counts.entry((r.flags, r.target.clone())).or_insert(0usize) += 1;
        }
        let hottest = counts.values().max().copied().unwrap();
        assert!(hottest * 4 > a.len(), "Zipf head too cold: {hottest}/200");
    }

    /// A specialized request rides the whole lifecycle: substituted and
    /// folded once per `(fingerprint, spec)`, interp-verified against the
    /// general base, then memo-served (zero-copy) on replay like any other
    /// variant.
    #[test]
    fn specialized_requests_fold_verify_and_memoise() {
        use prism_core::{spec_counters, SpecKey, SpecValue};
        let service = CompileService::new(ServeConfig::default());
        let general = service
            .compile(&request(OptFlags::all(), BackendKind::DesktopGlsl))
            .unwrap();

        // `u_tint` is uniform slot 1; assuming it zero folds `base * u_tint`
        // (and everything feeding `base`) away.
        let spec = SpecKey::single(1, SpecValue::Zero);
        let specialized_request = CompileRequest::builder(SOURCE)
            .flags(OptFlags::all())
            .specialize(spec.clone())
            .build();
        let before = spec_counters();
        let first = service.compile(&specialized_request).unwrap();
        assert_ne!(first.text, general.text, "the fold must change the text");
        assert_ne!(first.fingerprint, general.fingerprint);
        assert_eq!(
            spec_counters().since(&before).specializations_generated,
            1,
            "one derivation for the new (fingerprint, spec) pair"
        );

        // Replay: the specialized base comes from the memo (no re-derivation)
        // and the response is the emission memo's handle.
        let replay = service.compile(&specialized_request).unwrap();
        assert!(Arc::ptr_eq(&first.text, &replay.text));
        assert!(replay.zero_copy);
        assert_eq!(replay.work.latency(), 0, "{:?}", replay.work);
        assert_eq!(
            spec_counters().since(&before).specializations_generated,
            1,
            "the replay must not re-specialize"
        );
    }

    /// An inapplicable specialization key is a request error, not a panic —
    /// and it does not poison the flight table for the general request.
    #[test]
    fn inapplicable_specializations_error_cleanly() {
        use prism_core::{SpecKey, SpecValue};
        let service = CompileService::new(ServeConfig::default());
        let bad = CompileRequest::builder(SOURCE)
            .specialize(SpecKey::single(42, SpecValue::Zero))
            .build();
        let err = service.compile(&bad).unwrap_err();
        assert!(matches!(err, ServeError::Specialize(_)), "{err:?}");
        let healthy = service
            .compile(&request(OptFlags::NONE, BackendKind::DesktopGlsl))
            .unwrap();
        assert!(healthy.work.latency() > 0);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        assert_eq!(percentile(&[], 99), 0);
        assert_eq!(percentile(&[7], 50), 7);
        let pop: Vec<usize> = (1..=100).collect();
        assert_eq!(percentile(&pop, 50), 50);
        assert_eq!(percentile(&pop, 99), 99);
        assert_eq!(percentile(&pop, 100), 100);
    }
}
