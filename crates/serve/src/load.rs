//! Deterministic load-test harness for the compile service.
//!
//! Builds a seeded, Zipf-skewed synthetic request stream over a population
//! of (corpus shader × flag set × backend) combinations — the request mix a
//! shader-compile service actually sees: a handful of hot übershader
//! variants dominating a long tail — and replays it against a
//! [`CompileService`], summarising *work-counter* latencies (stage runs +
//! emissions per request). Work counters are deterministic where wall-clock
//! is not, which is what lets the perf gate pin p50/p99 to a baseline.

use crate::service::{CompileRequest, CompileService, RequestWork};
use prism_core::OptFlags;
use prism_corpus::Corpus;
use prism_emit::BackendKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a synthetic request stream.
#[derive(Debug, Clone)]
pub struct StreamSpec {
    /// RNG seed; the stream is a pure function of (corpus, spec).
    pub seed: u64,
    /// Total requests to generate.
    pub requests: usize,
    /// Zipf exponent: higher = more head-heavy.
    pub skew: f64,
    /// Flag combinations in the population (crossed with every shader and
    /// every backend).
    pub flag_sets: Vec<OptFlags>,
}

impl StreamSpec {
    /// The default serving mix: four flag combinations, Zipf 1.8 — the
    /// head-heavy distribution of a real shader-cache daemon, where a
    /// handful of hot übershader variants dominate a long tail.
    pub fn standard(seed: u64, requests: usize) -> StreamSpec {
        StreamSpec {
            seed,
            requests,
            skew: 1.8,
            flag_sets: vec![
                OptFlags::NONE,
                OptFlags::all(),
                OptFlags::from_bits(0x0F),
                OptFlags::from_bits(0xF0),
            ],
        }
    }
}

/// Builds the Zipf-skewed request stream: the population is every
/// (shader, flag set, backend) triple in deterministic corpus order, ranked
/// by population index, sampled by inverse CDF over cumulative
/// `1/(rank+1)^skew` weights with the seeded [`StdRng`].
pub fn request_stream(corpus: &Corpus, spec: &StreamSpec) -> Vec<CompileRequest> {
    let mut population = Vec::new();
    for case in &corpus.cases {
        for &flags in &spec.flag_sets {
            for backend in BackendKind::ALL {
                population.push(
                    CompileRequest::builder(&case.source.text)
                        .flags(flags)
                        .backend(backend)
                        .build(),
                );
            }
        }
    }
    assert!(!population.is_empty(), "empty corpus or flag sets");

    // Cumulative Zipf weights over the ranked population.
    let mut cumulative = Vec::with_capacity(population.len());
    let mut total = 0.0;
    for rank in 0..population.len() {
        total += 1.0 / ((rank + 1) as f64).powf(spec.skew);
        cumulative.push(total);
    }

    let mut rng = StdRng::seed_from_u64(spec.seed);
    (0..spec.requests)
        .map(|_| {
            let u = rng.gen_range(0.0..total);
            let idx = cumulative.partition_point(|&c| c <= u);
            population[idx.min(population.len() - 1)].clone()
        })
        .collect()
}

/// Summary of one replayed stream. All counters are deterministic for a
/// given (service state, stream).
#[derive(Debug, Clone, Default)]
pub struct LoadSummary {
    /// Requests replayed (warm-up included).
    pub requests: usize,
    /// Requests in the measured (post-warm-up) window.
    pub measured: usize,
    /// Median work-counter latency over the measured window.
    pub p50_latency: usize,
    /// 99th-percentile work-counter latency over the measured window.
    pub p99_latency: usize,
    /// Total work (stage runs + emissions) over the measured window.
    pub total_work: usize,
    /// Measured-window requests served entirely from the memo
    /// (zero stage runs *and* zero emissions).
    pub memo_served: usize,
    /// Measured-window requests coalesced onto another in-flight compile.
    pub coalesced: usize,
    /// Measured-window requests that cost the service no fresh compile work:
    /// memo-served, or coalesced onto a compile another request paid for.
    pub free: usize,
    /// Measured-window responses answered by the emission memo's shared
    /// handle (no emitter ran).
    pub zero_copy: usize,
    /// Total stage runs across the whole stream (warm-up included) — the
    /// counter the warm-boot replay acceptance pins to zero.
    pub stage_runs: usize,
    /// Requests that failed (should be zero for corpus streams).
    pub errors: usize,
}

impl LoadSummary {
    /// Fraction of measured requests that cost no compile work: served from
    /// the memo or coalesced onto an in-flight compile. The tentpole
    /// acceptance wants this ≥ 0.9 after warm-up.
    pub fn free_fraction(&self) -> f64 {
        if self.measured == 0 {
            return 0.0;
        }
        self.free as f64 / self.measured as f64
    }
}

/// The `p`-th percentile (0–100) of a latency population, nearest-rank.
pub fn percentile(sorted: &[usize], p: usize) -> usize {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p * sorted.len()).div_ceil(100).max(1) - 1;
    sorted[rank.min(sorted.len() - 1)]
}

/// Replays `stream` against `service` sequentially (deterministic), treating
/// the first `warmup` requests as cache warm-up and summarising the rest.
pub fn run_stream(
    service: &CompileService,
    stream: &[CompileRequest],
    warmup: usize,
) -> LoadSummary {
    let mut summary = LoadSummary {
        requests: stream.len(),
        ..LoadSummary::default()
    };
    let mut latencies = Vec::new();
    for (i, request) in stream.iter().enumerate() {
        let measured = i >= warmup;
        match service.compile(request) {
            Ok(response) => {
                summary.stage_runs += response.work.stage_runs;
                if measured {
                    record(
                        &mut summary,
                        &mut latencies,
                        &response.work,
                        response.coalesced,
                        response.zero_copy,
                    );
                }
            }
            Err(_) => summary.errors += 1,
        }
    }
    latencies.sort_unstable();
    summary.measured = latencies.len();
    summary.p50_latency = percentile(&latencies, 50);
    summary.p99_latency = percentile(&latencies, 99);
    summary
}

fn record(
    summary: &mut LoadSummary,
    latencies: &mut Vec<usize>,
    work: &RequestWork,
    coalesced: bool,
    zero_copy: bool,
) {
    let latency = work.latency();
    latencies.push(latency);
    summary.total_work += latency;
    if latency == 0 {
        summary.memo_served += 1;
    }
    if coalesced {
        summary.coalesced += 1;
    }
    if latency == 0 || coalesced {
        summary.free += 1;
    }
    if zero_copy {
        summary.zero_copy += 1;
    }
}
