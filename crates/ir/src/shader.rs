//! The top-level IR container: one fragment shader.

use crate::stmt::{body_size, Stmt};
use crate::types::{IrType, TextureDim};
use crate::value::Reg;

/// A shader-stage input (interpolated varying).
#[derive(Debug, Clone, PartialEq)]
pub struct InputVar {
    /// GLSL name (preserved so the interface survives a round trip).
    pub name: String,
    /// Value type.
    pub ty: IrType,
}

/// A non-sampler uniform.
#[derive(Debug, Clone, PartialEq)]
pub struct UniformVar {
    /// GLSL name.
    pub name: String,
    /// Value type of one element.
    pub ty: IrType,
    /// For matrix or array uniforms split into several IR slots, the index of
    /// this slot within the original GLSL variable (e.g. matrix column).
    pub slot: usize,
    /// The original GLSL declaration this slot came from (used to reconstruct
    /// the interface and by the harness to initialise values).
    pub original: String,
}

/// A sampler binding.
#[derive(Debug, Clone, PartialEq)]
pub struct SamplerVar {
    /// GLSL name.
    pub name: String,
    /// Texture dimensionality.
    pub dim: TextureDim,
}

/// A shader output (render target value).
#[derive(Debug, Clone, PartialEq)]
pub struct OutputVar {
    /// GLSL name.
    pub name: String,
    /// Value type.
    pub ty: IrType,
}

/// A constant array produced from a `const type[] name = type[](...)`
/// declaration. Elements are stored as scalar lanes per element.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstArray {
    /// Source-level name (for readable emission).
    pub name: String,
    /// Element type.
    pub elem_ty: IrType,
    /// Element values; each inner vector has `elem_ty.width` lanes.
    pub elements: Vec<Vec<f64>>,
}

impl ConstArray {
    /// Number of elements in the array.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// `true` when the array has no elements.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }
}

/// Per-register metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct RegInfo {
    /// Value type of the register.
    pub ty: IrType,
    /// Optional source-level name hint (used for readable GLSL emission).
    pub name_hint: Option<String>,
}

/// A complete fragment shader in prism IR form.
///
/// The body is a structured statement list; user functions have been inlined
/// by the lowering (as LunarGlass does), so there is exactly one body.
///
/// The structural [fingerprint](crate::fingerprint::fingerprint) is memoised
/// in-line (`fp_memo`): computed once per structure, carried through clones,
/// and cleared by [`invalidate_fingerprint`](Shader::invalidate_fingerprint)
/// whenever a transformation mutates the IR. The memo is *not* part of the
/// value — `==`, [`same_structure`](Shader::same_structure) and
/// serialisation all ignore it.
#[derive(Debug, Default)]
pub struct Shader {
    /// Shader name (corpus identifier).
    pub name: String,
    /// Stage inputs.
    pub inputs: Vec<InputVar>,
    /// Non-sampler uniforms (matrices appear as one slot per column).
    pub uniforms: Vec<UniformVar>,
    /// Sampler bindings.
    pub samplers: Vec<SamplerVar>,
    /// Stage outputs.
    pub outputs: Vec<OutputVar>,
    /// Constant arrays referenced by `ConstArrayLoad`.
    pub const_arrays: Vec<ConstArray>,
    /// Virtual register metadata, indexed by [`Reg`].
    pub regs: Vec<RegInfo>,
    /// The shader body.
    pub body: Vec<Stmt>,
    /// Memoised structural fingerprint; see the type-level docs.
    pub(crate) fp_memo: std::sync::OnceLock<crate::fingerprint::Fingerprint>,
}

impl Clone for Shader {
    fn clone(&self) -> Shader {
        crate::counters::count_ir_clone();
        Shader {
            name: self.name.clone(),
            inputs: self.inputs.clone(),
            uniforms: self.uniforms.clone(),
            samplers: self.samplers.clone(),
            outputs: self.outputs.clone(),
            const_arrays: self.const_arrays.clone(),
            regs: self.regs.clone(),
            body: self.body.clone(),
            // The clone has the same structure, so the memo stays valid.
            fp_memo: self.fp_memo.clone(),
        }
    }
}

impl PartialEq for Shader {
    /// Value equality: name plus structure. The fingerprint memo is a cache,
    /// not part of the value, and is excluded.
    fn eq(&self, other: &Shader) -> bool {
        self.name == other.name && self.same_structure(other)
    }
}

impl Shader {
    /// Creates an empty shader with the given name.
    pub fn new(name: impl Into<String>) -> Shader {
        Shader {
            name: name.into(),
            ..Shader::default()
        }
    }

    /// Structural equality modulo the corpus `name` — the relation the
    /// [fingerprint](crate::fingerprint::fingerprint) hashes. Two übershader
    /// family members whose lowered bodies coincide are `same_structure` even
    /// though `==` (which includes the name) says otherwise; corpus-level
    /// caches confirm fingerprint matches with exactly this check.
    pub fn same_structure(&self, other: &Shader) -> bool {
        crate::counters::count_equality_confirm();
        self.inputs == other.inputs
            && self.uniforms == other.uniforms
            && self.samplers == other.samplers
            && self.outputs == other.outputs
            && self.const_arrays == other.const_arrays
            && self.regs == other.regs
            && self.body == other.body
    }

    /// Clears the memoised fingerprint. Must be called (and is, by
    /// `Stage::run` in the optimizer) after any in-place mutation of the
    /// structural fields; clone-and-rebuild construction paths start with an
    /// empty memo automatically.
    pub fn invalidate_fingerprint(&mut self) {
        self.fp_memo.take();
    }

    /// The memoised fingerprint, if one has been computed for this structure.
    pub fn cached_fingerprint(&self) -> Option<crate::fingerprint::Fingerprint> {
        self.fp_memo.get().copied()
    }

    /// Allocates a fresh virtual register of type `ty`.
    pub fn new_reg(&mut self, ty: IrType) -> Reg {
        self.regs.push(RegInfo {
            ty,
            name_hint: None,
        });
        Reg((self.regs.len() - 1) as u32)
    }

    /// Allocates a fresh register with a source-name hint.
    pub fn new_named_reg(&mut self, ty: IrType, hint: impl Into<String>) -> Reg {
        self.regs.push(RegInfo {
            ty,
            name_hint: Some(hint.into()),
        });
        Reg((self.regs.len() - 1) as u32)
    }

    /// The type of a register.
    ///
    /// # Panics
    ///
    /// Panics if the register does not belong to this shader.
    pub fn reg_ty(&self, reg: Reg) -> IrType {
        self.regs[reg.0 as usize].ty
    }

    /// Updates the recorded type of a register (used by passes that change a
    /// definition's result type, e.g. scalar grouping).
    pub fn set_reg_ty(&mut self, reg: Reg, ty: IrType) {
        self.regs[reg.0 as usize].ty = ty;
    }

    /// Total number of statements in the body, including nested statements.
    pub fn size(&self) -> usize {
        body_size(&self.body)
    }

    /// Number of texture-sampling operations anywhere in the body.
    pub fn texture_op_count(&self) -> usize {
        let mut n = 0;
        crate::stmt::walk_body(&self.body, &mut |s| {
            if let Stmt::Def { op, .. } = s {
                if op.is_texture() {
                    n += 1;
                }
            }
        });
        n
    }

    /// Number of loops anywhere in the body.
    pub fn loop_count(&self) -> usize {
        let mut n = 0;
        crate::stmt::walk_body(&self.body, &mut |s| {
            if matches!(s, Stmt::Loop { .. }) {
                n += 1;
            }
        });
        n
    }

    /// Number of conditionals anywhere in the body.
    pub fn branch_count(&self) -> usize {
        let mut n = 0;
        crate::stmt::walk_body(&self.body, &mut |s| {
            if matches!(s, Stmt::If { .. }) {
                n += 1;
            }
        });
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;
    use crate::value::Operand;

    #[test]
    fn register_allocation_and_types() {
        let mut s = Shader::new("test");
        let a = s.new_reg(IrType::F32);
        let b = s.new_named_reg(IrType::fvec(4), "color");
        assert_eq!(a, Reg(0));
        assert_eq!(b, Reg(1));
        assert_eq!(s.reg_ty(a), IrType::F32);
        assert_eq!(s.reg_ty(b), IrType::fvec(4));
        s.set_reg_ty(a, IrType::fvec(2));
        assert_eq!(s.reg_ty(a), IrType::fvec(2));
        assert_eq!(s.regs[1].name_hint.as_deref(), Some("color"));
    }

    #[test]
    fn structural_counts() {
        let mut s = Shader::new("counts");
        let r = s.new_reg(IrType::fvec(4));
        s.samplers.push(SamplerVar {
            name: "tex".into(),
            dim: TextureDim::Dim2D,
        });
        s.body = vec![
            Stmt::Loop {
                var: s.new_reg(IrType::I32),
                start: 0,
                end: 4,
                step: 1,
                body: vec![Stmt::Def {
                    dst: r,
                    op: Op::TextureSample {
                        sampler: 0,
                        coords: Operand::fvec(vec![0.5, 0.5]),
                        lod: None,
                        dim: TextureDim::Dim2D,
                    },
                }],
            },
            Stmt::If {
                cond: Operand::boolean(true),
                then_body: vec![Stmt::Discard { cond: None }],
                else_body: vec![],
            },
        ];
        assert_eq!(s.loop_count(), 1);
        assert_eq!(s.branch_count(), 1);
        assert_eq!(s.texture_op_count(), 1);
        assert_eq!(s.size(), 4);
    }

    #[test]
    fn const_array_len() {
        let a = ConstArray {
            name: "weights".into(),
            elem_ty: IrType::fvec(4),
            elements: vec![vec![0.1; 4]; 9],
        };
        assert_eq!(a.len(), 9);
        assert!(!a.is_empty());
    }
}
