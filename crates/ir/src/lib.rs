//! # prism-ir — the shader intermediate representation
//!
//! A LunarGlass/LLVM-flavoured IR for fragment shaders, used by every other
//! crate in the prism workspace:
//!
//! * only scalars and 2–4 wide vectors exist (matrices are scalarised at
//!   lowering time and scalar×vector arithmetic is splatted — the paper's
//!   §III-C source-to-source artefacts),
//! * virtual registers with structured control flow (`if`, counted loops),
//! * a [`verify`](crate::verify::verify) pass run after every transformation,
//! * a reference [interpreter](crate::interp) used as the semantic oracle in
//!   the test suite,
//! * a textual [printer](crate::printer) used for debugging and variant
//!   deduplication,
//! * a structural, commutative-aware [fingerprint](crate::fingerprint) used
//!   by the compile session for early variant deduplication,
//! * bit-exact [serialisation](crate::serde_impls) through the vendored
//!   `serde` data model, used by the warm-start cache persistence layer.
//!
//! ```
//! use prism_ir::prelude::*;
//!
//! let mut shader = Shader::new("example");
//! shader.outputs.push(OutputVar { name: "color".into(), ty: IrType::fvec(4) });
//! let r = shader.new_reg(IrType::fvec(4));
//! shader.body = vec![
//!     Stmt::Def { dst: r, op: Op::Splat { ty: IrType::fvec(4), value: Operand::float(1.0) } },
//!     Stmt::StoreOutput { output: 0, components: None, value: Operand::Reg(r) },
//! ];
//! prism_ir::verify::verify(&shader).unwrap();
//! let ctx = FragmentContext::with_defaults(&shader, 0.5, 0.5);
//! let result = prism_ir::interp::run_fragment(&shader, &ctx).unwrap();
//! assert_eq!(result.outputs[0], vec![1.0; 4]);
//! ```

pub mod analysis;
pub mod counters;
pub mod fingerprint;
pub mod interp;
pub mod op;
pub mod printer;
pub mod serde_impls;
pub mod shader;
pub mod stmt;
pub mod types;
pub mod value;
pub mod verify;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::fingerprint::{fingerprint, Fingerprint};
    pub use crate::interp::{run_fragment, FragmentContext, FragmentResult};
    pub use crate::op::{BinaryOp, Intrinsic, Op, UnaryOp};
    pub use crate::shader::{
        ConstArray, InputVar, OutputVar, RegInfo, SamplerVar, Shader, UniformVar,
    };
    pub use crate::stmt::Stmt;
    pub use crate::types::{IrType, Scalar, TextureDim};
    pub use crate::value::{Constant, Operand, Reg};
}

pub use prelude::*;
