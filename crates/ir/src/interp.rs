//! A reference interpreter for the prism IR.
//!
//! The interpreter executes a shader for a single fragment, given concrete
//! input, uniform and texture values, and returns the values written to the
//! shader outputs. It is the semantic oracle used by the test suite: every
//! optimization pass must leave the interpreted result (approximately, for
//! the unsafe floating-point passes) unchanged.

use crate::op::{BinaryOp, Intrinsic, Op, UnaryOp};
use crate::shader::Shader;
use crate::stmt::Stmt;
use crate::types::TextureDim;
use crate::value::{Constant, Operand, Reg};
use std::collections::HashMap;
use std::fmt;

/// A runtime value: a numeric vector of 1–4 lanes or a boolean.
#[derive(Debug, Clone, PartialEq)]
pub enum Val {
    /// Numeric value (floats and integers are both stored as `f64` lanes).
    Num(Vec<f64>),
    /// Boolean value.
    Bool(bool),
}

impl Val {
    /// Scalar numeric value.
    pub fn scalar(v: f64) -> Val {
        Val::Num(vec![v])
    }

    /// Numeric lanes of this value.
    ///
    /// Booleans convert to a single `0.0` / `1.0` lane.
    pub fn lanes(&self) -> Vec<f64> {
        match self {
            Val::Num(v) => v.clone(),
            Val::Bool(b) => vec![if *b { 1.0 } else { 0.0 }],
        }
    }

    /// Width (number of lanes) of the value.
    pub fn width(&self) -> usize {
        match self {
            Val::Num(v) => v.len(),
            Val::Bool(_) => 1,
        }
    }

    /// Boolean interpretation of the value.
    pub fn truthy(&self) -> bool {
        match self {
            Val::Bool(b) => *b,
            Val::Num(v) => v.first().map(|x| *x != 0.0).unwrap_or(false),
        }
    }
}

/// An error raised during interpretation (malformed IR reaching execution).
#[derive(Debug, Clone, PartialEq)]
pub struct InterpError {
    /// Description of the fault.
    pub message: String,
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "interpreter error: {}", self.message)
    }
}

impl std::error::Error for InterpError {}

fn err(message: impl Into<String>) -> InterpError {
    InterpError {
        message: message.into(),
    }
}

/// Execution context for one fragment: concrete values for every interface
/// variable plus a procedural texture model.
#[derive(Debug, Clone, Default)]
pub struct FragmentContext {
    /// Input (varying) values by input index.
    pub inputs: Vec<Vec<f64>>,
    /// Uniform values by uniform slot index.
    pub uniforms: Vec<Vec<f64>>,
    /// Seed that varies the procedural texture content per sampler.
    pub texture_seed: f64,
}

impl FragmentContext {
    /// Builds a context with deterministic default values mirroring the
    /// paper's harness (§IV-B): every uniform scalar is `0.5`, every varying
    /// is derived from the fragment coordinate, textures are procedural.
    pub fn with_defaults(shader: &Shader, frag_x: f64, frag_y: f64) -> FragmentContext {
        let inputs = shader
            .inputs
            .iter()
            .enumerate()
            .map(|(i, v)| {
                (0..v.ty.width as usize)
                    .map(|lane| default_varying(i, lane, frag_x, frag_y))
                    .collect()
            })
            .collect();
        let uniforms = shader
            .uniforms
            .iter()
            .map(|u| vec![0.5; u.ty.width as usize])
            .collect();
        FragmentContext {
            inputs,
            uniforms,
            texture_seed: 1.0,
        }
    }

    /// Samples the procedural texture bound to `sampler` at `coords`.
    ///
    /// The texture is a smooth, colourful periodic pattern (mirroring the
    /// harness's "colourfully-patterned opaque power-of-two image"): each
    /// channel is a different phase-shifted sinusoid of the coordinates, and
    /// alpha is 1.
    // The frequencies below are decorative pattern constants, not attempts
    // at mathematical constants (6.2831 happens to sit near tau).
    #[allow(clippy::approx_constant)]
    pub fn sample_texture(&self, sampler: usize, coords: &[f64], dim: TextureDim) -> Vec<f64> {
        let x = coords.first().copied().unwrap_or(0.0);
        let y = coords.get(1).copied().unwrap_or(0.0);
        let z = coords.get(2).copied().unwrap_or(0.0);
        let s = self.texture_seed + sampler as f64 * 0.73;
        let sample = |phase: f64| {
            0.5 + 0.5
                * ((x * 6.2831 * (1.0 + s) + y * 3.7 + z * 1.3 + phase).sin()
                    * (y * 5.113 * (1.0 + 0.5 * s) + x * 2.9 + phase * 0.7).cos())
        };
        match dim {
            TextureDim::Shadow2D => vec![if sample(0.0) > z { 1.0 } else { 0.0 }],
            _ => vec![sample(0.0), sample(1.7), sample(3.1), 1.0],
        }
    }
}

/// Deterministic default varying value used by [`FragmentContext::with_defaults`].
fn default_varying(input_index: usize, lane: usize, frag_x: f64, frag_y: f64) -> f64 {
    match lane {
        0 => frag_x + input_index as f64 * 0.01,
        1 => frag_y + input_index as f64 * 0.013,
        2 => 0.5 + 0.1 * input_index as f64,
        _ => 1.0,
    }
}

/// The result of executing a shader for one fragment.
#[derive(Debug, Clone, PartialEq)]
pub struct FragmentResult {
    /// Output values by output index (width matches the output type).
    pub outputs: Vec<Vec<f64>>,
    /// `true` if the fragment was discarded.
    pub discarded: bool,
}

/// Executes `shader` for one fragment described by `ctx`.
///
/// # Errors
///
/// Returns [`InterpError`] if the IR is malformed (e.g. use of an undefined
/// register); verified shaders do not fail.
pub fn run_fragment(shader: &Shader, ctx: &FragmentContext) -> Result<FragmentResult, InterpError> {
    let mut state = State {
        shader,
        ctx,
        regs: HashMap::new(),
        outputs: shader
            .outputs
            .iter()
            .map(|o| vec![0.0; o.ty.width as usize])
            .collect(),
        discarded: false,
    };
    state.exec_body(&shader.body)?;
    Ok(FragmentResult {
        outputs: state.outputs,
        discarded: state.discarded,
    })
}

struct State<'a> {
    shader: &'a Shader,
    ctx: &'a FragmentContext,
    regs: HashMap<Reg, Val>,
    outputs: Vec<Vec<f64>>,
    discarded: bool,
}

impl<'a> State<'a> {
    fn exec_body(&mut self, body: &[Stmt]) -> Result<(), InterpError> {
        for stmt in body {
            if self.discarded {
                return Ok(());
            }
            self.exec_stmt(stmt)?;
        }
        Ok(())
    }

    fn exec_stmt(&mut self, stmt: &Stmt) -> Result<(), InterpError> {
        match stmt {
            Stmt::Def { dst, op } => {
                let v = self.eval_op(op)?;
                self.regs.insert(*dst, v);
                Ok(())
            }
            Stmt::StoreOutput {
                output,
                components,
                value,
            } => {
                let v = self.eval(value)?.lanes();
                let out = self
                    .outputs
                    .get_mut(*output)
                    .ok_or_else(|| err("output index out of range"))?;
                match components {
                    None => {
                        for (i, lane) in out.iter_mut().enumerate() {
                            *lane = v.get(i).copied().unwrap_or(*v.first().unwrap_or(&0.0));
                        }
                    }
                    Some(comps) => {
                        for (src, dst_idx) in comps.iter().enumerate() {
                            if let Some(slot) = out.get_mut(*dst_idx as usize) {
                                *slot = v.get(src).copied().unwrap_or(*v.first().unwrap_or(&0.0));
                            }
                        }
                    }
                }
                Ok(())
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                if self.eval(cond)?.truthy() {
                    self.exec_body(then_body)
                } else {
                    self.exec_body(else_body)
                }
            }
            Stmt::Loop {
                var,
                start,
                end,
                step,
                body,
            } => {
                let mut i = *start;
                let mut guard = 0usize;
                while (*step > 0 && i < *end) || (*step < 0 && i > *end) {
                    self.regs.insert(*var, Val::scalar(i as f64));
                    self.exec_body(body)?;
                    if self.discarded {
                        return Ok(());
                    }
                    i += step;
                    guard += 1;
                    if guard > 1_000_000 {
                        return Err(err("loop exceeded iteration guard"));
                    }
                }
                Ok(())
            }
            Stmt::Discard { cond } => {
                let fire = match cond {
                    None => true,
                    Some(c) => self.eval(c)?.truthy(),
                };
                if fire {
                    self.discarded = true;
                }
                Ok(())
            }
        }
    }

    fn eval(&self, operand: &Operand) -> Result<Val, InterpError> {
        match operand {
            Operand::Reg(r) => self
                .regs
                .get(r)
                .cloned()
                .ok_or_else(|| err(format!("register {r} not defined at use"))),
            Operand::Const(c) => Ok(const_val(c)),
            Operand::Input(i) => self
                .ctx
                .inputs
                .get(*i)
                .cloned()
                .map(Val::Num)
                .ok_or_else(|| err(format!("input {i} missing from context"))),
            Operand::Uniform(u) => self
                .ctx
                .uniforms
                .get(*u)
                .cloned()
                .map(Val::Num)
                .ok_or_else(|| err(format!("uniform {u} missing from context"))),
        }
    }

    fn eval_op(&self, op: &Op) -> Result<Val, InterpError> {
        match op {
            Op::Mov(a) => self.eval(a),
            Op::Binary(bop, a, b) => {
                let av = self.eval(a)?;
                let bv = self.eval(b)?;
                eval_binary(*bop, &av, &bv)
            }
            Op::Unary(uop, a) => {
                let av = self.eval(a)?;
                Ok(match uop {
                    UnaryOp::Neg => Val::Num(av.lanes().iter().map(|x| -x).collect()),
                    UnaryOp::Not => Val::Bool(!av.truthy()),
                })
            }
            Op::Intrinsic(i, args) => {
                let vals: Vec<Val> = args
                    .iter()
                    .map(|a| self.eval(a))
                    .collect::<Result<_, _>>()?;
                eval_intrinsic(*i, &vals)
            }
            Op::TextureSample {
                sampler,
                coords,
                lod: _,
                dim,
            } => {
                let c = self.eval(coords)?.lanes();
                Ok(Val::Num(self.ctx.sample_texture(*sampler, &c, *dim)))
            }
            Op::Construct { ty, parts } => {
                let mut lanes = Vec::with_capacity(ty.width as usize);
                for p in parts {
                    lanes.extend(self.eval(p)?.lanes());
                }
                if parts.len() == 1 && lanes.len() == 1 {
                    // Single-scalar construct splats.
                    lanes = vec![lanes[0]; ty.width as usize];
                }
                lanes.truncate(ty.width as usize);
                while lanes.len() < ty.width as usize {
                    lanes.push(0.0);
                }
                Ok(Val::Num(lanes))
            }
            Op::Splat { ty, value } => {
                let v = self.eval(value)?.lanes();
                let x = v.first().copied().unwrap_or(0.0);
                Ok(Val::Num(vec![x; ty.width as usize]))
            }
            Op::Extract { vector, index } => {
                let v = self.eval(vector)?.lanes();
                v.get(*index as usize)
                    .map(|x| Val::scalar(*x))
                    .ok_or_else(|| err("extract index out of range"))
            }
            Op::Insert {
                vector,
                index,
                value,
            } => {
                let mut v = self.eval(vector)?.lanes();
                let x = self.eval(value)?.lanes().first().copied().unwrap_or(0.0);
                if (*index as usize) < v.len() {
                    v[*index as usize] = x;
                }
                Ok(Val::Num(v))
            }
            Op::Swizzle { vector, lanes } => {
                let v = self.eval(vector)?.lanes();
                Ok(Val::Num(
                    lanes
                        .iter()
                        .map(|l| v.get(*l as usize).copied().unwrap_or(0.0))
                        .collect(),
                ))
            }
            Op::Select {
                cond,
                if_true,
                if_false,
            } => {
                if self.eval(cond)?.truthy() {
                    self.eval(if_true)
                } else {
                    self.eval(if_false)
                }
            }
            Op::ConstArrayLoad { array, index } => {
                let arr = self
                    .shader
                    .const_arrays
                    .get(*array)
                    .ok_or_else(|| err("const array out of range"))?;
                if arr.elements.is_empty() {
                    return Err(err("const array load from empty array"));
                }
                let idx = self.eval(index)?.lanes().first().copied().unwrap_or(0.0);
                let idx = (idx.round() as i64).clamp(0, arr.len() as i64 - 1) as usize;
                Ok(Val::Num(arr.elements[idx].clone()))
            }
            Op::Convert { to, value } => {
                let v = self.eval(value)?;
                match v {
                    Val::Bool(b) => {
                        Ok(Val::Num(vec![if b { 1.0 } else { 0.0 }; to.width as usize]))
                    }
                    Val::Num(lanes) => {
                        let converted: Vec<f64> = lanes
                            .iter()
                            .map(|x| if to.is_int() { x.trunc() } else { *x })
                            .collect();
                        Ok(Val::Num(converted))
                    }
                }
            }
        }
    }
}

fn const_val(c: &Constant) -> Val {
    match c {
        Constant::Float(v) => Val::scalar(*v),
        Constant::Int(v) => Val::scalar(*v as f64),
        Constant::Uint(v) => Val::scalar(*v as f64),
        Constant::Bool(b) => Val::Bool(*b),
        Constant::FloatVec(v) => Val::Num(v.clone()),
    }
}

fn broadcast(a: &[f64], b: &[f64]) -> (Vec<f64>, Vec<f64>) {
    if a.len() == b.len() {
        (a.to_vec(), b.to_vec())
    } else if a.len() == 1 {
        (vec![a[0]; b.len()], b.to_vec())
    } else if b.len() == 1 {
        (a.to_vec(), vec![b[0]; a.len()])
    } else {
        (a.to_vec(), b.to_vec())
    }
}

fn eval_binary(op: BinaryOp, a: &Val, b: &Val) -> Result<Val, InterpError> {
    if op.is_logical() {
        return Ok(Val::Bool(match op {
            BinaryOp::And => a.truthy() && b.truthy(),
            BinaryOp::Or => a.truthy() || b.truthy(),
            _ => unreachable!(),
        }));
    }
    let (x, y) = broadcast(&a.lanes(), &b.lanes());
    if op.is_comparison() {
        let l = x.first().copied().unwrap_or(0.0);
        let r = y.first().copied().unwrap_or(0.0);
        return Ok(Val::Bool(match op {
            BinaryOp::Eq => (l - r).abs() < f64::EPSILON,
            BinaryOp::Ne => (l - r).abs() >= f64::EPSILON,
            BinaryOp::Lt => l < r,
            BinaryOp::Le => l <= r,
            BinaryOp::Gt => l > r,
            BinaryOp::Ge => l >= r,
            _ => unreachable!(),
        }));
    }
    let lanes: Vec<f64> = x
        .iter()
        .zip(&y)
        .map(|(l, r)| match op {
            BinaryOp::Add => l + r,
            BinaryOp::Sub => l - r,
            BinaryOp::Mul => l * r,
            BinaryOp::Div => {
                if *r == 0.0 {
                    0.0
                } else {
                    l / r
                }
            }
            BinaryOp::Mod => {
                if *r == 0.0 {
                    0.0
                } else {
                    l - r * (l / r).floor()
                }
            }
            _ => unreachable!(),
        })
        .collect();
    Ok(Val::Num(lanes))
}

/// Lane lookup that saturates at the last lane and falls back to `0.0` for an
/// empty vector value, so no intrinsic can index-panic on degenerate input.
fn lane_at(v: &[f64], idx: usize) -> f64 {
    v.get(idx.min(v.len().saturating_sub(1)))
        .copied()
        .unwrap_or(0.0)
}

fn eval_intrinsic(i: Intrinsic, args: &[Val]) -> Result<Val, InterpError> {
    let lanes = |n: usize| -> Vec<f64> { args.get(n).map(|v| v.lanes()).unwrap_or_default() };
    let unary = |f: fn(f64) -> f64| -> Val { Val::Num(lanes(0).iter().map(|x| f(*x)).collect()) };
    Ok(match i {
        Intrinsic::Pow => {
            let (x, y) = broadcast(&lanes(0), &lanes(1));
            Val::Num(x.iter().zip(&y).map(|(a, b)| a.abs().powf(*b)).collect())
        }
        Intrinsic::Exp => unary(f64::exp),
        Intrinsic::Log => unary(|x| if x <= 0.0 { 0.0 } else { x.ln() }),
        Intrinsic::Sqrt => unary(|x| x.max(0.0).sqrt()),
        Intrinsic::InverseSqrt => unary(|x| 1.0 / x.max(1e-12).sqrt()),
        Intrinsic::Sin => unary(f64::sin),
        Intrinsic::Cos => unary(f64::cos),
        Intrinsic::Abs => unary(f64::abs),
        Intrinsic::Sign => unary(f64::signum),
        Intrinsic::Floor => unary(f64::floor),
        Intrinsic::Fract => unary(|x| x - x.floor()),
        Intrinsic::Mod => {
            let (x, y) = broadcast(&lanes(0), &lanes(1));
            Val::Num(
                x.iter()
                    .zip(&y)
                    .map(|(a, b)| {
                        if *b == 0.0 {
                            0.0
                        } else {
                            a - b * (a / b).floor()
                        }
                    })
                    .collect(),
            )
        }
        Intrinsic::Min => {
            let (x, y) = broadcast(&lanes(0), &lanes(1));
            Val::Num(x.iter().zip(&y).map(|(a, b)| a.min(*b)).collect())
        }
        Intrinsic::Max => {
            let (x, y) = broadcast(&lanes(0), &lanes(1));
            Val::Num(x.iter().zip(&y).map(|(a, b)| a.max(*b)).collect())
        }
        Intrinsic::Clamp => {
            let x = lanes(0);
            let (lo, _) = broadcast(&lanes(1), &x);
            let (hi, _) = broadcast(&lanes(2), &x);
            Val::Num(
                x.iter()
                    .enumerate()
                    .map(|(idx, v)| v.max(lane_at(&lo, idx)).min(lane_at(&hi, idx)))
                    .collect(),
            )
        }
        Intrinsic::Mix => {
            let a = lanes(0);
            let b = lanes(1);
            let (t, _) = broadcast(&lanes(2), &a);
            Val::Num(
                a.iter()
                    .zip(&b)
                    .enumerate()
                    .map(|(idx, (x, y))| {
                        let tt = lane_at(&t, idx);
                        x * (1.0 - tt) + y * tt
                    })
                    .collect(),
            )
        }
        Intrinsic::Step => {
            let (edge, x) = broadcast(&lanes(0), &lanes(1));
            Val::Num(
                edge.iter()
                    .zip(&x)
                    .map(|(e, v)| if v < e { 0.0 } else { 1.0 })
                    .collect(),
            )
        }
        Intrinsic::Smoothstep => {
            let x = lanes(2);
            let (e0, _) = broadcast(&lanes(0), &x);
            let (e1, _) = broadcast(&lanes(1), &x);
            Val::Num(
                x.iter()
                    .enumerate()
                    .map(|(idx, v)| {
                        let a = lane_at(&e0, idx);
                        let b = lane_at(&e1, idx);
                        let t = ((v - a) / (b - a).max(1e-12)).clamp(0.0, 1.0);
                        t * t * (3.0 - 2.0 * t)
                    })
                    .collect(),
            )
        }
        Intrinsic::Length => Val::scalar(lanes(0).iter().map(|x| x * x).sum::<f64>().sqrt()),
        Intrinsic::Distance => {
            let (a, b) = broadcast(&lanes(0), &lanes(1));
            Val::scalar(
                a.iter()
                    .zip(&b)
                    .map(|(x, y)| (x - y) * (x - y))
                    .sum::<f64>()
                    .sqrt(),
            )
        }
        Intrinsic::Dot => {
            let (a, b) = broadcast(&lanes(0), &lanes(1));
            Val::scalar(a.iter().zip(&b).map(|(x, y)| x * y).sum())
        }
        Intrinsic::Cross => {
            let a = lanes(0);
            let b = lanes(1);
            if a.len() < 3 || b.len() < 3 {
                return Err(err("cross requires vec3 operands"));
            }
            Val::Num(vec![
                a[1] * b[2] - a[2] * b[1],
                a[2] * b[0] - a[0] * b[2],
                a[0] * b[1] - a[1] * b[0],
            ])
        }
        Intrinsic::Normalize => {
            let a = lanes(0);
            let len = a.iter().map(|x| x * x).sum::<f64>().sqrt().max(1e-12);
            Val::Num(a.iter().map(|x| x / len).collect())
        }
        Intrinsic::Reflect => {
            let (i_v, n) = broadcast(&lanes(0), &lanes(1));
            let d: f64 = i_v.iter().zip(&n).map(|(x, y)| x * y).sum();
            Val::Num(i_v.iter().zip(&n).map(|(x, y)| x - 2.0 * d * y).collect())
        }
        Intrinsic::Refract => {
            // Simplified refract: eta-scaled reflection fallback.
            let (i_v, n) = broadcast(&lanes(0), &lanes(1));
            let eta = lanes(2).first().copied().unwrap_or(1.0);
            let d: f64 = i_v.iter().zip(&n).map(|(x, y)| x * y).sum();
            let k = 1.0 - eta * eta * (1.0 - d * d);
            if k < 0.0 {
                Val::Num(vec![0.0; i_v.len()])
            } else {
                Val::Num(
                    i_v.iter()
                        .zip(&n)
                        .map(|(x, y)| eta * x - (eta * d + k.sqrt()) * y)
                        .collect(),
                )
            }
        }
        // Derivatives are zero for a single isolated fragment.
        Intrinsic::DFdx | Intrinsic::DFdy => Val::Num(vec![0.0; lanes(0).len()]),
        Intrinsic::Fwidth => Val::Num(vec![0.0; lanes(0).len()]),
    })
}

/// Compares two fragment results for exact equality — every output lane must
/// agree bit-for-bit (`f64::to_bits`), with one deliberate canonicalisation:
/// the two zeros compare equal. Folding `x·0 → 0` legitimately turns a `-0.0`
/// into `+0.0`, and no framebuffer consumer can observe the sign of zero; any
/// other bit of drift (including NaN payloads) is a real semantic change.
/// This is the oracle the specialization differential uses: a substituted-
/// and-folded variant performs the same exact arithmetic as the general one,
/// so nothing beyond zero-sign may move.
pub fn results_exactly_equal(a: &FragmentResult, b: &FragmentResult) -> bool {
    if a.discarded != b.discarded || a.outputs.len() != b.outputs.len() {
        return false;
    }
    let canon = |v: f64| {
        if v == 0.0 {
            0.0f64.to_bits()
        } else {
            v.to_bits()
        }
    };
    a.outputs
        .iter()
        .zip(&b.outputs)
        .all(|(x, y)| x.len() == y.len() && x.iter().zip(y).all(|(l, r)| canon(*l) == canon(*r)))
}

/// Compares two fragment results with a relative/absolute tolerance, which is
/// how the test-suite checks that optimizations preserve semantics (the
/// unsafe floating-point passes may legitimately change low-order bits).
pub fn results_approx_equal(a: &FragmentResult, b: &FragmentResult, tol: f64) -> bool {
    if a.discarded != b.discarded {
        return false;
    }
    if a.outputs.len() != b.outputs.len() {
        return false;
    }
    for (x, y) in a.outputs.iter().zip(&b.outputs) {
        if x.len() != y.len() {
            return false;
        }
        for (l, r) in x.iter().zip(y) {
            let scale = 1.0_f64.max(l.abs()).max(r.abs());
            if (l - r).abs() > tol * scale {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shader::{OutputVar, SamplerVar, UniformVar};
    use crate::types::IrType;

    fn shader_with_output() -> Shader {
        let mut s = Shader::new("interp");
        s.outputs.push(OutputVar {
            name: "c".into(),
            ty: IrType::fvec(4),
        });
        s
    }

    #[test]
    fn executes_simple_arithmetic() {
        let mut s = shader_with_output();
        let a = s.new_reg(IrType::F32);
        let b = s.new_reg(IrType::fvec(4));
        s.body = vec![
            Stmt::Def {
                dst: a,
                op: Op::Binary(BinaryOp::Add, Operand::float(1.5), Operand::float(2.5)),
            },
            Stmt::Def {
                dst: b,
                op: Op::Splat {
                    ty: IrType::fvec(4),
                    value: Operand::Reg(a),
                },
            },
            Stmt::StoreOutput {
                output: 0,
                components: None,
                value: Operand::Reg(b),
            },
        ];
        let ctx = FragmentContext::with_defaults(&s, 0.25, 0.75);
        let r = run_fragment(&s, &ctx).unwrap();
        assert_eq!(r.outputs[0], vec![4.0, 4.0, 4.0, 4.0]);
        assert!(!r.discarded);
    }

    #[test]
    fn loop_accumulates() {
        let mut s = shader_with_output();
        let i = s.new_reg(IrType::I32);
        let acc = s.new_reg(IrType::F32);
        let out = s.new_reg(IrType::fvec(4));
        s.body = vec![
            Stmt::Def {
                dst: acc,
                op: Op::Mov(Operand::float(0.0)),
            },
            Stmt::Loop {
                var: i,
                start: 0,
                end: 5,
                step: 1,
                body: vec![Stmt::Def {
                    dst: acc,
                    op: Op::Binary(BinaryOp::Add, Operand::Reg(acc), Operand::Reg(i)),
                }],
            },
            Stmt::Def {
                dst: out,
                op: Op::Splat {
                    ty: IrType::fvec(4),
                    value: Operand::Reg(acc),
                },
            },
            Stmt::StoreOutput {
                output: 0,
                components: None,
                value: Operand::Reg(out),
            },
        ];
        let ctx = FragmentContext::with_defaults(&s, 0.0, 0.0);
        let r = run_fragment(&s, &ctx).unwrap();
        assert_eq!(r.outputs[0][0], 10.0);
    }

    #[test]
    fn branch_and_discard() {
        let mut s = shader_with_output();
        s.uniforms.push(UniformVar {
            name: "t".into(),
            ty: IrType::F32,
            slot: 0,
            original: "t".into(),
        });
        let c = s.new_reg(IrType::BOOL);
        s.body = vec![
            Stmt::Def {
                dst: c,
                op: Op::Binary(BinaryOp::Lt, Operand::Uniform(0), Operand::float(0.4)),
            },
            Stmt::If {
                cond: Operand::Reg(c),
                then_body: vec![Stmt::Discard { cond: None }],
                else_body: vec![Stmt::StoreOutput {
                    output: 0,
                    components: None,
                    value: Operand::fvec(vec![1.0, 0.0, 0.0, 1.0]),
                }],
            },
        ];
        // Default uniform is 0.5, so no discard.
        let ctx = FragmentContext::with_defaults(&s, 0.0, 0.0);
        let r = run_fragment(&s, &ctx).unwrap();
        assert!(!r.discarded);
        assert_eq!(r.outputs[0][0], 1.0);
        // Lower the uniform below the threshold and the fragment is discarded.
        let mut ctx2 = ctx.clone();
        ctx2.uniforms[0] = vec![0.1];
        let r2 = run_fragment(&s, &ctx2).unwrap();
        assert!(r2.discarded);
    }

    #[test]
    fn texture_sampling_is_deterministic_and_in_range() {
        let mut s = shader_with_output();
        s.samplers.push(SamplerVar {
            name: "tex".into(),
            dim: TextureDim::Dim2D,
        });
        let t = s.new_reg(IrType::fvec(4));
        s.body = vec![
            Stmt::Def {
                dst: t,
                op: Op::TextureSample {
                    sampler: 0,
                    coords: Operand::fvec(vec![0.3, 0.6]),
                    lod: None,
                    dim: TextureDim::Dim2D,
                },
            },
            Stmt::StoreOutput {
                output: 0,
                components: None,
                value: Operand::Reg(t),
            },
        ];
        let ctx = FragmentContext::with_defaults(&s, 0.0, 0.0);
        let a = run_fragment(&s, &ctx).unwrap();
        let b = run_fragment(&s, &ctx).unwrap();
        assert_eq!(a, b);
        assert!(a.outputs[0].iter().all(|v| (0.0..=1.0).contains(v)));
        assert_eq!(a.outputs[0][3], 1.0);
    }

    #[test]
    fn intrinsics_behave_reasonably() {
        assert_eq!(
            eval_intrinsic(
                Intrinsic::Dot,
                &[Val::Num(vec![1.0, 2.0, 3.0]), Val::Num(vec![4.0, 5.0, 6.0])]
            )
            .unwrap(),
            Val::scalar(32.0)
        );
        assert_eq!(
            eval_intrinsic(
                Intrinsic::Mix,
                &[
                    Val::Num(vec![0.0, 10.0]),
                    Val::Num(vec![10.0, 20.0]),
                    Val::scalar(0.5)
                ]
            )
            .unwrap(),
            Val::Num(vec![5.0, 15.0])
        );
        assert_eq!(
            eval_intrinsic(
                Intrinsic::Clamp,
                &[
                    Val::Num(vec![-1.0, 0.5, 2.0]),
                    Val::scalar(0.0),
                    Val::scalar(1.0)
                ]
            )
            .unwrap(),
            Val::Num(vec![0.0, 0.5, 1.0])
        );
        let n = eval_intrinsic(Intrinsic::Normalize, &[Val::Num(vec![3.0, 0.0, 4.0])]).unwrap();
        assert!((n.lanes()[0] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn approx_equality_tolerates_small_differences() {
        let a = FragmentResult {
            outputs: vec![vec![1.0, 2.0]],
            discarded: false,
        };
        let b = FragmentResult {
            outputs: vec![vec![1.0 + 1e-7, 2.0 - 1e-7]],
            discarded: false,
        };
        let c = FragmentResult {
            outputs: vec![vec![1.5, 2.0]],
            discarded: false,
        };
        assert!(results_approx_equal(&a, &b, 1e-5));
        assert!(!results_approx_equal(&a, &c, 1e-5));
        let d = FragmentResult {
            outputs: vec![vec![1.0, 2.0]],
            discarded: true,
        };
        assert!(!results_approx_equal(&a, &d, 1e-5));
    }

    #[test]
    fn division_by_zero_is_guarded() {
        let v = eval_binary(BinaryOp::Div, &Val::scalar(1.0), &Val::scalar(0.0)).unwrap();
        assert_eq!(v, Val::scalar(0.0));
    }

    #[test]
    fn zero_lane_shuffle_stores_do_not_panic() {
        // Regression: a zero-lane swizzle produces an empty vector value; a
        // component store of that value used to fall back to `v[0]` when the
        // source lane was missing, which panics on the empty vector. The
        // fallback must be 0.0, like the full-store path one match arm up.
        let mut s = shader_with_output();
        let wide = s.new_reg(IrType::fvec(4));
        let empty = s.new_reg(IrType::F32);
        s.body = vec![
            Stmt::Def {
                dst: wide,
                op: Op::Mov(Operand::fvec(vec![1.0, 2.0, 3.0, 4.0])),
            },
            Stmt::Def {
                dst: empty,
                op: Op::Swizzle {
                    vector: Operand::Reg(wide),
                    lanes: vec![],
                },
            },
            Stmt::StoreOutput {
                output: 0,
                components: Some(vec![1]),
                value: Operand::Reg(empty),
            },
        ];
        let r = run_fragment(&s, &FragmentContext::with_defaults(&s, 0.25, 0.75)).unwrap();
        assert_eq!(r.outputs[0][1], 0.0);
    }

    #[test]
    fn empty_vector_values_do_not_panic_in_ops() {
        // Splat / Insert / comparisons / Clamp-family intrinsics over empty
        // vector values all take the 0.0 fallback instead of indexing.
        let mut s = shader_with_output();
        let wide = s.new_reg(IrType::fvec(2));
        let empty = s.new_reg(IrType::F32);
        let splat = s.new_reg(IrType::fvec(3));
        let ins = s.new_reg(IrType::fvec(2));
        let cmp = s.new_reg(IrType::BOOL);
        let sel = s.new_reg(IrType::F32);
        s.body = vec![
            Stmt::Def {
                dst: wide,
                op: Op::Mov(Operand::fvec(vec![5.0, 6.0])),
            },
            Stmt::Def {
                dst: empty,
                op: Op::Swizzle {
                    vector: Operand::Reg(wide),
                    lanes: vec![],
                },
            },
            Stmt::Def {
                dst: splat,
                op: Op::Splat {
                    ty: IrType::fvec(3),
                    value: Operand::Reg(empty),
                },
            },
            Stmt::Def {
                dst: ins,
                op: Op::Insert {
                    vector: Operand::Reg(wide),
                    index: 0,
                    value: Operand::Reg(empty),
                },
            },
            Stmt::Def {
                dst: cmp,
                op: Op::Binary(BinaryOp::Lt, Operand::Reg(empty), Operand::Reg(empty)),
            },
            Stmt::Def {
                dst: sel,
                op: Op::Intrinsic(
                    Intrinsic::Clamp,
                    vec![Operand::Reg(wide), Operand::Reg(empty), Operand::Reg(empty)],
                ),
            },
            Stmt::StoreOutput {
                output: 0,
                components: None,
                value: Operand::Reg(splat),
            },
        ];
        let r = run_fragment(&s, &FragmentContext::with_defaults(&s, 0.25, 0.75)).unwrap();
        // The empty-splat broadcast falls back to 0.0 in every written lane.
        assert_eq!(r.outputs[0], vec![0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn exact_equality_is_bitwise() {
        let a = FragmentResult {
            outputs: vec![vec![1.0, 0.0]],
            discarded: false,
        };
        let same = FragmentResult {
            outputs: vec![vec![1.0, 0.0]],
            discarded: false,
        };
        let neg_zero = FragmentResult {
            outputs: vec![vec![1.0, -0.0]],
            discarded: false,
        };
        let off = FragmentResult {
            outputs: vec![vec![1.0 + f64::EPSILON, 0.0]],
            discarded: false,
        };
        assert!(results_exactly_equal(&a, &same));
        // The one canonicalisation: signed zeros compare equal (x·0 folds
        // flip the sign of zero, which no output consumer observes).
        assert!(results_exactly_equal(&a, &neg_zero));
        assert!(!results_exactly_equal(&a, &off));
    }
}
