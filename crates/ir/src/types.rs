//! Types for the prism shader IR.
//!
//! The IR follows the LunarGlass/LLVM model the paper describes: only scalars
//! and short vectors exist. GLSL matrices are scalarised into column vectors
//! during lowering (the paper's §III-C artefact (a)), and scalar-by-vector
//! arithmetic is vectorised by splatting the scalar (artefact (b)).

use std::fmt;

/// Scalar element kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scalar {
    /// 32-bit float.
    F32,
    /// 32-bit signed integer.
    I32,
    /// 32-bit unsigned integer.
    U32,
    /// Boolean.
    Bool,
}

impl Scalar {
    /// `true` for the floating point scalar.
    pub fn is_float(self) -> bool {
        matches!(self, Scalar::F32)
    }

    /// `true` for signed/unsigned integers.
    pub fn is_int(self) -> bool {
        matches!(self, Scalar::I32 | Scalar::U32)
    }
}

/// An IR value type: a scalar or a short vector (width 2–4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IrType {
    /// Element kind.
    pub scalar: Scalar,
    /// Number of components: 1 (scalar) to 4.
    pub width: u8,
}

impl IrType {
    /// 32-bit float scalar.
    pub const F32: IrType = IrType {
        scalar: Scalar::F32,
        width: 1,
    };
    /// 32-bit signed int scalar.
    pub const I32: IrType = IrType {
        scalar: Scalar::I32,
        width: 1,
    };
    /// 32-bit unsigned int scalar.
    pub const U32: IrType = IrType {
        scalar: Scalar::U32,
        width: 1,
    };
    /// Boolean scalar.
    pub const BOOL: IrType = IrType {
        scalar: Scalar::Bool,
        width: 1,
    };

    /// Creates a vector type of the given element kind and width (1–4).
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 4.
    pub fn vec(scalar: Scalar, width: u8) -> IrType {
        assert!(
            (1..=4).contains(&width),
            "vector width must be 1..=4, got {width}"
        );
        IrType { scalar, width }
    }

    /// Float vector of the given width.
    pub fn fvec(width: u8) -> IrType {
        IrType::vec(Scalar::F32, width)
    }

    /// `true` if this is a scalar (width 1).
    pub fn is_scalar(self) -> bool {
        self.width == 1
    }

    /// `true` if this is a vector (width ≥ 2).
    pub fn is_vector(self) -> bool {
        self.width >= 2
    }

    /// `true` if the element kind is float.
    pub fn is_float(self) -> bool {
        self.scalar.is_float()
    }

    /// `true` if the element kind is an integer.
    pub fn is_int(self) -> bool {
        self.scalar.is_int()
    }

    /// `true` if the element kind is bool.
    pub fn is_bool(self) -> bool {
        self.scalar == Scalar::Bool
    }

    /// The scalar type with the same element kind.
    pub fn element(self) -> IrType {
        IrType {
            scalar: self.scalar,
            width: 1,
        }
    }

    /// This type widened (or narrowed) to `width` components.
    pub fn with_width(self, width: u8) -> IrType {
        IrType::vec(self.scalar, width)
    }

    /// GLSL spelling of this type (used by the back-end).
    pub fn glsl_name(self) -> String {
        if self.width == 1 {
            match self.scalar {
                Scalar::F32 => "float".to_string(),
                Scalar::I32 => "int".to_string(),
                Scalar::U32 => "uint".to_string(),
                Scalar::Bool => "bool".to_string(),
            }
        } else {
            let prefix = match self.scalar {
                Scalar::F32 => "vec",
                Scalar::I32 => "ivec",
                Scalar::U32 => "uvec",
                Scalar::Bool => "bvec",
            };
            format!("{prefix}{}", self.width)
        }
    }
}

impl fmt::Display for IrType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.glsl_name())
    }
}

/// Texture/sampler dimensionality carried on sampler bindings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TextureDim {
    /// 2D texture.
    Dim2D,
    /// 3D texture.
    Dim3D,
    /// Cube map.
    Cube,
    /// 2D shadow (depth-compare) texture; sampling yields a scalar.
    Shadow2D,
    /// 2D array texture.
    Array2D,
}

impl TextureDim {
    /// Number of coordinate components required to sample.
    pub fn coord_width(self) -> u8 {
        match self {
            TextureDim::Dim2D => 2,
            TextureDim::Dim3D | TextureDim::Cube | TextureDim::Shadow2D | TextureDim::Array2D => 3,
        }
    }

    /// Result type of a sample from this texture.
    pub fn sample_type(self) -> IrType {
        match self {
            TextureDim::Shadow2D => IrType::F32,
            _ => IrType::fvec(4),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_constructors_and_predicates() {
        let v3 = IrType::fvec(3);
        assert!(v3.is_vector());
        assert!(v3.is_float());
        assert!(!v3.is_scalar());
        assert_eq!(v3.element(), IrType::F32);
        assert_eq!(v3.with_width(4), IrType::fvec(4));
        assert!(IrType::BOOL.is_bool());
        assert!(IrType::I32.is_int());
    }

    #[test]
    #[should_panic(expected = "vector width")]
    fn zero_width_panics() {
        IrType::vec(Scalar::F32, 0);
    }

    #[test]
    fn glsl_names() {
        assert_eq!(IrType::F32.glsl_name(), "float");
        assert_eq!(IrType::fvec(4).glsl_name(), "vec4");
        assert_eq!(IrType::vec(Scalar::I32, 2).glsl_name(), "ivec2");
        assert_eq!(IrType::vec(Scalar::Bool, 3).glsl_name(), "bvec3");
        assert_eq!(IrType::U32.glsl_name(), "uint");
    }

    #[test]
    fn texture_dims() {
        assert_eq!(TextureDim::Dim2D.coord_width(), 2);
        assert_eq!(TextureDim::Cube.coord_width(), 3);
        assert_eq!(TextureDim::Shadow2D.sample_type(), IrType::F32);
        assert_eq!(TextureDim::Dim2D.sample_type(), IrType::fvec(4));
    }
}
