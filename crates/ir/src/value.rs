//! Registers, constants and operands of the prism IR.

use crate::types::{IrType, Scalar};
use std::fmt;

/// A virtual register index within one shader.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u32);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// A compile-time constant value.
///
/// Vector constants hold up to four `f64` lanes regardless of element kind;
/// the associated [`IrType`] on the operand supplies the interpretation.
#[derive(Debug, Clone, PartialEq)]
pub enum Constant {
    /// Float scalar constant.
    Float(f64),
    /// Signed integer scalar constant.
    Int(i64),
    /// Unsigned integer scalar constant.
    Uint(u64),
    /// Boolean constant.
    Bool(bool),
    /// Float vector constant of width 2–4.
    FloatVec(Vec<f64>),
}

impl Constant {
    /// The IR type of this constant.
    pub fn ty(&self) -> IrType {
        match self {
            Constant::Float(_) => IrType::F32,
            Constant::Int(_) => IrType::I32,
            Constant::Uint(_) => IrType::U32,
            Constant::Bool(_) => IrType::BOOL,
            Constant::FloatVec(v) => IrType::vec(Scalar::F32, v.len() as u8),
        }
    }

    /// Returns the scalar float value, accepting int constants as floats.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Constant::Float(v) => Some(*v),
            Constant::Int(v) => Some(*v as f64),
            Constant::Uint(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Returns the integer value if this is an integer constant.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Constant::Int(v) => Some(*v),
            Constant::Uint(v) => Some(*v as i64),
            _ => None,
        }
    }

    /// Returns the boolean value if this is a bool constant.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Constant::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the lanes of the constant broadcast to `width` components.
    ///
    /// A scalar float/int broadcasts to all lanes; a vector must already have
    /// exactly `width` lanes.
    pub fn lanes(&self, width: u8) -> Option<Vec<f64>> {
        match self {
            Constant::Float(v) => Some(vec![*v; width as usize]),
            Constant::Int(v) => Some(vec![*v as f64; width as usize]),
            Constant::Uint(v) => Some(vec![*v as f64; width as usize]),
            Constant::FloatVec(v) if v.len() == width as usize => Some(v.clone()),
            _ => None,
        }
    }

    /// `true` when every lane equals `value`.
    pub fn is_all(&self, value: f64) -> bool {
        match self {
            Constant::Float(v) => *v == value,
            Constant::Int(v) => *v as f64 == value,
            Constant::Uint(v) => *v as f64 == value,
            Constant::FloatVec(v) => v.iter().all(|x| *x == value),
            Constant::Bool(_) => false,
        }
    }

    /// A canonical text form used for hashing / value numbering.
    pub fn key(&self) -> String {
        match self {
            Constant::Float(v) => format!("f:{}", canonical_f64(*v)),
            Constant::Int(v) => format!("i:{v}"),
            Constant::Uint(v) => format!("u:{v}"),
            Constant::Bool(b) => format!("b:{b}"),
            Constant::FloatVec(v) => {
                let parts: Vec<String> = v.iter().map(|x| canonical_f64(*x)).collect();
                format!("fv:{}", parts.join(","))
            }
        }
    }
}

/// Formats an `f64` in a canonical way (so `1` and `1.0` hash equally).
pub fn canonical_f64(v: f64) -> String {
    if v == 0.0 {
        // Collapse -0.0 and 0.0.
        return "0".to_string();
    }
    format!("{v}")
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constant::Float(v) => write!(f, "{}", format_glsl_float(*v)),
            Constant::Int(v) => write!(f, "{v}"),
            Constant::Uint(v) => write!(f, "{v}u"),
            Constant::Bool(b) => write!(f, "{b}"),
            Constant::FloatVec(v) => {
                let parts: Vec<String> = v.iter().map(|x| format_glsl_float(*x)).collect();
                write!(f, "vec{}({})", v.len(), parts.join(", "))
            }
        }
    }
}

/// Formats a float as a valid GLSL float literal (always contains `.` or `e`).
pub fn format_glsl_float(v: f64) -> String {
    if v.is_nan() {
        return "(0.0 / 0.0)".to_string();
    }
    if v.is_infinite() {
        return if v > 0.0 {
            "(1.0 / 0.0)"
        } else {
            "(-1.0 / 0.0)"
        }
        .to_string();
    }
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

/// An operand of an IR operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// A virtual register.
    Reg(Reg),
    /// An inline constant.
    Const(Constant),
    /// A shader stage input (interpolated varying), by index into
    /// [`crate::shader::Shader::inputs`].
    Input(usize),
    /// A non-sampler uniform, by index into [`crate::shader::Shader::uniforms`].
    Uniform(usize),
}

impl Operand {
    /// Float constant operand.
    pub fn float(v: f64) -> Operand {
        Operand::Const(Constant::Float(v))
    }

    /// Integer constant operand.
    pub fn int(v: i64) -> Operand {
        Operand::Const(Constant::Int(v))
    }

    /// Boolean constant operand.
    pub fn boolean(v: bool) -> Operand {
        Operand::Const(Constant::Bool(v))
    }

    /// Float vector constant operand.
    pub fn fvec(lanes: Vec<f64>) -> Operand {
        Operand::Const(Constant::FloatVec(lanes))
    }

    /// Returns the register if this operand is a register.
    pub fn as_reg(&self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(*r),
            _ => None,
        }
    }

    /// Returns the constant if this operand is a constant.
    pub fn as_const(&self) -> Option<&Constant> {
        match self {
            Operand::Const(c) => Some(c),
            _ => None,
        }
    }

    /// `true` if this operand is any constant.
    pub fn is_const(&self) -> bool {
        matches!(self, Operand::Const(_))
    }

    /// A canonical text key for value numbering.
    pub fn key(&self) -> String {
        match self {
            Operand::Reg(r) => format!("r{}", r.0),
            Operand::Const(c) => c.key(),
            Operand::Input(i) => format!("in{i}"),
            Operand::Uniform(u) => format!("un{u}"),
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_types() {
        assert_eq!(Constant::Float(1.0).ty(), IrType::F32);
        assert_eq!(Constant::Int(3).ty(), IrType::I32);
        assert_eq!(Constant::Bool(true).ty(), IrType::BOOL);
        assert_eq!(
            Constant::FloatVec(vec![1.0, 2.0, 3.0]).ty(),
            IrType::fvec(3)
        );
    }

    #[test]
    fn lanes_broadcast() {
        assert_eq!(Constant::Float(2.0).lanes(3), Some(vec![2.0, 2.0, 2.0]));
        assert_eq!(
            Constant::FloatVec(vec![1.0, 2.0]).lanes(2),
            Some(vec![1.0, 2.0])
        );
        assert_eq!(Constant::FloatVec(vec![1.0, 2.0]).lanes(3), None);
        assert_eq!(Constant::Bool(true).lanes(2), None);
    }

    #[test]
    fn is_all_checks_every_lane() {
        assert!(Constant::Float(0.0).is_all(0.0));
        assert!(Constant::FloatVec(vec![1.0, 1.0, 1.0]).is_all(1.0));
        assert!(!Constant::FloatVec(vec![1.0, 2.0]).is_all(1.0));
        assert!(Constant::Int(3).is_all(3.0));
    }

    #[test]
    fn glsl_float_formatting() {
        assert_eq!(format_glsl_float(1.0), "1.0");
        assert_eq!(format_glsl_float(0.5), "0.5");
        assert_eq!(format_glsl_float(-2.0), "-2.0");
        // Whatever the exact rendering, the literal must parse as a GLSL float.
        let tiny = format_glsl_float(1e-9);
        assert!(tiny.contains('.') || tiny.contains('e'));
    }

    #[test]
    fn constant_display_is_glsl() {
        assert_eq!(Constant::Float(3.0).to_string(), "3.0");
        assert_eq!(
            Constant::FloatVec(vec![1.0, 0.5, 0.0]).to_string(),
            "vec3(1.0, 0.5, 0.0)"
        );
        assert_eq!(Constant::Uint(7).to_string(), "7u");
    }

    #[test]
    fn canonical_keys_collapse_equivalent_floats() {
        assert_eq!(Constant::Float(0.0).key(), Constant::Float(-0.0).key());
        assert_ne!(Constant::Float(1.0).key(), Constant::Int(1).key());
    }

    #[test]
    fn operand_helpers() {
        let r = Operand::Reg(Reg(4));
        assert_eq!(r.as_reg(), Some(Reg(4)));
        assert!(Operand::float(1.0).is_const());
        assert!(!r.is_const());
        assert_eq!(Operand::Input(2).key(), "in2");
        assert_eq!(Operand::Uniform(1).key(), "un1");
        let from_reg: Operand = Reg(9).into();
        assert_eq!(from_reg.as_reg(), Some(Reg(9)));
    }
}
