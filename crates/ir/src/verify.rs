//! Structural and type verification of shader IR.
//!
//! Every optimization pass in `prism-core` is followed by a verifier run in
//! debug builds and in tests, so malformed rewrites are caught immediately
//! rather than surfacing as nonsense GLSL or bogus timing results.

use crate::op::Op;
use crate::shader::Shader;
use crate::stmt::Stmt;
use crate::types::IrType;
use crate::value::{Operand, Reg};
use std::collections::HashSet;
use std::fmt;

/// A verification failure.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyError {
    /// Human readable description of the problem.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IR verification failed: {}", self.message)
    }
}

impl std::error::Error for VerifyError {}

/// Verifies a shader, returning the first problem found.
///
/// Checks performed:
/// * every register referenced exists in the register table,
/// * every register use is preceded by a definition on all structured paths
///   reaching it (defined earlier in the same or an enclosing statement list,
///   or defined in *both* branches of an earlier `if`),
/// * operand indices (inputs, uniforms, samplers, outputs, const arrays) are
///   in range,
/// * operation result widths match the destination register type,
/// * vector component indices are within the operand width,
/// * loop bounds describe a finite, forward-progressing loop.
pub fn verify(shader: &Shader) -> Result<(), VerifyError> {
    let mut defined: HashSet<Reg> = HashSet::new();
    verify_body(shader, &shader.body, &mut defined)
}

fn err(message: impl Into<String>) -> VerifyError {
    VerifyError {
        message: message.into(),
    }
}

fn verify_body(
    shader: &Shader,
    body: &[Stmt],
    defined: &mut HashSet<Reg>,
) -> Result<(), VerifyError> {
    for stmt in body {
        verify_stmt(shader, stmt, defined)?;
    }
    Ok(())
}

fn verify_stmt(
    shader: &Shader,
    stmt: &Stmt,
    defined: &mut HashSet<Reg>,
) -> Result<(), VerifyError> {
    // All operands of the statement itself must already be defined.
    for operand in stmt.operands() {
        verify_operand(shader, operand, defined)?;
    }
    match stmt {
        Stmt::Def { dst, op } => {
            if dst.0 as usize >= shader.regs.len() {
                return Err(err(format!("register {dst} not allocated")));
            }
            verify_op(shader, *dst, op, defined)?;
            defined.insert(*dst);
        }
        Stmt::StoreOutput {
            output,
            components,
            value,
        } => {
            let out = shader
                .outputs
                .get(*output)
                .ok_or_else(|| err(format!("output index {output} out of range")))?;
            if let Some(comps) = components {
                if comps.is_empty() || comps.len() > 4 {
                    return Err(err("output component list must have 1-4 entries"));
                }
                for c in comps {
                    if *c >= out.ty.width {
                        return Err(err(format!(
                            "output component {c} out of range for {}",
                            out.ty
                        )));
                    }
                }
            } else {
                let vt = operand_ty(shader, value);
                if let Some(vt) = vt {
                    if vt.width != out.ty.width {
                        return Err(err(format!(
                            "store to output `{}` has width {} but output is {}",
                            out.name, vt.width, out.ty
                        )));
                    }
                }
            }
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            let ct = operand_ty(shader, cond);
            if let Some(ct) = ct {
                if !ct.is_bool() || !ct.is_scalar() {
                    return Err(err(format!("if condition must be scalar bool, found {ct}")));
                }
            }
            // Registers defined in only one branch must not leak out, but
            // registers defined in both branches are defined afterwards.
            let mut then_defined = defined.clone();
            verify_body(shader, then_body, &mut then_defined)?;
            let mut else_defined = defined.clone();
            verify_body(shader, else_body, &mut else_defined)?;
            for r in then_defined.intersection(&else_defined) {
                defined.insert(*r);
            }
        }
        Stmt::Loop {
            var,
            start,
            end,
            step,
            body,
        } => {
            if *step == 0 {
                return Err(err("loop step must be non-zero"));
            }
            if (*step > 0 && end < start) || (*step < 0 && end > start) {
                return Err(err(format!(
                    "loop bounds {start}..{end} step {step} never terminate or never run"
                )));
            }
            if var.0 as usize >= shader.regs.len() {
                return Err(err(format!("loop variable {var} not allocated")));
            }
            defined.insert(*var);
            // A loop body may execute zero times, so registers it defines are
            // conservatively NOT considered defined afterwards — except when
            // the trip count is statically at least one.
            let mut loop_defined = defined.clone();
            verify_body(shader, body, &mut loop_defined)?;
            let trips_at_least_once = (*step > 0 && start < end) || (*step < 0 && start > end);
            if trips_at_least_once {
                *defined = loop_defined;
            }
        }
        Stmt::Discard { .. } => {}
    }
    Ok(())
}

fn verify_operand(
    shader: &Shader,
    operand: &Operand,
    defined: &HashSet<Reg>,
) -> Result<(), VerifyError> {
    match operand {
        Operand::Reg(r) => {
            if r.0 as usize >= shader.regs.len() {
                return Err(err(format!("register {r} not allocated")));
            }
            if !defined.contains(r) {
                return Err(err(format!("register {r} used before definition")));
            }
        }
        Operand::Input(i) => {
            if *i >= shader.inputs.len() {
                return Err(err(format!("input index {i} out of range")));
            }
        }
        Operand::Uniform(u) => {
            if *u >= shader.uniforms.len() {
                return Err(err(format!("uniform index {u} out of range")));
            }
        }
        Operand::Const(_) => {}
    }
    Ok(())
}

/// Type of an operand when it can be determined locally.
pub fn operand_ty(shader: &Shader, operand: &Operand) -> Option<IrType> {
    match operand {
        Operand::Reg(r) => shader.regs.get(r.0 as usize).map(|i| i.ty),
        Operand::Const(c) => Some(c.ty()),
        Operand::Input(i) => shader.inputs.get(*i).map(|v| v.ty),
        Operand::Uniform(u) => shader.uniforms.get(*u).map(|v| v.ty),
    }
}

fn verify_op(
    shader: &Shader,
    dst: Reg,
    op: &Op,
    defined: &HashSet<Reg>,
) -> Result<(), VerifyError> {
    for operand in op.operands() {
        verify_operand(shader, operand, defined)?;
    }
    let dst_ty = shader.reg_ty(dst);
    match op {
        Op::Binary(bop, a, b) => {
            let at = operand_ty(shader, a);
            let bt = operand_ty(shader, b);
            if let (Some(at), Some(bt)) = (at, bt) {
                if at.width != bt.width {
                    return Err(err(format!(
                        "binary {bop:?} operand widths differ: {at} vs {bt}"
                    )));
                }
                if bop.is_comparison() || bop.is_logical() {
                    if !dst_ty.is_bool() {
                        return Err(err(format!(
                            "comparison/logical result must be bool, register {dst} is {dst_ty}"
                        )));
                    }
                } else if dst_ty.width != at.width {
                    return Err(err(format!(
                        "binary {bop:?} result width {} does not match register {dst} ({dst_ty})",
                        at.width
                    )));
                }
            }
        }
        Op::Extract { vector, index } => {
            if let Some(vt) = operand_ty(shader, vector) {
                if *index >= vt.width {
                    return Err(err(format!("extract index {index} out of range for {vt}")));
                }
            }
            if !dst_ty.is_scalar() {
                return Err(err(format!("extract result must be scalar, got {dst_ty}")));
            }
        }
        Op::Insert { vector, index, .. } => {
            if let Some(vt) = operand_ty(shader, vector) {
                if *index >= vt.width {
                    return Err(err(format!("insert index {index} out of range for {vt}")));
                }
                if dst_ty.width != vt.width {
                    return Err(err("insert result width must match vector operand"));
                }
            }
        }
        Op::Swizzle { vector, lanes } => {
            if lanes.is_empty() || lanes.len() > 4 {
                return Err(err("swizzle must select 1-4 lanes"));
            }
            if let Some(vt) = operand_ty(shader, vector) {
                for l in lanes {
                    if *l >= vt.width {
                        return Err(err(format!("swizzle lane {l} out of range for {vt}")));
                    }
                }
            }
            if dst_ty.width as usize != lanes.len() {
                return Err(err("swizzle result width must equal lane count"));
            }
        }
        Op::Construct { ty, parts } => {
            if parts.is_empty() {
                return Err(err("construct needs at least one part"));
            }
            if *ty != dst_ty {
                return Err(err(format!(
                    "construct type {ty} does not match destination {dst_ty}"
                )));
            }
            let total: u8 = parts
                .iter()
                .map(|p| operand_ty(shader, p).map(|t| t.width).unwrap_or(1))
                .sum();
            if parts.len() > 1 {
                if total != ty.width {
                    return Err(err(format!("construct of {ty} given {total} components")));
                }
            } else if total != ty.width && total != 1 {
                // A single part is either a same-width copy or a scalar
                // broadcast — a lone vec2 cannot build a vec4.
                return Err(err(format!(
                    "construct of {ty} from a single {total}-component part"
                )));
            }
        }
        Op::Splat { ty, value } => {
            if *ty != dst_ty {
                return Err(err("splat type must match destination"));
            }
            if let Some(vt) = operand_ty(shader, value) {
                if !vt.is_scalar() {
                    return Err(err("splat source must be scalar"));
                }
            }
        }
        Op::TextureSample { sampler, dim, .. } => {
            if *sampler >= shader.samplers.len() {
                return Err(err(format!("sampler index {sampler} out of range")));
            }
            if dim.sample_type() != dst_ty {
                return Err(err(format!(
                    "texture sample result should be {}, register is {dst_ty}",
                    dim.sample_type()
                )));
            }
        }
        Op::ConstArrayLoad { array, .. } => {
            let arr = shader
                .const_arrays
                .get(*array)
                .ok_or_else(|| err(format!("const array index {array} out of range")))?;
            if arr.elem_ty != dst_ty {
                return Err(err(format!(
                    "const array `{}` element type {} does not match register {dst_ty}",
                    arr.name, arr.elem_ty
                )));
            }
        }
        Op::Select {
            cond,
            if_true,
            if_false,
        } => {
            if let Some(ct) = operand_ty(shader, cond) {
                if !ct.is_bool() {
                    return Err(err("select condition must be bool"));
                }
            }
            let tt = operand_ty(shader, if_true);
            let ft = operand_ty(shader, if_false);
            if let (Some(tt), Some(ft)) = (tt, ft) {
                if tt.width != ft.width {
                    return Err(err("select arms must have equal widths"));
                }
            }
            // The result is one of the arms, so the destination must carry
            // whichever arm width is known.
            if let Some(at) = tt.or(ft) {
                if dst_ty.width != at.width {
                    return Err(err(format!(
                        "select arms have width {} but register {dst} is {dst_ty}",
                        at.width
                    )));
                }
            }
        }
        Op::Convert { to, .. } => {
            if *to != dst_ty {
                return Err(err("convert target type must match destination"));
            }
        }
        Op::Mov(src) => {
            // A move is a bit copy: the destination type must match the
            // source exactly (a retyped register cannot hide behind a Mov).
            if let Some(st) = operand_ty(shader, src) {
                if st != dst_ty {
                    return Err(err(format!(
                        "mov of {st} into register {dst} typed {dst_ty}"
                    )));
                }
            }
        }
        Op::Unary(uop, a) => {
            if let Some(at) = operand_ty(shader, a) {
                if at.width != dst_ty.width {
                    return Err(err(format!(
                        "unary {uop:?} operand is {at} but register {dst} is {dst_ty}"
                    )));
                }
                match uop {
                    crate::op::UnaryOp::Not => {
                        if !dst_ty.is_bool() || !at.is_bool() {
                            return Err(err("logical not requires bool operand and result"));
                        }
                    }
                    crate::op::UnaryOp::Neg => {
                        if dst_ty.is_bool() {
                            return Err(err("negation result cannot be bool"));
                        }
                    }
                }
            }
        }
        Op::Intrinsic(intr, args) => {
            let arity = intrinsic_arity(*intr);
            if args.len() != arity {
                return Err(err(format!(
                    "{} takes {arity} arguments, got {}",
                    intr.glsl_name(),
                    args.len()
                )));
            }
            use crate::op::Intrinsic as I;
            match intr {
                // Reductions produce a scalar whatever the operand width.
                I::Length | I::Distance | I::Dot if !dst_ty.is_scalar() => {
                    return Err(err(format!(
                        "{} result must be scalar, register {dst} is {dst_ty}",
                        intr.glsl_name()
                    )));
                }
                I::Cross if dst_ty.width != 3 => {
                    return Err(err(format!(
                        "cross result must be a 3-vector, register {dst} is {dst_ty}"
                    )));
                }
                I::Length | I::Distance | I::Dot | I::Cross => {}
                // Componentwise single-argument intrinsics preserve their
                // operand's width.
                I::Exp
                | I::Log
                | I::Sqrt
                | I::InverseSqrt
                | I::Sin
                | I::Cos
                | I::Abs
                | I::Sign
                | I::Floor
                | I::Fract
                | I::Normalize
                | I::DFdx
                | I::DFdy
                | I::Fwidth => {
                    if let Some(at) = operand_ty(shader, &args[0]) {
                        if at.width != dst_ty.width {
                            return Err(err(format!(
                                "{} of {at} cannot produce register {dst} typed {dst_ty}",
                                intr.glsl_name()
                            )));
                        }
                    }
                }
                // Multi-argument componentwise intrinsics allow scalar
                // broadcasting in some positions, so only arity is checked.
                _ => {}
            }
        }
    }
    Ok(())
}

/// Argument count of each intrinsic (the GLSL builtin signature).
fn intrinsic_arity(intr: crate::op::Intrinsic) -> usize {
    use crate::op::Intrinsic as I;
    match intr {
        I::Exp
        | I::Log
        | I::Sqrt
        | I::InverseSqrt
        | I::Sin
        | I::Cos
        | I::Abs
        | I::Sign
        | I::Floor
        | I::Fract
        | I::Length
        | I::Normalize
        | I::DFdx
        | I::DFdy
        | I::Fwidth => 1,
        I::Pow
        | I::Mod
        | I::Min
        | I::Max
        | I::Step
        | I::Distance
        | I::Dot
        | I::Cross
        | I::Reflect => 2,
        I::Clamp | I::Mix | I::Smoothstep | I::Refract => 3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::BinaryOp;
    use crate::shader::{OutputVar, SamplerVar};
    use crate::types::TextureDim;
    use crate::value::Constant;

    fn base_shader() -> Shader {
        let mut s = Shader::new("v");
        s.outputs.push(OutputVar {
            name: "fragColor".into(),
            ty: IrType::fvec(4),
        });
        s
    }

    #[test]
    fn accepts_simple_valid_shader() {
        let mut s = base_shader();
        let r = s.new_reg(IrType::fvec(4));
        s.body = vec![
            Stmt::Def {
                dst: r,
                op: Op::Splat {
                    ty: IrType::fvec(4),
                    value: Operand::float(1.0),
                },
            },
            Stmt::StoreOutput {
                output: 0,
                components: None,
                value: Operand::Reg(r),
            },
        ];
        assert!(verify(&s).is_ok());
    }

    #[test]
    fn rejects_use_before_def() {
        let mut s = base_shader();
        let r = s.new_reg(IrType::fvec(4));
        s.body = vec![Stmt::StoreOutput {
            output: 0,
            components: None,
            value: Operand::Reg(r),
        }];
        let e = verify(&s).unwrap_err();
        assert!(e.message.contains("before definition"));
    }

    #[test]
    fn rejects_width_mismatch() {
        let mut s = base_shader();
        let r = s.new_reg(IrType::fvec(4));
        s.body = vec![
            Stmt::Def {
                dst: r,
                op: Op::Binary(
                    BinaryOp::Add,
                    Operand::Const(Constant::FloatVec(vec![1.0, 2.0])),
                    Operand::float(3.0),
                ),
            },
            Stmt::StoreOutput {
                output: 0,
                components: None,
                value: Operand::Reg(r),
            },
        ];
        let e = verify(&s).unwrap_err();
        assert!(e.message.contains("widths differ"));
    }

    #[test]
    fn branch_local_register_does_not_escape() {
        let mut s = base_shader();
        let r = s.new_reg(IrType::fvec(4));
        s.body = vec![
            Stmt::If {
                cond: Operand::boolean(true),
                then_body: vec![Stmt::Def {
                    dst: r,
                    op: Op::Splat {
                        ty: IrType::fvec(4),
                        value: Operand::float(1.0),
                    },
                }],
                else_body: vec![],
            },
            Stmt::StoreOutput {
                output: 0,
                components: None,
                value: Operand::Reg(r),
            },
        ];
        assert!(verify(&s).is_err());
        // Defining it in both branches makes the use legal.
        let mut s2 = base_shader();
        let r2 = s2.new_reg(IrType::fvec(4));
        let mk = |v: f64| Stmt::Def {
            dst: r2,
            op: Op::Splat {
                ty: IrType::fvec(4),
                value: Operand::float(v),
            },
        };
        s2.body = vec![
            Stmt::If {
                cond: Operand::boolean(true),
                then_body: vec![mk(1.0)],
                else_body: vec![mk(0.0)],
            },
            Stmt::StoreOutput {
                output: 0,
                components: None,
                value: Operand::Reg(r2),
            },
        ];
        assert!(verify(&s2).is_ok());
    }

    #[test]
    fn rejects_bad_sampler_and_output_indices() {
        let mut s = base_shader();
        let r = s.new_reg(IrType::fvec(4));
        s.body = vec![Stmt::Def {
            dst: r,
            op: Op::TextureSample {
                sampler: 0,
                coords: Operand::fvec(vec![0.0, 0.0]),
                lod: None,
                dim: TextureDim::Dim2D,
            },
        }];
        assert!(verify(&s).is_err());
        s.samplers.push(SamplerVar {
            name: "tex".into(),
            dim: TextureDim::Dim2D,
        });
        assert!(verify(&s).is_ok());
        s.body.push(Stmt::StoreOutput {
            output: 3,
            components: None,
            value: Operand::Reg(r),
        });
        assert!(verify(&s).is_err());
    }

    #[test]
    fn rejects_zero_step_loop() {
        let mut s = base_shader();
        let i = s.new_reg(IrType::I32);
        s.body = vec![Stmt::Loop {
            var: i,
            start: 0,
            end: 4,
            step: 0,
            body: vec![],
        }];
        assert!(verify(&s).unwrap_err().message.contains("non-zero"));
    }

    #[test]
    fn loop_body_defs_visible_when_loop_always_runs() {
        let mut s = base_shader();
        let i = s.new_reg(IrType::I32);
        let r = s.new_reg(IrType::fvec(4));
        s.body = vec![
            Stmt::Loop {
                var: i,
                start: 0,
                end: 3,
                step: 1,
                body: vec![Stmt::Def {
                    dst: r,
                    op: Op::Splat {
                        ty: IrType::fvec(4),
                        value: Operand::float(1.0),
                    },
                }],
            },
            Stmt::StoreOutput {
                output: 0,
                components: None,
                value: Operand::Reg(r),
            },
        ];
        assert!(verify(&s).is_ok());
    }

    #[test]
    fn rejects_swizzle_out_of_range() {
        let mut s = base_shader();
        let v = s.new_reg(IrType::fvec(2));
        let w = s.new_reg(IrType::fvec(3));
        s.body = vec![
            Stmt::Def {
                dst: v,
                op: Op::Construct {
                    ty: IrType::fvec(2),
                    parts: vec![Operand::float(1.0), Operand::float(2.0)],
                },
            },
            Stmt::Def {
                dst: w,
                op: Op::Swizzle {
                    vector: Operand::Reg(v),
                    lanes: vec![0, 1, 2],
                },
            },
        ];
        assert!(verify(&s).unwrap_err().message.contains("out of range"));
    }
}
