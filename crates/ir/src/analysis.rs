//! Lightweight dataflow analyses over the structured IR.
//!
//! The passes in `prism-core` only propagate information about registers that
//! are *single-assignment* and whose definition structurally dominates the
//! use. In a structured IR, a definition dominates a use when the definition
//! appears earlier in the same statement list or in an enclosing list — this
//! module computes the supporting facts (definition counts, use counts, and
//! whether a register is defined inside a loop or conditional).

use crate::shader::Shader;
use crate::stmt::Stmt;
use crate::value::{Operand, Reg};
use std::collections::HashMap;

/// Per-register facts used to decide which optimizations are safe.
#[derive(Debug, Clone, Default)]
pub struct RegFacts {
    /// Number of `Def` statements targeting the register.
    pub def_count: usize,
    /// Number of operand uses of the register.
    pub use_count: usize,
    /// `true` if at least one definition is nested inside a loop body.
    pub defined_in_loop: bool,
    /// `true` if at least one definition is nested inside an `if` branch.
    pub defined_in_branch: bool,
}

impl RegFacts {
    /// A register is in SSA-like form when it has exactly one definition and
    /// that definition is not nested inside a loop or conditional.
    pub fn is_ssa(&self) -> bool {
        self.def_count == 1 && !self.defined_in_loop && !self.defined_in_branch
    }
}

/// Dataflow facts for a whole shader.
#[derive(Debug, Clone, Default)]
pub struct Analysis {
    facts: HashMap<Reg, RegFacts>,
}

impl Analysis {
    /// Computes definition/use facts for every register in the shader.
    pub fn of(shader: &Shader) -> Analysis {
        let mut a = Analysis::default();
        a.scan(&shader.body, false, false);
        a
    }

    fn scan(&mut self, body: &[Stmt], in_loop: bool, in_branch: bool) {
        for stmt in body {
            for operand in stmt.operands() {
                if let Operand::Reg(r) = operand {
                    self.facts.entry(*r).or_default().use_count += 1;
                }
            }
            match stmt {
                Stmt::Def { dst, .. } => {
                    let f = self.facts.entry(*dst).or_default();
                    f.def_count += 1;
                    f.defined_in_loop |= in_loop;
                    f.defined_in_branch |= in_branch;
                }
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    self.scan(then_body, in_loop, true);
                    self.scan(else_body, in_loop, true);
                }
                Stmt::Loop { var, body, .. } => {
                    // The induction variable counts as defined in the loop.
                    let f = self.facts.entry(*var).or_default();
                    f.def_count += 1;
                    f.defined_in_loop = true;
                    self.scan(body, true, in_branch);
                }
                _ => {}
            }
        }
    }

    /// Facts for one register (default-empty if never seen).
    pub fn facts(&self, reg: Reg) -> RegFacts {
        self.facts.get(&reg).cloned().unwrap_or_default()
    }

    /// `true` if the register has exactly one top-level definition (see
    /// [`RegFacts::is_ssa`]).
    pub fn is_ssa(&self, reg: Reg) -> bool {
        self.facts(reg).is_ssa()
    }

    /// `true` if the register is never used as an operand.
    pub fn is_unused(&self, reg: Reg) -> bool {
        self.facts(reg).use_count == 0
    }

    /// Number of uses of the register.
    pub fn use_count(&self, reg: Reg) -> usize {
        self.facts(reg).use_count
    }
}

/// Live range of one register in the linearised statement order: the
/// position of its first definition and the position of its last use (a
/// register that is never used dies at its definition). Positions are
/// pre-order statement indices; every statement — including the ones nested
/// in `if` and loop bodies — occupies one position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveRange {
    /// Linear position of the first definition.
    pub start: usize,
    /// Linear position of the last use (≥ `start`).
    pub end: usize,
    /// Lane count of the register's type (a `vec3` holds 3 lanes); the unit
    /// of the pressure estimate below.
    pub lanes: usize,
}

/// Live-range analysis over the structured IR: per-register intervals in a
/// linearised statement order plus the peak number of simultaneously live
/// registers and lanes — the static register-pressure estimate the
/// per-platform cost models consume.
///
/// Loops are handled conservatively: any register defined or used inside a
/// loop body is extended to the loop's last statement, because its value can
/// be carried across the back edge (accumulators) or is needed on every
/// iteration (loop-invariant operands). This over-approximates pressure,
/// never under-approximates it, which is the safe direction for an estimate
/// that feeds occupancy penalties.
#[derive(Debug, Clone, Default)]
pub struct Liveness {
    ranges: HashMap<Reg, LiveRange>,
    peak_regs: usize,
    peak_lanes: usize,
}

impl Liveness {
    /// Computes live ranges and peak pressure for every register.
    pub fn of(shader: &Shader) -> Liveness {
        let mut lv = Liveness::default();
        let mut pos = 0usize;
        lv.scan(shader, &shader.body, &mut pos);
        lv.sweep();
        lv
    }

    fn scan(&mut self, shader: &Shader, body: &[Stmt], pos: &mut usize) {
        for stmt in body {
            let here = *pos;
            *pos += 1;
            for operand in stmt.operands() {
                if let Operand::Reg(r) = operand {
                    self.touch_use(shader, *r, here);
                }
            }
            match stmt {
                Stmt::Def { dst, .. } => self.touch_def(shader, *dst, here),
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    self.scan(shader, then_body, pos);
                    self.scan(shader, else_body, pos);
                }
                Stmt::Loop { var, body, .. } => {
                    self.touch_def(shader, *var, here);
                    let body_start = *pos;
                    self.scan(shader, body, pos);
                    let loop_end = pos.saturating_sub(1).max(here);
                    // Everything touched inside the loop (and the induction
                    // variable) lives until the loop's last statement.
                    for range in self.ranges.values_mut() {
                        if range.end >= body_start || range.start == here {
                            range.end = range.end.max(loop_end);
                        }
                    }
                    if let Some(range) = self.ranges.get_mut(var) {
                        range.end = range.end.max(loop_end);
                    }
                }
                _ => {}
            }
        }
    }

    fn touch_def(&mut self, shader: &Shader, reg: Reg, pos: usize) {
        let lanes = shader.reg_ty(reg).width as usize;
        self.ranges
            .entry(reg)
            .and_modify(|r| r.end = r.end.max(pos))
            .or_insert(LiveRange {
                start: pos,
                end: pos,
                lanes,
            });
    }

    fn touch_use(&mut self, shader: &Shader, reg: Reg, pos: usize) {
        // A use before any recorded def (verifier-rejected IR, or a
        // conservative caller) still gets an interval so pressure never
        // undercounts.
        self.touch_def(shader, reg, pos);
    }

    /// Computes the peak overlap once every interval is final.
    fn sweep(&mut self) {
        let mut events: Vec<(usize, isize, isize)> = Vec::with_capacity(self.ranges.len() * 2);
        for range in self.ranges.values() {
            events.push((range.start, 1, range.lanes as isize));
            events.push((range.end + 1, -1, -(range.lanes as isize)));
        }
        // Ends sort before starts at the same position via the signed delta:
        // a register dying at position p is not live simultaneously with one
        // born at p + 1, but two ranges meeting *at* p do overlap there.
        events.sort_unstable();
        let (mut regs, mut lanes) = (0isize, 0isize);
        for (_, dr, dl) in events {
            regs += dr;
            lanes += dl;
            self.peak_regs = self.peak_regs.max(regs as usize);
            self.peak_lanes = self.peak_lanes.max(lanes as usize);
        }
    }

    /// The live range of one register, if it appears in the shader at all.
    pub fn range(&self, reg: Reg) -> Option<LiveRange> {
        self.ranges.get(&reg).copied()
    }

    /// Peak number of simultaneously live registers.
    pub fn peak_regs(&self) -> usize {
        self.peak_regs
    }

    /// Peak number of simultaneously live *lanes* (width-weighted registers):
    /// the scalar-register pressure on a scalar-ALU architecture.
    pub fn peak_lanes(&self) -> usize {
        self.peak_lanes
    }

    /// Number of distinct registers that are live anywhere.
    pub fn live_regs(&self) -> usize {
        self.ranges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;
    use crate::types::IrType;
    use crate::value::Operand;

    fn def(dst: Reg, op: Op) -> Stmt {
        Stmt::Def { dst, op }
    }

    #[test]
    fn counts_defs_and_uses() {
        let mut s = Shader::new("a");
        let r0 = s.new_reg(IrType::F32);
        let r1 = s.new_reg(IrType::F32);
        s.body = vec![
            def(r0, Op::Mov(Operand::float(1.0))),
            def(r1, Op::Mov(Operand::Reg(r0))),
            Stmt::StoreOutput {
                output: 0,
                components: None,
                value: Operand::Reg(r1),
            },
        ];
        let a = Analysis::of(&s);
        assert!(a.is_ssa(r0));
        assert!(a.is_ssa(r1));
        assert_eq!(a.use_count(r0), 1);
        assert_eq!(a.use_count(r1), 1);
        assert!(!a.is_unused(r0));
    }

    #[test]
    fn register_defined_in_branch_is_not_ssa() {
        let mut s = Shader::new("b");
        let r0 = s.new_reg(IrType::F32);
        s.body = vec![Stmt::If {
            cond: Operand::boolean(true),
            then_body: vec![def(r0, Op::Mov(Operand::float(1.0)))],
            else_body: vec![def(r0, Op::Mov(Operand::float(2.0)))],
        }];
        let a = Analysis::of(&s);
        assert!(!a.is_ssa(r0));
        assert_eq!(a.facts(r0).def_count, 2);
        assert!(a.facts(r0).defined_in_branch);
    }

    #[test]
    fn loop_induction_variable_is_loop_defined() {
        let mut s = Shader::new("c");
        let i = s.new_reg(IrType::I32);
        let acc = s.new_reg(IrType::F32);
        s.body = vec![
            def(acc, Op::Mov(Operand::float(0.0))),
            Stmt::Loop {
                var: i,
                start: 0,
                end: 9,
                step: 1,
                body: vec![def(acc, Op::Mov(Operand::Reg(i)))],
            },
        ];
        let a = Analysis::of(&s);
        assert!(a.facts(i).defined_in_loop);
        assert!(!a.is_ssa(acc));
        assert_eq!(a.facts(acc).def_count, 2);
    }

    #[test]
    fn unused_register_detected() {
        let mut s = Shader::new("d");
        let r = s.new_reg(IrType::F32);
        s.body = vec![def(r, Op::Mov(Operand::float(1.0)))];
        let a = Analysis::of(&s);
        assert!(a.is_unused(r));
    }

    #[test]
    fn liveness_tracks_ranges_and_peak_pressure() {
        // r0 (vec4) lives across r1's definition, so the peak is
        // 2 registers / 5 lanes; r1 (scalar) dies feeding the store.
        let mut s = Shader::new("lv");
        let r0 = s.new_reg(IrType::fvec(4));
        let r1 = s.new_reg(IrType::F32);
        s.body = vec![
            def(
                r0,
                Op::Splat {
                    ty: IrType::fvec(4),
                    value: Operand::float(1.0),
                },
            ),
            def(
                r1,
                Op::Extract {
                    vector: Operand::Reg(r0),
                    index: 0,
                },
            ),
            Stmt::StoreOutput {
                output: 0,
                components: Some(vec![0]),
                value: Operand::Reg(r1),
            },
        ];
        let lv = Liveness::of(&s);
        assert_eq!(
            lv.range(r0),
            Some(LiveRange {
                start: 0,
                end: 1,
                lanes: 4
            })
        );
        assert_eq!(
            lv.range(r1),
            Some(LiveRange {
                start: 1,
                end: 2,
                lanes: 1
            })
        );
        assert_eq!(lv.peak_regs(), 2);
        assert_eq!(lv.peak_lanes(), 5);
        assert_eq!(lv.live_regs(), 2);
    }

    #[test]
    fn liveness_extends_loop_carried_registers_to_the_loop_end() {
        // The accumulator is written before the loop and updated inside it:
        // it must stay live through the loop's last statement, overlapping
        // the scratch register defined in the body.
        let mut s = Shader::new("lv-loop");
        let i = s.new_reg(IrType::I32);
        let acc = s.new_reg(IrType::F32);
        let scratch = s.new_reg(IrType::F32);
        s.body = vec![
            def(acc, Op::Mov(Operand::float(0.0))),
            Stmt::Loop {
                var: i,
                start: 0,
                end: 4,
                step: 1,
                body: vec![
                    def(
                        scratch,
                        Op::Convert {
                            to: IrType::F32,
                            value: Operand::Reg(i),
                        },
                    ),
                    def(
                        acc,
                        Op::Binary(
                            crate::op::BinaryOp::Add,
                            Operand::Reg(acc),
                            Operand::Reg(scratch),
                        ),
                    ),
                ],
            },
            Stmt::StoreOutput {
                output: 0,
                components: Some(vec![0]),
                value: Operand::Reg(acc),
            },
        ];
        let lv = Liveness::of(&s);
        let acc_range = lv.range(acc).unwrap();
        assert_eq!(acc_range.start, 0);
        assert_eq!(acc_range.end, 4, "accumulator must live past the loop");
        let scratch_range = lv.range(scratch).unwrap();
        assert_eq!(
            scratch_range.end, 3,
            "loop-body scratch lives to the loop's last statement"
        );
        // i + acc + scratch all overlap inside the body.
        assert_eq!(lv.peak_regs(), 3);
    }
}
