//! Lightweight dataflow analyses over the structured IR.
//!
//! The passes in `prism-core` only propagate information about registers that
//! are *single-assignment* and whose definition structurally dominates the
//! use. In a structured IR, a definition dominates a use when the definition
//! appears earlier in the same statement list or in an enclosing list — this
//! module computes the supporting facts (definition counts, use counts, and
//! whether a register is defined inside a loop or conditional).

use crate::shader::Shader;
use crate::stmt::Stmt;
use crate::value::{Operand, Reg};
use std::collections::HashMap;

/// Per-register facts used to decide which optimizations are safe.
#[derive(Debug, Clone, Default)]
pub struct RegFacts {
    /// Number of `Def` statements targeting the register.
    pub def_count: usize,
    /// Number of operand uses of the register.
    pub use_count: usize,
    /// `true` if at least one definition is nested inside a loop body.
    pub defined_in_loop: bool,
    /// `true` if at least one definition is nested inside an `if` branch.
    pub defined_in_branch: bool,
}

impl RegFacts {
    /// A register is in SSA-like form when it has exactly one definition and
    /// that definition is not nested inside a loop or conditional.
    pub fn is_ssa(&self) -> bool {
        self.def_count == 1 && !self.defined_in_loop && !self.defined_in_branch
    }
}

/// Dataflow facts for a whole shader.
#[derive(Debug, Clone, Default)]
pub struct Analysis {
    facts: HashMap<Reg, RegFacts>,
}

impl Analysis {
    /// Computes definition/use facts for every register in the shader.
    pub fn of(shader: &Shader) -> Analysis {
        let mut a = Analysis::default();
        a.scan(&shader.body, false, false);
        a
    }

    fn scan(&mut self, body: &[Stmt], in_loop: bool, in_branch: bool) {
        for stmt in body {
            for operand in stmt.operands() {
                if let Operand::Reg(r) = operand {
                    self.facts.entry(*r).or_default().use_count += 1;
                }
            }
            match stmt {
                Stmt::Def { dst, .. } => {
                    let f = self.facts.entry(*dst).or_default();
                    f.def_count += 1;
                    f.defined_in_loop |= in_loop;
                    f.defined_in_branch |= in_branch;
                }
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => {
                    self.scan(then_body, in_loop, true);
                    self.scan(else_body, in_loop, true);
                }
                Stmt::Loop { var, body, .. } => {
                    // The induction variable counts as defined in the loop.
                    let f = self.facts.entry(*var).or_default();
                    f.def_count += 1;
                    f.defined_in_loop = true;
                    self.scan(body, true, in_branch);
                }
                _ => {}
            }
        }
    }

    /// Facts for one register (default-empty if never seen).
    pub fn facts(&self, reg: Reg) -> RegFacts {
        self.facts.get(&reg).cloned().unwrap_or_default()
    }

    /// `true` if the register has exactly one top-level definition (see
    /// [`RegFacts::is_ssa`]).
    pub fn is_ssa(&self, reg: Reg) -> bool {
        self.facts(reg).is_ssa()
    }

    /// `true` if the register is never used as an operand.
    pub fn is_unused(&self, reg: Reg) -> bool {
        self.facts(reg).use_count == 0
    }

    /// Number of uses of the register.
    pub fn use_count(&self, reg: Reg) -> usize {
        self.facts(reg).use_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;
    use crate::types::IrType;
    use crate::value::Operand;

    fn def(dst: Reg, op: Op) -> Stmt {
        Stmt::Def { dst, op }
    }

    #[test]
    fn counts_defs_and_uses() {
        let mut s = Shader::new("a");
        let r0 = s.new_reg(IrType::F32);
        let r1 = s.new_reg(IrType::F32);
        s.body = vec![
            def(r0, Op::Mov(Operand::float(1.0))),
            def(r1, Op::Mov(Operand::Reg(r0))),
            Stmt::StoreOutput {
                output: 0,
                components: None,
                value: Operand::Reg(r1),
            },
        ];
        let a = Analysis::of(&s);
        assert!(a.is_ssa(r0));
        assert!(a.is_ssa(r1));
        assert_eq!(a.use_count(r0), 1);
        assert_eq!(a.use_count(r1), 1);
        assert!(!a.is_unused(r0));
    }

    #[test]
    fn register_defined_in_branch_is_not_ssa() {
        let mut s = Shader::new("b");
        let r0 = s.new_reg(IrType::F32);
        s.body = vec![Stmt::If {
            cond: Operand::boolean(true),
            then_body: vec![def(r0, Op::Mov(Operand::float(1.0)))],
            else_body: vec![def(r0, Op::Mov(Operand::float(2.0)))],
        }];
        let a = Analysis::of(&s);
        assert!(!a.is_ssa(r0));
        assert_eq!(a.facts(r0).def_count, 2);
        assert!(a.facts(r0).defined_in_branch);
    }

    #[test]
    fn loop_induction_variable_is_loop_defined() {
        let mut s = Shader::new("c");
        let i = s.new_reg(IrType::I32);
        let acc = s.new_reg(IrType::F32);
        s.body = vec![
            def(acc, Op::Mov(Operand::float(0.0))),
            Stmt::Loop {
                var: i,
                start: 0,
                end: 9,
                step: 1,
                body: vec![def(acc, Op::Mov(Operand::Reg(i)))],
            },
        ];
        let a = Analysis::of(&s);
        assert!(a.facts(i).defined_in_loop);
        assert!(!a.is_ssa(acc));
        assert_eq!(a.facts(acc).def_count, 2);
    }

    #[test]
    fn unused_register_detected() {
        let mut s = Shader::new("d");
        let r = s.new_reg(IrType::F32);
        s.body = vec![def(r, Op::Mov(Operand::float(1.0)))];
        let a = Analysis::of(&s);
        assert!(a.is_unused(r));
    }
}
