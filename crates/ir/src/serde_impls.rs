//! Serialisation of the IR through the vendored `serde` data model.
//!
//! The warm-start persistence layer ([`prism_core::cache::persist`] in the
//! core crate) snapshots cached IR exemplars to disk, so every IR type gets a
//! [`Serialize`]/[`Deserialize`] impl here. Two encoding rules keep the round
//! trip *bit-exact* — the persisted cache must confirm structural equality
//! against live IR, so a single drifted float would silently degrade every
//! warm lookup into a miss:
//!
//! * **Floats are strings.** The vendored JSON writer stores numbers as
//!   `f64` and prints integral values as integers, which cannot distinguish
//!   `-0.0` from `0.0` or survive non-finite values. Every `f64` in the IR is
//!   therefore encoded as its shortest-round-trip `Display` string (Rust
//!   guarantees `format!("{v}").parse::<f64>()` reproduces the value
//!   bit-for-bit for all finite floats, and `-0`, `inf`, `NaN` all parse
//!   back).
//! * **64-bit integers are strings.** `Value::Num` is an `f64`, which is
//!   lossy above 2^53; loop bounds and integer constants are `i64`/`u64`, so
//!   they are written as decimal strings.
//!
//! Enums are encoded as single-key objects (`{"variant": payload}`) or bare
//! strings for unit variants. Unknown variants or malformed payloads return
//! `Err`, never panic — the persistence layer treats any error as a cold
//! shard.

use crate::op::{BinaryOp, Intrinsic, Op, UnaryOp};
use crate::shader::{ConstArray, InputVar, OutputVar, RegInfo, SamplerVar, Shader, UniformVar};
use crate::stmt::Stmt;
use crate::types::{IrType, Scalar, TextureDim};
use crate::value::{Constant, Operand, Reg};
use serde::{Deserialize, Serialize, Value};

/// Encodes an `f64` as a bit-faithful decimal string (see module docs).
fn f64_to_value(v: f64) -> Value {
    Value::Str(format!("{v}"))
}

/// Decodes an `f64` written by [`f64_to_value`].
fn f64_from_value(v: &Value) -> Result<f64, String> {
    match v {
        Value::Str(s) => s
            .parse::<f64>()
            .map_err(|_| format!("invalid float literal `{s}`")),
        other => Err(format!("expected float string, got {other:?}")),
    }
}

/// Decodes a decimal-string integer of any primitive width.
fn int_from_value<T: std::str::FromStr>(v: &Value, what: &str) -> Result<T, String> {
    match v {
        Value::Str(s) => s
            .parse::<T>()
            .map_err(|_| format!("invalid {what} literal `{s}`")),
        other => Err(format!("expected {what} string, got {other:?}")),
    }
}

/// Builds a single-key object `{tag: payload}` — the enum-variant encoding.
fn tagged(tag: &str, payload: Value) -> Value {
    Value::Obj(vec![(tag.to_string(), payload)])
}

/// Splits a single-key object back into `(tag, payload)`.
fn untag(v: &Value) -> Result<(&str, &Value), String> {
    match v {
        Value::Obj(fields) if fields.len() == 1 => Ok((fields[0].0.as_str(), &fields[0].1)),
        other => Err(format!("expected single-key variant object, got {other:?}")),
    }
}

/// Looks up a required object field.
fn field<'a>(v: &'a Value, name: &str) -> Result<&'a Value, String> {
    v.get(name).ok_or_else(|| format!("missing field `{name}`"))
}

impl Serialize for Scalar {
    fn to_value(&self) -> Value {
        Value::Str(
            match self {
                Scalar::F32 => "f32",
                Scalar::I32 => "i32",
                Scalar::U32 => "u32",
                Scalar::Bool => "bool",
            }
            .to_string(),
        )
    }
}

impl Deserialize for Scalar {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Str(s) => match s.as_str() {
                "f32" => Ok(Scalar::F32),
                "i32" => Ok(Scalar::I32),
                "u32" => Ok(Scalar::U32),
                "bool" => Ok(Scalar::Bool),
                other => Err(format!("unknown scalar kind `{other}`")),
            },
            other => Err(format!("expected scalar string, got {other:?}")),
        }
    }
}

impl Serialize for IrType {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("scalar".to_string(), self.scalar.to_value()),
            ("width".to_string(), Value::Num(self.width as f64)),
        ])
    }
}

impl Deserialize for IrType {
    fn from_value(v: &Value) -> Result<Self, String> {
        let scalar = Scalar::from_value(field(v, "scalar")?)?;
        let width = u8::from_value(field(v, "width")?)?;
        if !(1..=4).contains(&width) {
            return Err(format!("vector width {width} out of range 1..=4"));
        }
        Ok(IrType { scalar, width })
    }
}

impl Serialize for TextureDim {
    fn to_value(&self) -> Value {
        Value::Str(
            match self {
                TextureDim::Dim2D => "2d",
                TextureDim::Dim3D => "3d",
                TextureDim::Cube => "cube",
                TextureDim::Shadow2D => "shadow2d",
                TextureDim::Array2D => "array2d",
            }
            .to_string(),
        )
    }
}

impl Deserialize for TextureDim {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Str(s) => match s.as_str() {
                "2d" => Ok(TextureDim::Dim2D),
                "3d" => Ok(TextureDim::Dim3D),
                "cube" => Ok(TextureDim::Cube),
                "shadow2d" => Ok(TextureDim::Shadow2D),
                "array2d" => Ok(TextureDim::Array2D),
                other => Err(format!("unknown texture dimension `{other}`")),
            },
            other => Err(format!("expected texture dimension string, got {other:?}")),
        }
    }
}

impl Serialize for Reg {
    fn to_value(&self) -> Value {
        Value::Num(self.0 as f64)
    }
}

impl Deserialize for Reg {
    fn from_value(v: &Value) -> Result<Self, String> {
        u32::from_value(v).map(Reg)
    }
}

impl Serialize for Constant {
    fn to_value(&self) -> Value {
        match self {
            Constant::Float(v) => tagged("float", f64_to_value(*v)),
            Constant::Int(v) => tagged("int", Value::Str(v.to_string())),
            Constant::Uint(v) => tagged("uint", Value::Str(v.to_string())),
            Constant::Bool(b) => tagged("bool", Value::Bool(*b)),
            Constant::FloatVec(lanes) => tagged(
                "fvec",
                Value::Arr(lanes.iter().map(|v| f64_to_value(*v)).collect()),
            ),
        }
    }
}

impl Deserialize for Constant {
    fn from_value(v: &Value) -> Result<Self, String> {
        let (tag, payload) = untag(v)?;
        match tag {
            "float" => Ok(Constant::Float(f64_from_value(payload)?)),
            "int" => Ok(Constant::Int(int_from_value(payload, "i64")?)),
            "uint" => Ok(Constant::Uint(int_from_value(payload, "u64")?)),
            "bool" => Ok(Constant::Bool(bool::from_value(payload)?)),
            "fvec" => match payload {
                Value::Arr(items) => Ok(Constant::FloatVec(
                    items.iter().map(f64_from_value).collect::<Result<_, _>>()?,
                )),
                other => Err(format!("expected float-vector array, got {other:?}")),
            },
            other => Err(format!("unknown constant variant `{other}`")),
        }
    }
}

impl Serialize for Operand {
    fn to_value(&self) -> Value {
        match self {
            Operand::Reg(r) => tagged("reg", r.to_value()),
            Operand::Const(c) => tagged("const", c.to_value()),
            Operand::Input(i) => tagged("input", Value::Num(*i as f64)),
            Operand::Uniform(u) => tagged("uniform", Value::Num(*u as f64)),
        }
    }
}

impl Deserialize for Operand {
    fn from_value(v: &Value) -> Result<Self, String> {
        let (tag, payload) = untag(v)?;
        match tag {
            "reg" => Ok(Operand::Reg(Reg::from_value(payload)?)),
            "const" => Ok(Operand::Const(Constant::from_value(payload)?)),
            "input" => Ok(Operand::Input(usize::from_value(payload)?)),
            "uniform" => Ok(Operand::Uniform(usize::from_value(payload)?)),
            other => Err(format!("unknown operand variant `{other}`")),
        }
    }
}

impl Serialize for BinaryOp {
    fn to_value(&self) -> Value {
        Value::Str(self.symbol().to_string())
    }
}

impl Deserialize for BinaryOp {
    fn from_value(v: &Value) -> Result<Self, String> {
        const ALL: [BinaryOp; 13] = [
            BinaryOp::Add,
            BinaryOp::Sub,
            BinaryOp::Mul,
            BinaryOp::Div,
            BinaryOp::Mod,
            BinaryOp::Eq,
            BinaryOp::Ne,
            BinaryOp::Lt,
            BinaryOp::Le,
            BinaryOp::Gt,
            BinaryOp::Ge,
            BinaryOp::And,
            BinaryOp::Or,
        ];
        match v {
            Value::Str(s) => ALL
                .into_iter()
                .find(|op| op.symbol() == s)
                .ok_or_else(|| format!("unknown binary operator `{s}`")),
            other => Err(format!("expected binary-operator string, got {other:?}")),
        }
    }
}

impl Serialize for UnaryOp {
    fn to_value(&self) -> Value {
        Value::Str(
            match self {
                UnaryOp::Neg => "neg",
                UnaryOp::Not => "not",
            }
            .to_string(),
        )
    }
}

impl Deserialize for UnaryOp {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Str(s) => match s.as_str() {
                "neg" => Ok(UnaryOp::Neg),
                "not" => Ok(UnaryOp::Not),
                other => Err(format!("unknown unary operator `{other}`")),
            },
            other => Err(format!("expected unary-operator string, got {other:?}")),
        }
    }
}

impl Serialize for Intrinsic {
    fn to_value(&self) -> Value {
        // `glsl_name` / `from_glsl_name` round-trip for every canonical name
        // (asserted by the op module's tests), so the GLSL spelling doubles as
        // the serialised form.
        Value::Str(self.glsl_name().to_string())
    }
}

impl Deserialize for Intrinsic {
    fn from_value(v: &Value) -> Result<Self, String> {
        match v {
            Value::Str(s) => {
                Intrinsic::from_glsl_name(s).ok_or_else(|| format!("unknown intrinsic `{s}`"))
            }
            other => Err(format!("expected intrinsic string, got {other:?}")),
        }
    }
}

impl Serialize for Op {
    fn to_value(&self) -> Value {
        match self {
            Op::Mov(a) => tagged("mov", a.to_value()),
            Op::Binary(op, a, b) => tagged(
                "bin",
                Value::Obj(vec![
                    ("op".to_string(), op.to_value()),
                    ("a".to_string(), a.to_value()),
                    ("b".to_string(), b.to_value()),
                ]),
            ),
            Op::Unary(op, a) => tagged(
                "un",
                Value::Obj(vec![
                    ("op".to_string(), op.to_value()),
                    ("a".to_string(), a.to_value()),
                ]),
            ),
            Op::Intrinsic(i, args) => tagged(
                "call",
                Value::Obj(vec![
                    ("f".to_string(), i.to_value()),
                    ("args".to_string(), args.to_value()),
                ]),
            ),
            Op::TextureSample {
                sampler,
                coords,
                lod,
                dim,
            } => tagged(
                "tex",
                Value::Obj(vec![
                    ("sampler".to_string(), Value::Num(*sampler as f64)),
                    ("coords".to_string(), coords.to_value()),
                    ("lod".to_string(), lod.to_value()),
                    ("dim".to_string(), dim.to_value()),
                ]),
            ),
            Op::Construct { ty, parts } => tagged(
                "ctor",
                Value::Obj(vec![
                    ("ty".to_string(), ty.to_value()),
                    ("parts".to_string(), parts.to_value()),
                ]),
            ),
            Op::Splat { ty, value } => tagged(
                "splat",
                Value::Obj(vec![
                    ("ty".to_string(), ty.to_value()),
                    ("value".to_string(), value.to_value()),
                ]),
            ),
            Op::Extract { vector, index } => tagged(
                "ext",
                Value::Obj(vec![
                    ("vector".to_string(), vector.to_value()),
                    ("index".to_string(), Value::Num(*index as f64)),
                ]),
            ),
            Op::Insert {
                vector,
                index,
                value,
            } => tagged(
                "ins",
                Value::Obj(vec![
                    ("vector".to_string(), vector.to_value()),
                    ("index".to_string(), Value::Num(*index as f64)),
                    ("value".to_string(), value.to_value()),
                ]),
            ),
            Op::Swizzle { vector, lanes } => tagged(
                "swz",
                Value::Obj(vec![
                    ("vector".to_string(), vector.to_value()),
                    ("lanes".to_string(), lanes.to_value()),
                ]),
            ),
            Op::Select {
                cond,
                if_true,
                if_false,
            } => tagged(
                "sel",
                Value::Obj(vec![
                    ("cond".to_string(), cond.to_value()),
                    ("if_true".to_string(), if_true.to_value()),
                    ("if_false".to_string(), if_false.to_value()),
                ]),
            ),
            Op::ConstArrayLoad { array, index } => tagged(
                "cal",
                Value::Obj(vec![
                    ("array".to_string(), Value::Num(*array as f64)),
                    ("index".to_string(), index.to_value()),
                ]),
            ),
            Op::Convert { to, value } => tagged(
                "cvt",
                Value::Obj(vec![
                    ("to".to_string(), to.to_value()),
                    ("value".to_string(), value.to_value()),
                ]),
            ),
        }
    }
}

impl Deserialize for Op {
    fn from_value(v: &Value) -> Result<Self, String> {
        let (tag, p) = untag(v)?;
        match tag {
            "mov" => Ok(Op::Mov(Operand::from_value(p)?)),
            "bin" => Ok(Op::Binary(
                BinaryOp::from_value(field(p, "op")?)?,
                Operand::from_value(field(p, "a")?)?,
                Operand::from_value(field(p, "b")?)?,
            )),
            "un" => Ok(Op::Unary(
                UnaryOp::from_value(field(p, "op")?)?,
                Operand::from_value(field(p, "a")?)?,
            )),
            "call" => Ok(Op::Intrinsic(
                Intrinsic::from_value(field(p, "f")?)?,
                Vec::from_value(field(p, "args")?)?,
            )),
            "tex" => Ok(Op::TextureSample {
                sampler: usize::from_value(field(p, "sampler")?)?,
                coords: Operand::from_value(field(p, "coords")?)?,
                lod: Option::from_value(field(p, "lod")?)?,
                dim: TextureDim::from_value(field(p, "dim")?)?,
            }),
            "ctor" => Ok(Op::Construct {
                ty: IrType::from_value(field(p, "ty")?)?,
                parts: Vec::from_value(field(p, "parts")?)?,
            }),
            "splat" => Ok(Op::Splat {
                ty: IrType::from_value(field(p, "ty")?)?,
                value: Operand::from_value(field(p, "value")?)?,
            }),
            "ext" => Ok(Op::Extract {
                vector: Operand::from_value(field(p, "vector")?)?,
                index: u8::from_value(field(p, "index")?)?,
            }),
            "ins" => Ok(Op::Insert {
                vector: Operand::from_value(field(p, "vector")?)?,
                index: u8::from_value(field(p, "index")?)?,
                value: Operand::from_value(field(p, "value")?)?,
            }),
            "swz" => Ok(Op::Swizzle {
                vector: Operand::from_value(field(p, "vector")?)?,
                lanes: Vec::from_value(field(p, "lanes")?)?,
            }),
            "sel" => Ok(Op::Select {
                cond: Operand::from_value(field(p, "cond")?)?,
                if_true: Operand::from_value(field(p, "if_true")?)?,
                if_false: Operand::from_value(field(p, "if_false")?)?,
            }),
            "cal" => Ok(Op::ConstArrayLoad {
                array: usize::from_value(field(p, "array")?)?,
                index: Operand::from_value(field(p, "index")?)?,
            }),
            "cvt" => Ok(Op::Convert {
                to: IrType::from_value(field(p, "to")?)?,
                value: Operand::from_value(field(p, "value")?)?,
            }),
            other => Err(format!("unknown op variant `{other}`")),
        }
    }
}

impl Serialize for Stmt {
    fn to_value(&self) -> Value {
        match self {
            Stmt::Def { dst, op } => tagged(
                "def",
                Value::Obj(vec![
                    ("dst".to_string(), dst.to_value()),
                    ("op".to_string(), op.to_value()),
                ]),
            ),
            Stmt::StoreOutput {
                output,
                components,
                value,
            } => tagged(
                "store",
                Value::Obj(vec![
                    ("output".to_string(), Value::Num(*output as f64)),
                    ("components".to_string(), components.to_value()),
                    ("value".to_string(), value.to_value()),
                ]),
            ),
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => tagged(
                "if",
                Value::Obj(vec![
                    ("cond".to_string(), cond.to_value()),
                    ("then".to_string(), then_body.to_value()),
                    ("else".to_string(), else_body.to_value()),
                ]),
            ),
            Stmt::Loop {
                var,
                start,
                end,
                step,
                body,
            } => tagged(
                "loop",
                Value::Obj(vec![
                    ("var".to_string(), var.to_value()),
                    ("start".to_string(), Value::Str(start.to_string())),
                    ("end".to_string(), Value::Str(end.to_string())),
                    ("step".to_string(), Value::Str(step.to_string())),
                    ("body".to_string(), body.to_value()),
                ]),
            ),
            Stmt::Discard { cond } => tagged("discard", cond.to_value()),
        }
    }
}

impl Deserialize for Stmt {
    fn from_value(v: &Value) -> Result<Self, String> {
        let (tag, p) = untag(v)?;
        match tag {
            "def" => Ok(Stmt::Def {
                dst: Reg::from_value(field(p, "dst")?)?,
                op: Op::from_value(field(p, "op")?)?,
            }),
            "store" => Ok(Stmt::StoreOutput {
                output: usize::from_value(field(p, "output")?)?,
                components: Option::from_value(field(p, "components")?)?,
                value: Operand::from_value(field(p, "value")?)?,
            }),
            "if" => Ok(Stmt::If {
                cond: Operand::from_value(field(p, "cond")?)?,
                then_body: Vec::from_value(field(p, "then")?)?,
                else_body: Vec::from_value(field(p, "else")?)?,
            }),
            "loop" => Ok(Stmt::Loop {
                var: Reg::from_value(field(p, "var")?)?,
                start: int_from_value(field(p, "start")?, "i64")?,
                end: int_from_value(field(p, "end")?, "i64")?,
                step: int_from_value(field(p, "step")?, "i64")?,
                body: Vec::from_value(field(p, "body")?)?,
            }),
            "discard" => Ok(Stmt::Discard {
                cond: Option::from_value(p)?,
            }),
            other => Err(format!("unknown statement variant `{other}`")),
        }
    }
}

impl Serialize for InputVar {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("name".to_string(), self.name.to_value()),
            ("ty".to_string(), self.ty.to_value()),
        ])
    }
}

impl Deserialize for InputVar {
    fn from_value(v: &Value) -> Result<Self, String> {
        Ok(InputVar {
            name: String::from_value(field(v, "name")?)?,
            ty: IrType::from_value(field(v, "ty")?)?,
        })
    }
}

impl Serialize for OutputVar {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("name".to_string(), self.name.to_value()),
            ("ty".to_string(), self.ty.to_value()),
        ])
    }
}

impl Deserialize for OutputVar {
    fn from_value(v: &Value) -> Result<Self, String> {
        Ok(OutputVar {
            name: String::from_value(field(v, "name")?)?,
            ty: IrType::from_value(field(v, "ty")?)?,
        })
    }
}

impl Serialize for UniformVar {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("name".to_string(), self.name.to_value()),
            ("ty".to_string(), self.ty.to_value()),
            ("slot".to_string(), Value::Num(self.slot as f64)),
            ("original".to_string(), self.original.to_value()),
        ])
    }
}

impl Deserialize for UniformVar {
    fn from_value(v: &Value) -> Result<Self, String> {
        Ok(UniformVar {
            name: String::from_value(field(v, "name")?)?,
            ty: IrType::from_value(field(v, "ty")?)?,
            slot: usize::from_value(field(v, "slot")?)?,
            original: String::from_value(field(v, "original")?)?,
        })
    }
}

impl Serialize for SamplerVar {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("name".to_string(), self.name.to_value()),
            ("dim".to_string(), self.dim.to_value()),
        ])
    }
}

impl Deserialize for SamplerVar {
    fn from_value(v: &Value) -> Result<Self, String> {
        Ok(SamplerVar {
            name: String::from_value(field(v, "name")?)?,
            dim: TextureDim::from_value(field(v, "dim")?)?,
        })
    }
}

impl Serialize for ConstArray {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("name".to_string(), self.name.to_value()),
            ("elem_ty".to_string(), self.elem_ty.to_value()),
            (
                "elements".to_string(),
                Value::Arr(
                    self.elements
                        .iter()
                        .map(|lanes| Value::Arr(lanes.iter().map(|v| f64_to_value(*v)).collect()))
                        .collect(),
                ),
            ),
        ])
    }
}

impl Deserialize for ConstArray {
    fn from_value(v: &Value) -> Result<Self, String> {
        let elements = match field(v, "elements")? {
            Value::Arr(items) => items
                .iter()
                .map(|item| match item {
                    Value::Arr(lanes) => lanes.iter().map(f64_from_value).collect(),
                    other => Err(format!("expected lane array, got {other:?}")),
                })
                .collect::<Result<_, _>>()?,
            other => return Err(format!("expected element array, got {other:?}")),
        };
        Ok(ConstArray {
            name: String::from_value(field(v, "name")?)?,
            elem_ty: IrType::from_value(field(v, "elem_ty")?)?,
            elements,
        })
    }
}

impl Serialize for RegInfo {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("ty".to_string(), self.ty.to_value()),
            ("name_hint".to_string(), self.name_hint.to_value()),
        ])
    }
}

impl Deserialize for RegInfo {
    fn from_value(v: &Value) -> Result<Self, String> {
        Ok(RegInfo {
            ty: IrType::from_value(field(v, "ty")?)?,
            name_hint: Option::from_value(field(v, "name_hint")?)?,
        })
    }
}

impl Serialize for Shader {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("name".to_string(), self.name.to_value()),
            ("inputs".to_string(), self.inputs.to_value()),
            ("uniforms".to_string(), self.uniforms.to_value()),
            ("samplers".to_string(), self.samplers.to_value()),
            ("outputs".to_string(), self.outputs.to_value()),
            ("const_arrays".to_string(), self.const_arrays.to_value()),
            ("regs".to_string(), self.regs.to_value()),
            ("body".to_string(), self.body.to_value()),
        ])
    }
}

impl Deserialize for Shader {
    fn from_value(v: &Value) -> Result<Self, String> {
        Ok(Shader {
            name: String::from_value(field(v, "name")?)?,
            inputs: Vec::from_value(field(v, "inputs")?)?,
            uniforms: Vec::from_value(field(v, "uniforms")?)?,
            samplers: Vec::from_value(field(v, "samplers")?)?,
            outputs: Vec::from_value(field(v, "outputs")?)?,
            const_arrays: Vec::from_value(field(v, "const_arrays")?)?,
            regs: Vec::from_value(field(v, "regs")?)?,
            body: Vec::from_value(field(v, "body")?)?,
            // The fingerprint memo is a cache, not part of the value; a
            // deserialised shader starts with an empty one.
            fp_memo: Default::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::fingerprint;

    fn sample_shader() -> Shader {
        let mut s = Shader::new("roundtrip");
        s.inputs.push(InputVar {
            name: "uv".into(),
            ty: IrType::fvec(2),
        });
        s.uniforms.push(UniformVar {
            name: "tint_c0".into(),
            ty: IrType::fvec(4),
            slot: 0,
            original: "uniform mat4 tint;".into(),
        });
        s.samplers.push(SamplerVar {
            name: "tex".into(),
            dim: TextureDim::Shadow2D,
        });
        s.outputs.push(OutputVar {
            name: "c".into(),
            ty: IrType::fvec(4),
        });
        s.const_arrays.push(ConstArray {
            name: "weights".into(),
            elem_ty: IrType::fvec(4),
            elements: vec![vec![0.1, -0.0, 1e-17, 3.5], vec![0.25; 4]],
        });
        let cond = s.new_reg(IrType::BOOL);
        let acc = s.new_named_reg(IrType::fvec(4), "acc");
        let t = s.new_reg(IrType::fvec(4));
        s.body = vec![
            Stmt::Def {
                dst: cond,
                op: Op::Binary(BinaryOp::Lt, Operand::Input(0), Operand::float(0.5)),
            },
            Stmt::Def {
                dst: t,
                op: Op::TextureSample {
                    sampler: 0,
                    coords: Operand::Input(0),
                    lod: Some(Operand::float(0.0)),
                    dim: TextureDim::Shadow2D,
                },
            },
            Stmt::Loop {
                var: s.new_reg(IrType::I32),
                start: -1,
                end: 9,
                step: 2,
                body: vec![Stmt::Def {
                    dst: acc,
                    op: Op::Intrinsic(
                        Intrinsic::Mix,
                        vec![Operand::Reg(t), Operand::Uniform(0), Operand::float(0.3)],
                    ),
                }],
            },
            Stmt::If {
                cond: Operand::Reg(cond),
                then_body: vec![Stmt::Discard {
                    cond: Some(Operand::boolean(true)),
                }],
                else_body: vec![Stmt::Def {
                    dst: acc,
                    op: Op::Select {
                        cond: Operand::Reg(cond),
                        if_true: Operand::Reg(t),
                        if_false: Operand::Const(Constant::FloatVec(vec![0.0; 4])),
                    },
                }],
            },
            Stmt::StoreOutput {
                output: 0,
                components: Some(vec![0, 1, 2]),
                value: Operand::Reg(acc),
            },
        ];
        s
    }

    #[test]
    fn shader_round_trips_exactly() {
        let shader = sample_shader();
        let back = Shader::from_value(&shader.to_value()).unwrap();
        assert_eq!(back, shader);
        assert_eq!(fingerprint(&back), fingerprint(&shader));
    }

    #[test]
    fn shader_round_trips_through_json_text() {
        let shader = sample_shader();
        let json = serde_json::to_string(&shader).unwrap();
        let back: Shader = serde_json::from_str(&json).unwrap();
        assert_eq!(back, shader);
    }

    #[test]
    fn floats_survive_bit_exactly() {
        for v in [
            0.0,
            -0.0,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1e-300,
            -2.5e17,
            f64::INFINITY,
            f64::NEG_INFINITY,
        ] {
            let back = f64_from_value(&f64_to_value(v)).unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{v} drifted");
        }
        // NaN keeps NaN-ness (the payload is not significant to the IR).
        assert!(f64_from_value(&f64_to_value(f64::NAN)).unwrap().is_nan());
    }

    #[test]
    fn sixty_four_bit_integers_survive() {
        let c = Constant::Uint(u64::MAX);
        assert_eq!(Constant::from_value(&c.to_value()).unwrap(), c);
        let c = Constant::Int(i64::MIN);
        assert_eq!(Constant::from_value(&c.to_value()).unwrap(), c);
    }

    #[test]
    fn every_enum_code_round_trips() {
        for dim in [
            TextureDim::Dim2D,
            TextureDim::Dim3D,
            TextureDim::Cube,
            TextureDim::Shadow2D,
            TextureDim::Array2D,
        ] {
            assert_eq!(TextureDim::from_value(&dim.to_value()).unwrap(), dim);
        }
        for scalar in [Scalar::F32, Scalar::I32, Scalar::U32, Scalar::Bool] {
            assert_eq!(Scalar::from_value(&scalar.to_value()).unwrap(), scalar);
        }
        for op in [
            BinaryOp::Add,
            BinaryOp::Sub,
            BinaryOp::Mul,
            BinaryOp::Div,
            BinaryOp::Mod,
            BinaryOp::Eq,
            BinaryOp::Ne,
            BinaryOp::Lt,
            BinaryOp::Le,
            BinaryOp::Gt,
            BinaryOp::Ge,
            BinaryOp::And,
            BinaryOp::Or,
        ] {
            assert_eq!(BinaryOp::from_value(&op.to_value()).unwrap(), op);
        }
    }

    #[test]
    fn malformed_values_error_instead_of_panicking() {
        assert!(Shader::from_value(&Value::Num(1.0)).is_err());
        assert!(Stmt::from_value(&tagged("nope", Value::Null)).is_err());
        assert!(Op::from_value(&tagged("bin", Value::Obj(vec![]))).is_err());
        assert!(Constant::from_value(&tagged("float", Value::Str("xyz".into()))).is_err());
        assert!(IrType::from_value(&Value::Obj(vec![
            ("scalar".to_string(), Value::Str("f32".into())),
            ("width".to_string(), Value::Num(9.0)),
        ]))
        .is_err());
        assert!(Intrinsic::from_value(&Value::Str("definitely_not".into())).is_err());
    }
}
