//! Structural fingerprinting of shaders.
//!
//! A [`Fingerprint`] is a 128-bit structural hash of a [`Shader`]: two
//! shaders that are structurally identical always produce the same
//! fingerprint, and the hash is *commutative-aware* — the operands of
//! commutative binary operations (`a + b` vs `b + a`) are combined
//! order-independently, so trivially reordered forms land in the same hash
//! bucket and can be recognised as merge candidates cheaply.
//!
//! Fingerprints exist to make variant deduplication cheap: the compile
//! session hashes the IR after every pass-schedule stage and short-circuits
//! recompilation and GLSL emission whenever a state it has already seen
//! reappears (§V-C of the paper observes that most of the 256 flag
//! combinations collapse onto a handful of distinct programs). A fingerprint
//! match is only ever a *candidate*: callers that need exactness (the session
//! does) confirm with full structural equality (`Shader: PartialEq`), so a
//! 128-bit collision can never merge genuinely different shaders.

use crate::op::Op;
use crate::shader::Shader;
use crate::stmt::Stmt;
use crate::value::{Constant, Operand};
use std::fmt;

/// A 128-bit structural hash of a shader.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// The (memoised) structural fingerprint of a shader.
///
/// The hash covers everything GLSL emission depends on: the interface
/// (inputs, uniforms, samplers, outputs), constant arrays, register types and
/// name hints, and the full statement tree. The shader's `name` is excluded —
/// two structurally identical shaders with different corpus names fingerprint
/// equally, which is what cross-variant deduplication wants.
///
/// The result is memoised in the shader itself: the first call hashes the
/// structure (and bumps [`FINGERPRINTS_COMPUTED`]); later calls — including
/// on clones, which carry the memo — return the stored value. Code that
/// mutates a shader in place must call [`Shader::invalidate_fingerprint`]
/// (the optimizer's stage driver does) or the memo goes stale.
///
/// [`FINGERPRINTS_COMPUTED`]: crate::counters::FINGERPRINTS_COMPUTED
pub fn fingerprint(shader: &Shader) -> Fingerprint {
    *shader.fp_memo.get_or_init(|| compute_fingerprint(shader))
}

/// Computes the structural fingerprint from scratch, bypassing (and not
/// populating) the memo. [`fingerprint`] is the memoised entry point; this
/// exists for it and for stale-memo debug assertions.
pub fn compute_fingerprint(shader: &Shader) -> Fingerprint {
    crate::counters::count_fingerprint_computed();
    let mut h = Fnv128::new();
    h.write_usize(shader.inputs.len());
    for input in &shader.inputs {
        h.write_str(&input.name);
        h.write_u64(ty_code(input.ty));
    }
    h.write_usize(shader.uniforms.len());
    for uniform in &shader.uniforms {
        h.write_str(&uniform.name);
        h.write_u64(ty_code(uniform.ty));
        h.write_usize(uniform.slot);
        h.write_str(&uniform.original);
    }
    h.write_usize(shader.samplers.len());
    for sampler in &shader.samplers {
        h.write_str(&sampler.name);
        h.write_u64(sampler.dim as u64);
    }
    h.write_usize(shader.outputs.len());
    for output in &shader.outputs {
        h.write_str(&output.name);
        h.write_u64(ty_code(output.ty));
    }
    h.write_usize(shader.const_arrays.len());
    for array in &shader.const_arrays {
        h.write_str(&array.name);
        h.write_u64(ty_code(array.elem_ty));
        h.write_usize(array.elements.len());
        for element in &array.elements {
            for lane in element {
                h.write_f64(*lane);
            }
        }
    }
    h.write_usize(shader.regs.len());
    for reg in &shader.regs {
        h.write_u64(ty_code(reg.ty));
        match &reg.name_hint {
            Some(hint) => h.write_str(hint),
            None => h.write_u64(0),
        }
    }
    hash_body(&shader.body, &mut h);
    Fingerprint(h.finish())
}

fn hash_body(body: &[Stmt], h: &mut Fnv128) {
    h.write_usize(body.len());
    for stmt in body {
        hash_stmt(stmt, h);
    }
}

fn hash_stmt(stmt: &Stmt, h: &mut Fnv128) {
    match stmt {
        Stmt::Def { dst, op } => {
            h.write_u64(1);
            h.write_u64(dst.0 as u64);
            hash_op(op, h);
        }
        Stmt::StoreOutput {
            output,
            components,
            value,
        } => {
            h.write_u64(2);
            h.write_usize(*output);
            match components {
                Some(lanes) => {
                    h.write_usize(lanes.len());
                    for lane in lanes {
                        h.write_u64(*lane as u64);
                    }
                }
                None => h.write_u64(u64::MAX),
            }
            hash_operand(value, h);
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            h.write_u64(3);
            hash_operand(cond, h);
            hash_body(then_body, h);
            hash_body(else_body, h);
        }
        Stmt::Loop {
            var,
            start,
            end,
            step,
            body,
        } => {
            h.write_u64(4);
            h.write_u64(var.0 as u64);
            h.write_u64(*start as u64);
            h.write_u64(*end as u64);
            h.write_u64(*step as u64);
            hash_body(body, h);
        }
        Stmt::Discard { cond } => {
            h.write_u64(5);
            match cond {
                Some(c) => hash_operand(c, h),
                None => h.write_u64(0),
            }
        }
    }
}

fn hash_op(op: &Op, h: &mut Fnv128) {
    match op {
        Op::Mov(a) => {
            h.write_u64(10);
            hash_operand(a, h);
        }
        Op::Binary(binop, a, b) => {
            h.write_u64(11);
            h.write_u64(*binop as u64);
            if binop.is_commutative() {
                // Order-independent combination: hash each operand into its
                // own sub-hash, then mix with commutative operations (sum and
                // xor, all 128 bits of each) so `a + b` and `b + a`
                // fingerprint identically.
                let ha = hash_operand_alone(a);
                let hb = hash_operand_alone(b);
                let sum = ha.wrapping_add(hb);
                let xor = ha ^ hb;
                h.write_u64(sum as u64);
                h.write_u64((sum >> 64) as u64);
                h.write_u64(xor as u64);
                h.write_u64((xor >> 64) as u64);
            } else {
                hash_operand(a, h);
                hash_operand(b, h);
            }
        }
        Op::Unary(unop, a) => {
            h.write_u64(12);
            h.write_u64(*unop as u64);
            hash_operand(a, h);
        }
        Op::Intrinsic(intrinsic, args) => {
            h.write_u64(13);
            h.write_u64(*intrinsic as u64);
            h.write_usize(args.len());
            for arg in args {
                hash_operand(arg, h);
            }
        }
        Op::TextureSample {
            sampler,
            coords,
            lod,
            dim,
        } => {
            h.write_u64(14);
            h.write_usize(*sampler);
            h.write_u64(*dim as u64);
            hash_operand(coords, h);
            match lod {
                Some(l) => hash_operand(l, h),
                None => h.write_u64(0),
            }
        }
        Op::Construct { ty, parts } => {
            h.write_u64(15);
            h.write_u64(ty_code(*ty));
            h.write_usize(parts.len());
            for part in parts {
                hash_operand(part, h);
            }
        }
        Op::Splat { ty, value } => {
            h.write_u64(16);
            h.write_u64(ty_code(*ty));
            hash_operand(value, h);
        }
        Op::Extract { vector, index } => {
            h.write_u64(17);
            h.write_u64(*index as u64);
            hash_operand(vector, h);
        }
        Op::Insert {
            vector,
            index,
            value,
        } => {
            h.write_u64(18);
            h.write_u64(*index as u64);
            hash_operand(vector, h);
            hash_operand(value, h);
        }
        Op::Swizzle { vector, lanes } => {
            h.write_u64(19);
            h.write_usize(lanes.len());
            for lane in lanes {
                h.write_u64(*lane as u64);
            }
            hash_operand(vector, h);
        }
        Op::Select {
            cond,
            if_true,
            if_false,
        } => {
            h.write_u64(20);
            hash_operand(cond, h);
            hash_operand(if_true, h);
            hash_operand(if_false, h);
        }
        Op::ConstArrayLoad { array, index } => {
            h.write_u64(21);
            h.write_usize(*array);
            hash_operand(index, h);
        }
        Op::Convert { to, value } => {
            h.write_u64(22);
            h.write_u64(ty_code(*to));
            hash_operand(value, h);
        }
    }
}

fn hash_operand(operand: &Operand, h: &mut Fnv128) {
    match operand {
        Operand::Reg(r) => {
            h.write_u64(30);
            h.write_u64(r.0 as u64);
        }
        Operand::Const(c) => {
            h.write_u64(31);
            hash_constant(c, h);
        }
        Operand::Input(i) => {
            h.write_u64(32);
            h.write_usize(*i);
        }
        Operand::Uniform(u) => {
            h.write_u64(33);
            h.write_usize(*u);
        }
    }
}

fn hash_constant(constant: &Constant, h: &mut Fnv128) {
    match constant {
        Constant::Float(v) => {
            h.write_u64(40);
            h.write_f64(*v);
        }
        Constant::Int(v) => {
            h.write_u64(41);
            h.write_u64(*v as u64);
        }
        Constant::Uint(v) => {
            h.write_u64(42);
            h.write_u64(*v);
        }
        Constant::Bool(b) => {
            h.write_u64(43);
            h.write_u64(*b as u64);
        }
        Constant::FloatVec(lanes) => {
            h.write_u64(44);
            h.write_usize(lanes.len());
            for lane in lanes {
                h.write_f64(*lane);
            }
        }
    }
}

/// Hashes one operand into a standalone 128-bit value (for commutative
/// mixing).
fn hash_operand_alone(operand: &Operand) -> u128 {
    let mut h = Fnv128::new();
    hash_operand(operand, &mut h);
    h.finish()
}

fn ty_code(ty: crate::types::IrType) -> u64 {
    (ty.scalar as u64) << 8 | ty.width as u64
}

/// FNV-1a over 128 bits: simple, fast, and with 128 bits of state the
/// birthday bound sits far beyond the few hundred states a session touches.
struct Fnv128 {
    state: u128,
}

impl Fnv128 {
    const OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
    const PRIME: u128 = 0x0000000001000000000000000000013b;

    fn new() -> Fnv128 {
        Fnv128 {
            state: Self::OFFSET,
        }
    }

    fn write_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.state ^= byte as u128;
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    fn write_f64(&mut self, v: f64) {
        // Collapse -0.0 and 0.0 like the printer's canonical float form.
        let bits = if v == 0.0 { 0u64 } else { v.to_bits() };
        self.write_u64(bits);
    }

    fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        for byte in s.as_bytes() {
            self.state ^= *byte as u128;
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
    }

    fn finish(&self) -> u128 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::BinaryOp;
    use crate::shader::OutputVar;
    use crate::types::IrType;
    use crate::value::Reg;

    fn base_shader() -> Shader {
        let mut s = Shader::new("fp");
        s.outputs.push(OutputVar {
            name: "c".into(),
            ty: IrType::fvec(4),
        });
        let a = s.new_reg(IrType::F32);
        let b = s.new_reg(IrType::F32);
        let sum = s.new_reg(IrType::F32);
        s.body = vec![
            Stmt::Def {
                dst: a,
                op: Op::Mov(Operand::float(1.0)),
            },
            Stmt::Def {
                dst: b,
                op: Op::Mov(Operand::float(2.0)),
            },
            Stmt::Def {
                dst: sum,
                op: Op::Binary(BinaryOp::Add, Operand::Reg(a), Operand::Reg(b)),
            },
            Stmt::StoreOutput {
                output: 0,
                components: None,
                value: Operand::Reg(sum),
            },
        ];
        s
    }

    #[test]
    fn identical_shaders_fingerprint_equally() {
        let a = base_shader();
        let b = base_shader();
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn name_is_excluded() {
        let a = base_shader();
        let mut b = base_shader();
        b.name = "other".into();
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn commutative_operand_swap_is_fingerprint_neutral() {
        let a = base_shader();
        let mut b = base_shader();
        if let Stmt::Def {
            op: Op::Binary(BinaryOp::Add, x, y),
            ..
        } = &mut b.body[2]
        {
            std::mem::swap(x, y);
        } else {
            panic!("expected the add");
        }
        assert_ne!(a, b, "swapped operands are structurally different");
        assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "but hash into the same bucket"
        );
    }

    #[test]
    fn non_commutative_operand_swap_changes_the_fingerprint() {
        let a = base_shader();
        let mut b = base_shader();
        if let Stmt::Def { op, .. } = &mut b.body[2] {
            *op = Op::Binary(BinaryOp::Sub, Operand::Reg(Reg(0)), Operand::Reg(Reg(1)));
        }
        let mut c = base_shader();
        if let Stmt::Def { op, .. } = &mut c.body[2] {
            *op = Op::Binary(BinaryOp::Sub, Operand::Reg(Reg(1)), Operand::Reg(Reg(0)));
        }
        assert_ne!(fingerprint(&b), fingerprint(&c));
        assert_ne!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn structural_changes_change_the_fingerprint() {
        let a = base_shader();

        let mut different_const = base_shader();
        if let Stmt::Def { op, .. } = &mut different_const.body[0] {
            *op = Op::Mov(Operand::float(1.5));
        }
        assert_ne!(fingerprint(&a), fingerprint(&different_const));

        let mut extra_stmt = base_shader();
        let r = extra_stmt.new_reg(IrType::F32);
        extra_stmt.body.push(Stmt::Def {
            dst: r,
            op: Op::Mov(Operand::float(0.0)),
        });
        assert_ne!(fingerprint(&a), fingerprint(&extra_stmt));

        let mut renamed_output = base_shader();
        renamed_output.outputs[0].name = "color".into();
        assert_ne!(fingerprint(&a), fingerprint(&renamed_output));

        let mut hinted = base_shader();
        hinted.regs[0].name_hint = Some("acc".into());
        assert_ne!(
            fingerprint(&a),
            fingerprint(&hinted),
            "name hints feed GLSL emission, so they must be part of the hash"
        );
    }

    #[test]
    fn zero_sign_is_collapsed() {
        let mut a = base_shader();
        if let Stmt::Def { op, .. } = &mut a.body[0] {
            *op = Op::Mov(Operand::float(0.0));
        }
        let mut b = base_shader();
        if let Stmt::Def { op, .. } = &mut b.body[0] {
            *op = Op::Mov(Operand::float(-0.0));
        }
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn display_is_stable_hex() {
        let fp = fingerprint(&base_shader());
        let text = fp.to_string();
        assert_eq!(text.len(), 32);
        assert_eq!(text, fingerprint(&base_shader()).to_string());
    }
}
