//! Statements and structured control flow of the prism IR.
//!
//! The IR keeps *structured* control flow (if / counted loop) rather than a
//! flat CFG: LunarGlass's GLSL back-end reconstructs structured control flow
//! anyway, the GFXBench-style shaders only contain structured control flow,
//! and the paper's transformations (loop unrolling, conditional flattening)
//! are naturally expressed as structured rewrites.

use crate::op::Op;
use crate::value::{Operand, Reg};

/// One statement of a shader body.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Define (or redefine) a virtual register: `dst = op(...)`.
    Def {
        /// Destination register.
        dst: Reg,
        /// Operation computing the value.
        op: Op,
    },
    /// Write a value to a shader output.
    StoreOutput {
        /// Index into [`crate::shader::Shader::outputs`].
        output: usize,
        /// Optional component selection being written (e.g. `.xyz`); `None`
        /// writes the whole output.
        components: Option<Vec<u8>>,
        /// The value written.
        value: Operand,
    },
    /// Structured conditional.
    If {
        /// Boolean condition.
        cond: Operand,
        /// Statements executed when the condition holds.
        then_body: Vec<Stmt>,
        /// Statements executed otherwise.
        else_body: Vec<Stmt>,
    },
    /// Counted loop with compile-time-known bounds (`for (int i = start;
    /// i < end; i += step)`); `var` holds the induction value each iteration.
    Loop {
        /// Induction variable register (type `int`).
        var: Reg,
        /// Inclusive start value.
        start: i64,
        /// Exclusive end bound.
        end: i64,
        /// Per-iteration increment (non-zero).
        step: i64,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Conditionally or unconditionally discard the fragment.
    Discard {
        /// Condition; `None` means unconditional.
        cond: Option<Operand>,
    },
}

impl Stmt {
    /// Number of statements in this statement including nested bodies.
    pub fn size(&self) -> usize {
        match self {
            Stmt::If {
                then_body,
                else_body,
                ..
            } => 1 + body_size(then_body) + body_size(else_body),
            Stmt::Loop { body, .. } => 1 + body_size(body),
            _ => 1,
        }
    }

    /// Visits every statement (including nested ones), pre-order.
    pub fn walk<'a>(&'a self, visit: &mut impl FnMut(&'a Stmt)) {
        visit(self);
        match self {
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                for s in then_body {
                    s.walk(visit);
                }
                for s in else_body {
                    s.walk(visit);
                }
            }
            Stmt::Loop { body, .. } => {
                for s in body {
                    s.walk(visit);
                }
            }
            _ => {}
        }
    }

    /// All operands read by this statement itself (not nested statements).
    pub fn operands(&self) -> Vec<&Operand> {
        match self {
            Stmt::Def { op, .. } => op.operands(),
            Stmt::StoreOutput { value, .. } => vec![value],
            Stmt::If { cond, .. } => vec![cond],
            Stmt::Loop { .. } => vec![],
            Stmt::Discard { cond } => cond.iter().collect(),
        }
    }

    /// Mutable references to the operands read by this statement itself.
    pub fn operands_mut(&mut self) -> Vec<&mut Operand> {
        match self {
            Stmt::Def { op, .. } => op.operands_mut(),
            Stmt::StoreOutput { value, .. } => vec![value],
            Stmt::If { cond, .. } => vec![cond],
            Stmt::Loop { .. } => vec![],
            Stmt::Discard { cond } => cond.iter_mut().collect(),
        }
    }

    /// The register defined by this statement, if it is a `Def`.
    pub fn defined_reg(&self) -> Option<Reg> {
        match self {
            Stmt::Def { dst, .. } => Some(*dst),
            _ => None,
        }
    }
}

/// Total number of statements in a body, including nested ones.
pub fn body_size(body: &[Stmt]) -> usize {
    body.iter().map(Stmt::size).sum()
}

/// Visits every statement in a body, pre-order.
pub fn walk_body<'a>(body: &'a [Stmt], visit: &mut impl FnMut(&'a Stmt)) {
    for s in body {
        s.walk(visit);
    }
}

/// Applies `rewrite` to every operand in a body, including nested statements
/// and loop/if bodies.
pub fn rewrite_operands(body: &mut [Stmt], rewrite: &mut impl FnMut(&mut Operand)) {
    for stmt in body {
        for op in stmt.operands_mut() {
            rewrite(op);
        }
        match stmt {
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                rewrite_operands(then_body, rewrite);
                rewrite_operands(else_body, rewrite);
            }
            Stmt::Loop { body, .. } => rewrite_operands(body, rewrite),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{BinaryOp, Op};
    use crate::value::{Operand, Reg};

    fn def(dst: u32, op: Op) -> Stmt {
        Stmt::Def { dst: Reg(dst), op }
    }

    #[test]
    fn size_counts_nested_statements() {
        let s = Stmt::If {
            cond: Operand::boolean(true),
            then_body: vec![def(0, Op::Mov(Operand::float(1.0)))],
            else_body: vec![
                def(1, Op::Mov(Operand::float(2.0))),
                def(2, Op::Mov(Operand::float(3.0))),
            ],
        };
        assert_eq!(s.size(), 4);
        assert_eq!(
            body_size(&[s.clone(), def(3, Op::Mov(Operand::float(0.0)))]),
            5
        );
    }

    #[test]
    fn walk_visits_nested() {
        let s = Stmt::Loop {
            var: Reg(0),
            start: 0,
            end: 4,
            step: 1,
            body: vec![def(1, Op::Mov(Operand::Reg(Reg(0))))],
        };
        let mut n = 0;
        s.walk(&mut |_| n += 1);
        assert_eq!(n, 2);
    }

    #[test]
    fn rewrite_operands_reaches_nested_bodies() {
        let mut body = vec![Stmt::If {
            cond: Operand::Reg(Reg(9)),
            then_body: vec![def(
                1,
                Op::Binary(BinaryOp::Add, Operand::Reg(Reg(2)), Operand::Reg(Reg(3))),
            )],
            else_body: vec![],
        }];
        let mut seen = 0;
        rewrite_operands(&mut body, &mut |o| {
            seen += 1;
            *o = Operand::float(0.0);
        });
        assert_eq!(seen, 3);
    }

    #[test]
    fn defined_reg_only_for_defs() {
        assert_eq!(
            def(4, Op::Mov(Operand::float(1.0))).defined_reg(),
            Some(Reg(4))
        );
        assert_eq!(Stmt::Discard { cond: None }.defined_reg(), None);
    }
}
