//! A human-readable textual form of the IR, used in debugging, test
//! assertions and for the variant-deduplication hash in `prism-core`.

use crate::op::Op;
use crate::shader::Shader;
use crate::stmt::Stmt;
use std::fmt::Write;

/// Renders the whole shader (interface + body) as text.
pub fn print_shader(shader: &Shader) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "shader \"{}\" {{", shader.name);
    for (i, v) in shader.inputs.iter().enumerate() {
        let _ = writeln!(out, "  in[{i}] {} : {}", v.name, v.ty);
    }
    for (i, v) in shader.uniforms.iter().enumerate() {
        let _ = writeln!(out, "  uniform[{i}] {} : {}", v.name, v.ty);
    }
    for (i, v) in shader.samplers.iter().enumerate() {
        let _ = writeln!(out, "  sampler[{i}] {} : {:?}", v.name, v.dim);
    }
    for (i, v) in shader.outputs.iter().enumerate() {
        let _ = writeln!(out, "  out[{i}] {} : {}", v.name, v.ty);
    }
    for (i, a) in shader.const_arrays.iter().enumerate() {
        let _ = writeln!(
            out,
            "  const_array[{i}] {} : {}[{}]",
            a.name,
            a.elem_ty,
            a.len()
        );
    }
    print_body(&mut out, &shader.body, 1);
    out.push_str("}\n");
    out
}

/// Renders only the body statements (no interface header).
pub fn print_body_only(shader: &Shader) -> String {
    let mut out = String::new();
    print_body(&mut out, &shader.body, 0);
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn print_body(out: &mut String, body: &[Stmt], depth: usize) {
    for stmt in body {
        print_stmt(out, stmt, depth);
    }
}

fn print_stmt(out: &mut String, stmt: &Stmt, depth: usize) {
    indent(out, depth);
    match stmt {
        Stmt::Def { dst, op } => {
            let _ = writeln!(out, "{dst} = {}", print_op(op));
        }
        Stmt::StoreOutput {
            output,
            components,
            value,
        } => {
            let comps = components
                .as_ref()
                .map(|c| {
                    let names: String = c
                        .iter()
                        .map(|i| "xyzw".chars().nth(*i as usize).unwrap_or('?'))
                        .collect();
                    format!(".{names}")
                })
                .unwrap_or_default();
            let _ = writeln!(out, "store out[{output}]{comps} = {}", value.key());
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
        } => {
            let _ = writeln!(out, "if {} {{", cond.key());
            print_body(out, then_body, depth + 1);
            if !else_body.is_empty() {
                indent(out, depth);
                out.push_str("} else {\n");
                print_body(out, else_body, depth + 1);
            }
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::Loop {
            var,
            start,
            end,
            step,
            body,
        } => {
            let _ = writeln!(out, "loop {var} in {start}..{end} step {step} {{");
            print_body(out, body, depth + 1);
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::Discard { cond } => match cond {
            Some(c) => {
                let _ = writeln!(out, "discard if {}", c.key());
            }
            None => out.push_str("discard\n"),
        },
    }
}

fn print_op(op: &Op) -> String {
    match op {
        Op::Mov(a) => format!("mov {}", a.key()),
        Op::Binary(b, x, y) => format!("{} {} {}", x.key(), b.symbol(), y.key()),
        Op::Unary(u, x) => format!("{u:?} {}", x.key()),
        Op::Intrinsic(i, args) => {
            let parts: Vec<String> = args.iter().map(|a| a.key()).collect();
            format!("{}({})", i.glsl_name(), parts.join(", "))
        }
        Op::TextureSample {
            sampler,
            coords,
            lod,
            dim,
        } => match lod {
            Some(l) => format!(
                "texture[{sampler}]({}, lod={}) {:?}",
                coords.key(),
                l.key(),
                dim
            ),
            None => format!("texture[{sampler}]({}) {:?}", coords.key(), dim),
        },
        Op::Construct { ty, parts } => {
            let p: Vec<String> = parts.iter().map(|a| a.key()).collect();
            format!("{}({})", ty, p.join(", "))
        }
        Op::Splat { ty, value } => format!("splat {} {}", ty, value.key()),
        Op::Extract { vector, index } => format!("extract {} [{index}]", vector.key()),
        Op::Insert {
            vector,
            index,
            value,
        } => {
            format!("insert {} [{index}] = {}", vector.key(), value.key())
        }
        Op::Swizzle { vector, lanes } => format!("swizzle {} {:?}", vector.key(), lanes),
        Op::Select {
            cond,
            if_true,
            if_false,
        } => format!(
            "select {} ? {} : {}",
            cond.key(),
            if_true.key(),
            if_false.key()
        ),
        Op::ConstArrayLoad { array, index } => format!("const_array[{array}][{}]", index.key()),
        Op::Convert { to, value } => format!("convert {} -> {}", value.key(), to),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::BinaryOp;
    use crate::shader::OutputVar;
    use crate::types::IrType;
    use crate::value::Operand;

    #[test]
    fn prints_structured_body() {
        let mut s = Shader::new("print-test");
        s.outputs.push(OutputVar {
            name: "c".into(),
            ty: IrType::fvec(4),
        });
        let i = s.new_reg(IrType::I32);
        let r = s.new_reg(IrType::F32);
        s.body = vec![
            Stmt::Loop {
                var: i,
                start: 0,
                end: 3,
                step: 1,
                body: vec![Stmt::Def {
                    dst: r,
                    op: Op::Binary(BinaryOp::Mul, Operand::Reg(i), Operand::float(2.0)),
                }],
            },
            Stmt::If {
                cond: Operand::boolean(true),
                then_body: vec![Stmt::Discard { cond: None }],
                else_body: vec![Stmt::StoreOutput {
                    output: 0,
                    components: Some(vec![0, 1, 2]),
                    value: Operand::Reg(r),
                }],
            },
        ];
        let text = print_shader(&s);
        assert!(text.contains("shader \"print-test\""));
        assert!(text.contains("loop %0 in 0..3 step 1"));
        assert!(text.contains("%1 = r0 * f:2"));
        assert!(text.contains("discard"));
        assert!(text.contains("store out[0].xyz"));
        // Body-only form omits the interface.
        let body = print_body_only(&s);
        assert!(!body.contains("shader"));
        assert!(body.contains("loop"));
    }

    #[test]
    fn identical_shaders_print_identically() {
        let mut a = Shader::new("same");
        let r = a.new_reg(IrType::F32);
        a.body = vec![Stmt::Def {
            dst: r,
            op: Op::Mov(Operand::float(1.0)),
        }];
        let b = a.clone();
        assert_eq!(print_shader(&a), print_shader(&b));
    }
}
