//! Process-wide deterministic work counters for the zero-copy IR plane.
//!
//! The paper's empirical core (Fig. 4c) is that most passes leave most
//! shaders unchanged; the engineering consequence is that the snapshot /
//! fingerprint plane should spend almost nothing discovering that. These
//! counters make the cost *observable and gateable*: every deep [`Shader`]
//! clone, every from-scratch fingerprint computation, every structural
//! equality confirmation, and every identity stage transition bumps a
//! monotonic process-global counter. They count real work only — a memoised
//! fingerprint read or an `Arc::ptr_eq` short-circuit bumps nothing — so the
//! perf gate can pin "≥30% fewer clones / hashes" as a deterministic
//! baseline instead of a wall-clock guess.
//!
//! All counters are relaxed atomics: they are statistics, not
//! synchronisation, and the gate only reads them from single-threaded
//! deterministic sweeps.
//!
//! [`Shader`]: crate::shader::Shader

use std::sync::atomic::{AtomicU64, Ordering};

/// Deep `Shader::clone` calls (the allocation the zero-copy plane avoids).
pub static IR_CLONES: AtomicU64 = AtomicU64::new(0);
/// From-scratch structural fingerprint computations (memo misses only).
pub static FINGERPRINTS_COMPUTED: AtomicU64 = AtomicU64::new(0);
/// Full structural-equality walks (`Shader::same_structure` bodies actually
/// compared; `Arc::ptr_eq` fast paths are not counted).
pub static EQUALITY_CONFIRMS: AtomicU64 = AtomicU64::new(0);
/// Stage applications whose passes all reported clean, satisfied by the O(1)
/// identity fast path (no clone, no re-fingerprint, no snapshot insert).
pub static IDENTITY_TRANSITIONS: AtomicU64 = AtomicU64::new(0);

/// A point-in-time reading of all four counters. Subtract two snapshots to
/// attribute work to a region of a deterministic single-threaded run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IrCounters {
    /// See [`IR_CLONES`].
    pub ir_clones: u64,
    /// See [`FINGERPRINTS_COMPUTED`].
    pub fingerprints_computed: u64,
    /// See [`EQUALITY_CONFIRMS`].
    pub equality_confirms: u64,
    /// See [`IDENTITY_TRANSITIONS`].
    pub identity_transitions: u64,
}

/// Reads all counters (relaxed; the counters are monotonic).
pub fn snapshot() -> IrCounters {
    IrCounters {
        ir_clones: IR_CLONES.load(Ordering::Relaxed),
        fingerprints_computed: FINGERPRINTS_COMPUTED.load(Ordering::Relaxed),
        equality_confirms: EQUALITY_CONFIRMS.load(Ordering::Relaxed),
        identity_transitions: IDENTITY_TRANSITIONS.load(Ordering::Relaxed),
    }
}

impl IrCounters {
    /// The work performed since `earlier` (saturating, in case a counter
    /// snapshot pair is accidentally reversed).
    pub fn since(&self, earlier: &IrCounters) -> IrCounters {
        IrCounters {
            ir_clones: self.ir_clones.saturating_sub(earlier.ir_clones),
            fingerprints_computed: self
                .fingerprints_computed
                .saturating_sub(earlier.fingerprints_computed),
            equality_confirms: self
                .equality_confirms
                .saturating_sub(earlier.equality_confirms),
            identity_transitions: self
                .identity_transitions
                .saturating_sub(earlier.identity_transitions),
        }
    }
}

#[inline]
pub(crate) fn count_ir_clone() {
    IR_CLONES.fetch_add(1, Ordering::Relaxed);
}

#[inline]
pub(crate) fn count_fingerprint_computed() {
    FINGERPRINTS_COMPUTED.fetch_add(1, Ordering::Relaxed);
}

#[inline]
pub(crate) fn count_equality_confirm() {
    EQUALITY_CONFIRMS.fetch_add(1, Ordering::Relaxed);
}

/// Records one identity stage transition. Called by the session/cache layer
/// (outside this crate), hence public.
#[inline]
pub fn count_identity_transition() {
    IDENTITY_TRANSITIONS.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_deltas_are_attributable() {
        let before = snapshot();
        count_ir_clone();
        count_fingerprint_computed();
        count_fingerprint_computed();
        count_identity_transition();
        let after = snapshot();
        let delta = after.since(&before);
        // Other tests in this process may bump counters concurrently, so the
        // delta is a lower bound, not an exact figure.
        assert!(delta.ir_clones >= 1);
        assert!(delta.fingerprints_computed >= 2);
        assert!(delta.identity_transitions >= 1);
    }

    #[test]
    fn reversed_snapshots_saturate_instead_of_wrapping() {
        let newer = IrCounters {
            ir_clones: 5,
            fingerprints_computed: 5,
            equality_confirms: 5,
            identity_transitions: 5,
        };
        let older = IrCounters::default();
        assert_eq!(older.since(&newer), IrCounters::default());
    }
}
