//! Operations (right-hand sides of register definitions) in the prism IR.

use crate::types::{IrType, TextureDim};
use crate::value::Operand;

/// Binary arithmetic and comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// Componentwise addition.
    Add,
    /// Componentwise subtraction.
    Sub,
    /// Componentwise multiplication.
    Mul,
    /// Componentwise division.
    Div,
    /// Componentwise modulo.
    Mod,
    /// Equality (scalar result).
    Eq,
    /// Inequality.
    Ne,
    /// Less than.
    Lt,
    /// Less or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater or equal.
    Ge,
    /// Logical and.
    And,
    /// Logical or.
    Or,
}

impl BinaryOp {
    /// GLSL spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
            BinaryOp::Eq => "==",
            BinaryOp::Ne => "!=",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::And => "&&",
            BinaryOp::Or => "||",
        }
    }

    /// `true` for +, -, *, /, %.
    pub fn is_arithmetic(self) -> bool {
        matches!(
            self,
            BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div | BinaryOp::Mod
        )
    }

    /// `true` for comparisons (boolean result).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq | BinaryOp::Ne | BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge
        )
    }

    /// `true` for `&&` / `||`.
    pub fn is_logical(self) -> bool {
        matches!(self, BinaryOp::And | BinaryOp::Or)
    }

    /// `true` when `a op b == b op a`.
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinaryOp::Add
                | BinaryOp::Mul
                | BinaryOp::Eq
                | BinaryOp::Ne
                | BinaryOp::And
                | BinaryOp::Or
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// Numeric negation.
    Neg,
    /// Logical not.
    Not,
}

/// Built-in intrinsic functions carried through to the back-end and the GPU
/// cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    /// `pow(x, y)`
    Pow,
    /// `exp(x)`
    Exp,
    /// `log(x)`
    Log,
    /// `sqrt(x)`
    Sqrt,
    /// `inversesqrt(x)`
    InverseSqrt,
    /// `sin(x)` (also used for cos/tan cost-wise)
    Sin,
    /// `cos(x)`
    Cos,
    /// `abs(x)`
    Abs,
    /// `sign(x)`
    Sign,
    /// `floor(x)`
    Floor,
    /// `fract(x)`
    Fract,
    /// `mod(x, y)`
    Mod,
    /// `min(x, y)`
    Min,
    /// `max(x, y)`
    Max,
    /// `clamp(x, lo, hi)`
    Clamp,
    /// `mix(a, b, t)`
    Mix,
    /// `step(edge, x)`
    Step,
    /// `smoothstep(e0, e1, x)`
    Smoothstep,
    /// `length(v)`
    Length,
    /// `distance(a, b)`
    Distance,
    /// `dot(a, b)`
    Dot,
    /// `cross(a, b)`
    Cross,
    /// `normalize(v)`
    Normalize,
    /// `reflect(i, n)`
    Reflect,
    /// `refract(i, n, eta)`
    Refract,
    /// `dFdx(x)`
    DFdx,
    /// `dFdy(x)`
    DFdy,
    /// `fwidth(x)`
    Fwidth,
}

impl Intrinsic {
    /// GLSL spelling of the intrinsic.
    pub fn glsl_name(self) -> &'static str {
        match self {
            Intrinsic::Pow => "pow",
            Intrinsic::Exp => "exp",
            Intrinsic::Log => "log",
            Intrinsic::Sqrt => "sqrt",
            Intrinsic::InverseSqrt => "inversesqrt",
            Intrinsic::Sin => "sin",
            Intrinsic::Cos => "cos",
            Intrinsic::Abs => "abs",
            Intrinsic::Sign => "sign",
            Intrinsic::Floor => "floor",
            Intrinsic::Fract => "fract",
            Intrinsic::Mod => "mod",
            Intrinsic::Min => "min",
            Intrinsic::Max => "max",
            Intrinsic::Clamp => "clamp",
            Intrinsic::Mix => "mix",
            Intrinsic::Step => "step",
            Intrinsic::Smoothstep => "smoothstep",
            Intrinsic::Length => "length",
            Intrinsic::Distance => "distance",
            Intrinsic::Dot => "dot",
            Intrinsic::Cross => "cross",
            Intrinsic::Normalize => "normalize",
            Intrinsic::Reflect => "reflect",
            Intrinsic::Refract => "refract",
            Intrinsic::DFdx => "dFdx",
            Intrinsic::DFdy => "dFdy",
            Intrinsic::Fwidth => "fwidth",
        }
    }

    /// Maps a GLSL builtin name to an intrinsic.
    pub fn from_glsl_name(name: &str) -> Option<Intrinsic> {
        Some(match name {
            "pow" => Intrinsic::Pow,
            "exp" | "exp2" => Intrinsic::Exp,
            "log" | "log2" => Intrinsic::Log,
            "sqrt" => Intrinsic::Sqrt,
            "inversesqrt" => Intrinsic::InverseSqrt,
            "sin" | "tan" | "asin" | "acos" | "atan" => Intrinsic::Sin,
            "cos" => Intrinsic::Cos,
            "abs" => Intrinsic::Abs,
            "sign" => Intrinsic::Sign,
            "floor" | "ceil" | "trunc" | "round" => Intrinsic::Floor,
            "fract" => Intrinsic::Fract,
            "mod" => Intrinsic::Mod,
            "min" => Intrinsic::Min,
            "max" => Intrinsic::Max,
            "clamp" | "saturate" => Intrinsic::Clamp,
            "mix" | "lerp" => Intrinsic::Mix,
            "step" => Intrinsic::Step,
            "smoothstep" => Intrinsic::Smoothstep,
            "length" => Intrinsic::Length,
            "distance" => Intrinsic::Distance,
            "dot" => Intrinsic::Dot,
            "cross" => Intrinsic::Cross,
            "normalize" => Intrinsic::Normalize,
            "reflect" => Intrinsic::Reflect,
            "refract" => Intrinsic::Refract,
            "dFdx" => Intrinsic::DFdx,
            "dFdy" => Intrinsic::DFdy,
            "fwidth" => Intrinsic::Fwidth,
            _ => return None,
        })
    }

    /// `true` for intrinsics with transcendental hardware cost.
    pub fn is_transcendental(self) -> bool {
        matches!(
            self,
            Intrinsic::Pow
                | Intrinsic::Exp
                | Intrinsic::Log
                | Intrinsic::Sqrt
                | Intrinsic::InverseSqrt
                | Intrinsic::Sin
                | Intrinsic::Cos
                | Intrinsic::Normalize
                | Intrinsic::Length
                | Intrinsic::Distance
                | Intrinsic::Smoothstep
                | Intrinsic::Refract
        )
    }
}

/// The right-hand side of a register definition.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Copy of an operand.
    Mov(Operand),
    /// Binary operation. Both operands must have the same width (the lowering
    /// splats scalars into vectors — the paper's "unnecessary vectorisation"
    /// artefact).
    Binary(BinaryOp, Operand, Operand),
    /// Unary operation.
    Unary(UnaryOp, Operand),
    /// Intrinsic call.
    Intrinsic(Intrinsic, Vec<Operand>),
    /// Texture sample: `texture(sampler, coords)` with optional LOD.
    TextureSample {
        /// Index into [`crate::shader::Shader::samplers`].
        sampler: usize,
        /// Texture coordinates.
        coords: Operand,
        /// Optional explicit level of detail.
        lod: Option<Operand>,
        /// Dimensionality (determines result type).
        dim: TextureDim,
    },
    /// Construct a vector from scalar/vector parts (`vecN(parts...)`).
    Construct {
        /// Result type.
        ty: IrType,
        /// Parts supplying the components in order.
        parts: Vec<Operand>,
    },
    /// Broadcast a scalar to a vector (`vecN(s)`).
    Splat {
        /// Result type.
        ty: IrType,
        /// The scalar value to broadcast.
        value: Operand,
    },
    /// Extract a single component of a vector with a constant index.
    Extract {
        /// Source vector.
        vector: Operand,
        /// Component index (0–3).
        index: u8,
    },
    /// Insert a scalar into one component of a vector, producing a new vector.
    ///
    /// Chains of these are what the Coalesce pass collapses into `Construct`.
    Insert {
        /// The vector being updated.
        vector: Operand,
        /// Component index (0–3).
        index: u8,
        /// The scalar value to place.
        value: Operand,
    },
    /// Reorder / replicate components of a vector (`v.xxyz`).
    Swizzle {
        /// Source vector.
        vector: Operand,
        /// Selected source components, length 1–4.
        lanes: Vec<u8>,
    },
    /// Conditional select: `cond ? a : b` (the target of the Hoist pass).
    Select {
        /// Boolean condition.
        cond: Operand,
        /// Value when true.
        if_true: Operand,
        /// Value when false.
        if_false: Operand,
    },
    /// Load an element of a constant array with a (possibly dynamic) index.
    ConstArrayLoad {
        /// Index into [`crate::shader::Shader::const_arrays`].
        array: usize,
        /// Element index operand.
        index: Operand,
    },
    /// Convert between scalar kinds (componentwise).
    Convert {
        /// Target type.
        to: IrType,
        /// Source value.
        value: Operand,
    },
}

impl Op {
    /// All operands of this operation, in order.
    pub fn operands(&self) -> Vec<&Operand> {
        match self {
            Op::Mov(a)
            | Op::Unary(_, a)
            | Op::Extract { vector: a, .. }
            | Op::Swizzle { vector: a, .. } => vec![a],
            Op::Binary(_, a, b) => vec![a, b],
            Op::Intrinsic(_, args) => args.iter().collect(),
            Op::TextureSample { coords, lod, .. } => {
                let mut v = vec![coords];
                if let Some(l) = lod {
                    v.push(l);
                }
                v
            }
            Op::Construct { parts, .. } => parts.iter().collect(),
            Op::Splat { value, .. } => vec![value],
            Op::Insert { vector, value, .. } => vec![vector, value],
            Op::Select {
                cond,
                if_true,
                if_false,
            } => vec![cond, if_true, if_false],
            Op::ConstArrayLoad { index, .. } => vec![index],
            Op::Convert { value, .. } => vec![value],
        }
    }

    /// Mutable references to all operands of this operation.
    pub fn operands_mut(&mut self) -> Vec<&mut Operand> {
        match self {
            Op::Mov(a)
            | Op::Unary(_, a)
            | Op::Extract { vector: a, .. }
            | Op::Swizzle { vector: a, .. } => vec![a],
            Op::Binary(_, a, b) => vec![a, b],
            Op::Intrinsic(_, args) => args.iter_mut().collect(),
            Op::TextureSample { coords, lod, .. } => {
                let mut v = vec![coords];
                if let Some(l) = lod {
                    v.push(l);
                }
                v
            }
            Op::Construct { parts, .. } => parts.iter_mut().collect(),
            Op::Splat { value, .. } => vec![value],
            Op::Insert { vector, value, .. } => vec![vector, value],
            Op::Select {
                cond,
                if_true,
                if_false,
            } => vec![cond, if_true, if_false],
            Op::ConstArrayLoad { index, .. } => vec![index],
            Op::Convert { value, .. } => vec![value],
        }
    }

    /// `true` when this op has no side effects and may be removed if unused.
    ///
    /// Texture samples are treated as removable in fragment shaders (they have
    /// no side effects), matching LLVM's `isTriviallyDead` behaviour that the
    /// paper references when discussing ADCE.
    pub fn is_pure(&self) -> bool {
        // Derivatives interact with neighbouring invocations but are still
        // side-effect free for the purposes of dead-code removal.
        true
    }

    /// `true` if this op samples a texture.
    pub fn is_texture(&self) -> bool {
        matches!(self, Op::TextureSample { .. })
    }

    /// A canonical structural key (operator + operand keys) for CSE/GVN.
    pub fn value_key(&self) -> String {
        match self {
            Op::Mov(a) => format!("mov({})", a.key()),
            Op::Binary(op, a, b) => {
                // Commutative operators get a canonical operand order so that
                // `a+b` and `b+a` receive the same value number.
                let (x, y) = if op.is_commutative() && b.key() < a.key() {
                    (b.key(), a.key())
                } else {
                    (a.key(), b.key())
                };
                format!("bin:{op:?}({x},{y})")
            }
            Op::Unary(op, a) => format!("un:{op:?}({})", a.key()),
            Op::Intrinsic(i, args) => {
                let keys: Vec<String> = args.iter().map(|a| a.key()).collect();
                format!("call:{i:?}({})", keys.join(","))
            }
            Op::TextureSample {
                sampler,
                coords,
                lod,
                dim,
            } => format!(
                "tex:{sampler}:{:?}({},{})",
                dim,
                coords.key(),
                lod.as_ref().map(|l| l.key()).unwrap_or_default()
            ),
            Op::Construct { ty, parts } => {
                let keys: Vec<String> = parts.iter().map(|a| a.key()).collect();
                format!("ctor:{ty}({})", keys.join(","))
            }
            Op::Splat { ty, value } => format!("splat:{ty}({})", value.key()),
            Op::Extract { vector, index } => format!("ext({},{index})", vector.key()),
            Op::Insert {
                vector,
                index,
                value,
            } => {
                format!("ins({},{index},{})", vector.key(), value.key())
            }
            Op::Swizzle { vector, lanes } => format!("swz({},{lanes:?})", vector.key()),
            Op::Select {
                cond,
                if_true,
                if_false,
            } => format!("sel({},{},{})", cond.key(), if_true.key(), if_false.key()),
            Op::ConstArrayLoad { array, index } => format!("cal({array},{})", index.key()),
            Op::Convert { to, value } => format!("cvt:{to}({})", value.key()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Reg;

    #[test]
    fn binary_op_classification() {
        assert!(BinaryOp::Add.is_arithmetic());
        assert!(BinaryOp::Add.is_commutative());
        assert!(!BinaryOp::Sub.is_commutative());
        assert!(BinaryOp::Lt.is_comparison());
        assert!(BinaryOp::And.is_logical());
        assert_eq!(BinaryOp::Div.symbol(), "/");
    }

    #[test]
    fn intrinsic_name_round_trip() {
        for i in [
            Intrinsic::Pow,
            Intrinsic::Dot,
            Intrinsic::Normalize,
            Intrinsic::Clamp,
            Intrinsic::Mix,
            Intrinsic::Fract,
        ] {
            assert_eq!(Intrinsic::from_glsl_name(i.glsl_name()), Some(i));
        }
        assert_eq!(Intrinsic::from_glsl_name("nope"), None);
        assert!(Intrinsic::Pow.is_transcendental());
        assert!(!Intrinsic::Abs.is_transcendental());
    }

    #[test]
    fn operand_listing() {
        let op = Op::Select {
            cond: Operand::Reg(Reg(0)),
            if_true: Operand::float(1.0),
            if_false: Operand::float(0.0),
        };
        assert_eq!(op.operands().len(), 3);
        let op = Op::TextureSample {
            sampler: 0,
            coords: Operand::Reg(Reg(1)),
            lod: Some(Operand::float(0.0)),
            dim: TextureDim::Dim2D,
        };
        assert_eq!(op.operands().len(), 2);
        assert!(op.is_texture());
    }

    #[test]
    fn value_key_canonicalises_commutative_operands() {
        let a = Op::Binary(BinaryOp::Add, Operand::Reg(Reg(1)), Operand::Reg(Reg(2)));
        let b = Op::Binary(BinaryOp::Add, Operand::Reg(Reg(2)), Operand::Reg(Reg(1)));
        assert_eq!(a.value_key(), b.value_key());
        let c = Op::Binary(BinaryOp::Sub, Operand::Reg(Reg(1)), Operand::Reg(Reg(2)));
        let d = Op::Binary(BinaryOp::Sub, Operand::Reg(Reg(2)), Operand::Reg(Reg(1)));
        assert_ne!(c.value_key(), d.value_key());
    }

    #[test]
    fn operands_mut_allows_rewriting() {
        let mut op = Op::Binary(BinaryOp::Mul, Operand::Reg(Reg(1)), Operand::Reg(Reg(2)));
        for o in op.operands_mut() {
            *o = Operand::float(1.0);
        }
        assert!(op.operands().iter().all(|o| o.is_const()));
    }
}
