//! # prism-bench — the benchmark harness that regenerates the paper's tables
//! and figures
//!
//! Each bench target (`cargo bench -p prism-bench --bench <name>`) runs the
//! exhaustive 256-combination study over the GFXBench-like corpus on all
//! seven simulated platforms and prints the rows/series of one paper figure
//! or table:
//!
//! | bench target | paper content |
//! |---|---|
//! | `fig3_motivating` | Fig. 3 — motivating blur speed-ups + ARM distribution |
//! | `fig4_characterization` | Fig. 4 — LoC, ARM cycles, unique variants |
//! | `fig5_overall` | Fig. 5 — average speed-ups per platform |
//! | `fig6_top30` | Fig. 6 — 30 most-improved shaders |
//! | `table1_best_static` | Table I — best static flags per platform |
//! | `fig7_per_shader` | Fig. 7 — per-shader speed-up distributions |
//! | `fig8_applicability` | Fig. 8 — flag applicability/optimality |
//! | `fig9_per_flag` | Fig. 9 — per-flag isolated impact |
//! | `optimizer_micro` | Criterion micro-benchmarks of the optimizer itself |

use prism_corpus::Corpus;
use prism_harness::MeasureConfig;
use prism_search::{run_study, StudyConfig, StudyResults};
use std::time::Instant;

/// The measurement configuration used by the bench targets: lighter than the
/// paper's 100 × 5 frames (the noise model converges quickly) so a full
/// corpus × 256-combination sweep finishes in seconds per figure.
pub fn bench_config() -> StudyConfig {
    StudyConfig {
        measure: MeasureConfig {
            frames: 25,
            repeats: 2,
            seed: 0xC0FFEE,
        },
        ..StudyConfig::default()
    }
}

/// Runs the full study over the complete corpus, printing progress timing.
pub fn full_study() -> StudyResults {
    let corpus = Corpus::gfxbench_like();
    eprintln!(
        "prism-bench: sweeping {} shaders x 256 flag combinations x 7 platforms...",
        corpus.len()
    );
    let start = Instant::now();
    let study = run_study(&corpus, &bench_config());
    eprintln!(
        "prism-bench: sweep finished in {:.1}s ({} measurements)",
        start.elapsed().as_secs_f64(),
        study.measurements.len()
    );
    study
}

/// The corpus name of the motivating blur shader.
pub const BLUR_NAME: &str = "flagship_blur9";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_config_is_lighter_than_the_paper() {
        let c = bench_config();
        assert!(c.measure.frames < 100);
        assert_eq!(c.vendors.len(), 7);
    }
}
