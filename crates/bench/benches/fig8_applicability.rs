//! Regenerates Fig. 8: per-flag applicability and optimality counts.
fn main() {
    let study = prism_bench::full_study();
    for vendor in study.platforms() {
        print!("{}", prism_report::fig8_applicability(&study, &vendor));
        println!();
    }
}
