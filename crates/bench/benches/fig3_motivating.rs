//! Regenerates Fig. 3: the motivating blur shader's speed-ups per platform
//! and the distribution of best-static speed-ups on ARM.
fn main() {
    let study = prism_bench::full_study();
    print!(
        "{}",
        prism_report::fig3_motivating(&study, prism_bench::BLUR_NAME)
    );
}
