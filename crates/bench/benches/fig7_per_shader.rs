//! Regenerates Fig. 7: per-shader speed-up distributions (best / default /
//! best-static) per platform.
fn main() {
    let study = prism_bench::full_study();
    print!("{}", prism_report::fig7_per_shader(&study));
}
