//! Regenerates Fig. 9: each flag in isolation versus the no-flag baseline,
//! per platform.
fn main() {
    let study = prism_bench::full_study();
    print!("{}", prism_report::fig9_per_flag(&study));
}
