//! Criterion benchmark of the incremental flag-search path: pay-as-you-go
//! compilation of strategy-chosen flag subsets against live sessions, versus
//! exhaustively materialising all 256 variants per shader.
//!
//! Besides timing, the bench asserts the subsystem's contract — every
//! strategy compiles strictly fewer combinations than the exhaustive sweep,
//! never exceeds its budget, and the greedy/ablation strategies match or
//! beat the LunarGlass default policy on every platform — so CI can run it
//! as a smoke test (`PRISM_BENCH_SMOKE=1`) and the search path cannot
//! silently regress.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use prism_core::CompileSession;
use prism_corpus::Corpus;
use prism_search::{
    incremental_search_records, run_study, SearchConfig, StudyConfig, StudyResults,
};

/// Whether the reduced CI smoke configuration is requested.
fn smoke() -> bool {
    std::env::var_os("PRISM_BENCH_SMOKE").is_some()
}

/// The blur flagship (real optimization headroom) plus family members and a
/// simple shader, trimmed further in smoke mode.
fn search_corpus() -> Corpus {
    if smoke() {
        Corpus::gfxbench_like().subset(&["flagship_blur9", "texture_combine_00", "ui_blit_00"])
    } else {
        Corpus::family_mix()
    }
}

fn incremental_search_benchmarks(c: &mut Criterion) {
    let corpus = search_corpus();
    let config = StudyConfig::quick();
    let search = SearchConfig::default();
    // The exhaustive study measured once up front: it is both the timing
    // oracle the strategies score against and the baseline being compared.
    let study = run_study(&corpus, &config);

    c.bench_function("incremental_search_all_strategies", |b| {
        b.iter(|| {
            black_box(incremental_search_records(
                &corpus, &study, &config, &search,
            ))
        })
    });
    c.bench_function("exhaustive_256_variant_generation", |b| {
        b.iter(|| {
            for case in &corpus.cases {
                let session = CompileSession::new(&case.source, &case.name).unwrap();
                black_box(session.variants().unwrap());
            }
        })
    });

    smoke_contract(&corpus, &study, &config, &search);
}

/// The checked contract run: budgets are hard, compile counts stay strictly
/// under the exhaustive 256 (indeed under a quarter of it), and greedy and
/// ablation strategies clear the default-policy bar on every platform.
fn smoke_contract(
    corpus: &Corpus,
    study: &StudyResults,
    config: &StudyConfig,
    search: &SearchConfig,
) {
    let records = incremental_search_records(corpus, study, config, search);
    assert!(!records.is_empty(), "search must produce records");

    println!("\nincremental search ({} shaders):", corpus.len());
    for row in &records {
        println!(
            "  {:<10} {:<16} {:+6.2}% (oracle {:+6.2}%, default {:+6.2}%) at {:5.1}/256 compiles",
            row.vendor,
            row.strategy,
            row.mean_speedup,
            row.oracle_mean_speedup,
            row.default_mean_speedup,
            row.mean_compiles,
        );
        assert!(
            row.max_compiles <= row.budget,
            "{}/{} exceeded its compile budget: {row:?}",
            row.vendor,
            row.strategy
        );
        assert!(
            (row.mean_compiles as usize) < 256 && row.max_compiles < 256,
            "{}/{} must compile strictly fewer combinations than exhaustive: {row:?}",
            row.vendor,
            row.strategy
        );
        assert!(
            row.mean_compiles < 64.0,
            "{}/{} should stay under a quarter of the exhaustive cost: {row:?}",
            row.vendor,
            row.strategy
        );
        if row.strategy != "hill_climb" {
            assert!(
                row.mean_speedup >= row.default_mean_speedup - 1e-9,
                "{}/{} lost to the LunarGlass default policy: {row:?}",
                row.vendor,
                row.strategy
            );
        }
    }
    println!("  contract: OK (budgets hard, < 25% of exhaustive, >= default policy)");
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(if smoke() { 2 } else { 10 });
    targets = incremental_search_benchmarks
}
criterion_main!(benches);
