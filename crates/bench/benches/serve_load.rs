//! Criterion benchmark + smoke contract for the sharded compile service.
//!
//! Drives seeded Zipf-skewed request streams (corpus shaders × flag sets ×
//! 4 backends) through a [`CompileService`] and reports deterministic
//! work-counter latencies. Three contract phases run even in smoke mode
//! (`PRISM_BENCH_SMOKE=1`):
//!
//! 1. **steady state** — after warm-up, coalesced + memo-served requests
//!    are ≥ 90% of the stream and the p50 request costs zero work;
//! 2. **warm boot** — a service booted from the previous service's snapshot
//!    replays the same stream with **zero** stage runs and byte-identical
//!    responses;
//! 3. **hammer** — a worker-pool service under concurrent identical clients
//!    coalesces (`coalesced_requests > 0`) and stays byte-identical;
//! 4. **online tune** — a flag-search tenant on the warm-booted service
//!    stays under its measurement budget, and the variant it lands on is
//!    afterwards memo-served to serving traffic at zero work (shared
//!    cache plane, both directions);
//! 5. **analysis replay** — static reports computed before the snapshot are
//!    answered by the warm-booted service from the persisted memo with zero
//!    fresh analysis walks.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use prism_core::OptFlags;
use prism_corpus::Corpus;
use prism_emit::BackendKind;
use prism_gpu::Vendor;
use prism_serve::{
    request_stream, run_stream, CompileRequest, CompileService, ServeConfig, StreamSpec,
};
use std::sync::{Arc, Barrier};

/// Whether the reduced CI smoke configuration is requested.
fn smoke() -> bool {
    std::env::var_os("PRISM_BENCH_SMOKE").is_some()
}

fn serve_corpus() -> Corpus {
    if smoke() {
        Corpus::gfxbench_like().subset(&[
            "flagship_blur9",
            "ui_blit_00",
            "texture_combine_00",
            "forward_lit_00",
        ])
    } else {
        Corpus::gfxbench_like()
    }
}

fn stream_spec() -> StreamSpec {
    if smoke() {
        StreamSpec::standard(7, 400)
    } else {
        StreamSpec::standard(7, 1600)
    }
}

fn warmup_len(spec: &StreamSpec) -> usize {
    spec.requests * 3 / 8
}

fn serve_load_benchmarks(c: &mut Criterion) {
    let corpus = serve_corpus();
    let spec = stream_spec();
    let stream = request_stream(&corpus, &spec);

    // Timing target 1: the steady-state stream against a pre-warmed service
    // (the serving hot path — almost entirely memo lookups).
    let warmed = CompileService::new(ServeConfig::default());
    run_stream(&warmed, &stream, 0);
    c.bench_function("serve_steady_state_stream", |b| {
        b.iter(|| black_box(run_stream(&warmed, &stream, 0)))
    });

    // Timing target 2: one fully cold boot-and-serve cycle.
    c.bench_function("serve_cold_boot_stream", |b| {
        b.iter(|| {
            let service = CompileService::new(ServeConfig::default());
            black_box(run_stream(&service, &stream, 0))
        })
    });

    smoke_contract(&corpus, &spec, &stream);
}

/// The checked contract run (printed + hard-asserted, so CI smoke catches
/// regressions in the serving path itself, not just its latency).
fn smoke_contract(_corpus: &Corpus, spec: &StreamSpec, stream: &[CompileRequest]) {
    // Phase 1: steady state. ≥ 90% of post-warm-up requests are free.
    let dir = std::env::temp_dir().join(format!(
        "prism-serve-bench-{}-{:p}",
        std::process::id(),
        spec
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let config = ServeConfig::default().with_warm_start_dir(dir.clone());
    let warmup = warmup_len(spec);
    let cold = CompileService::new(config.clone());
    let summary = run_stream(&cold, stream, warmup);
    println!(
        "\nserve steady state ({} requests, {} measured): p50={} p99={} free={:.1}% memo={} zero_copy={}",
        summary.requests,
        summary.measured,
        summary.p50_latency,
        summary.p99_latency,
        100.0 * summary.free_fraction(),
        summary.memo_served,
        summary.zero_copy,
    );
    assert_eq!(summary.errors, 0, "{summary:?}");
    assert!(
        summary.free_fraction() >= 0.9,
        "steady-state free fraction {:.3} below the 90% acceptance: {summary:?}",
        summary.free_fraction()
    );
    assert_eq!(
        summary.p50_latency, 0,
        "the p50 request must be memo-served"
    );

    // A replayed request must answer with the memo's own allocation.
    let probe = stream[0].clone();
    let first = cold.compile(&probe).unwrap();
    let second = cold.compile(&probe).unwrap();
    assert!(
        Arc::ptr_eq(&first.text, &second.text),
        "replayed response body is not the shared memo handle"
    );

    // Zero-copy contract: replaying the whole stream against the now-fully
    // warmed service is pure memo serving, and a memo-served request must
    // not deep-clone a single IR shader.
    let ir_before = prism_ir::counters::snapshot();
    let replay = run_stream(&cold, stream, 0);
    let replay_ir = prism_ir::counters::snapshot().since(&ir_before);
    println!(
        "serve replay: memo_served={}/{} ir_clones={} fingerprints={}",
        replay.memo_served, replay.measured, replay_ir.ir_clones, replay_ir.fingerprints_computed
    );
    assert_eq!(
        replay.memo_served, replay.measured,
        "a fully warmed service must memo-serve the entire stream: {replay:?}"
    );
    assert_eq!(
        replay_ir.ir_clones, 0,
        "memo-served requests deep-cloned IR: {replay_ir:?}"
    );
    assert_eq!(
        replay.p50_latency, summary.p50_latency,
        "replay p50 request work regressed from the post-warm-up stream"
    );

    // Phase 5 setup (before the snapshot is cut): one static analysis on the
    // cold service, so the report travels to disk with the warm-start state.
    let analysis_flags = OptFlags::lunarglass_default();
    let analysis = cold
        .analyze(&stream[0].source, analysis_flags, Vendor::Arm)
        .expect("static analysis on the cold service");

    // Phase 2: warm boot. Snapshot, boot a new service from disk, replay.
    let cold_stats = cold.stats();
    assert!(cold_stats.cache.stage_runs > 0);
    cold.shutdown().unwrap().expect("snapshot written");
    let warm = CompileService::new(config);
    let warm_summary = run_stream(&warm, stream, 0);
    println!(
        "serve warm boot: stage_runs={} memo_served={}/{}",
        warm_summary.stage_runs, warm_summary.memo_served, warm_summary.measured
    );
    assert_eq!(
        warm_summary.stage_runs, 0,
        "warm-booted service re-ran stages: {warm_summary:?}"
    );
    assert_eq!(warm_summary.errors, 0);
    assert_eq!(warm_summary.memo_served, warm_summary.measured);
    let _ = std::fs::remove_dir_all(&dir);

    // Phase 3: hammer. A worker-pool service under concurrent identical
    // clients must coalesce; the hook holds the leader until every other
    // client has joined its flight, making `coalesced_requests > 0` a hard
    // guarantee rather than a race.
    const CLIENTS: usize = 8;
    let hammer = Arc::new(CompileService::new(ServeConfig::default().with_workers(4)));
    hammer.set_compute_hook(Some(Box::new(|probe| {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        while probe.waiters() < CLIENTS - 1 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
    })));
    let request = CompileRequest::new(&stream[0].source, OptFlags::all(), BackendKind::SpirvAsm);
    let barrier = Arc::new(Barrier::new(CLIENTS));
    let texts: Vec<Arc<str>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let hammer = Arc::clone(&hammer);
                let barrier = Arc::clone(&barrier);
                let request = request.clone();
                scope.spawn(move || {
                    barrier.wait();
                    hammer.compile(&request).unwrap().text
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    hammer.set_compute_hook(None);
    for text in &texts[1..] {
        assert_eq!(text, &texts[0], "hammered responses diverged");
    }
    let hammer_stats = hammer.stats();
    println!(
        "serve hammer: coalesced_requests={} routed_requests={}",
        hammer_stats.cache.coalesced_requests, hammer_stats.cache.routed_requests
    );
    assert!(
        hammer_stats.cache.coalesced_requests > 0,
        "concurrent identical clients did not coalesce: {hammer_stats:?}"
    );

    // Phase 4: online tune. A flag-search tenant runs on the warm-booted
    // service, so its candidate compiles land in the same memo plane the
    // replayed stream populated — and the variant it converges on is
    // afterwards served back to ordinary traffic for zero work.
    let tune_budget = 12;
    let outcome = warm
        .tune(&stream[0].source, Vendor::Arm, tune_budget)
        .expect("tune pass on the warm-booted service");
    let tuned_stats = warm.stats();
    println!(
        "serve online tune: measurements={}/{} search_compiles={} best={:?}",
        outcome.measurements_taken, tune_budget, outcome.search_compiles, outcome.best_flags
    );
    assert!(
        outcome.measurements_taken <= tune_budget,
        "tune overran its measurement budget: {outcome:?}"
    );
    assert_eq!(tuned_stats.tune_requests, 1);
    assert_eq!(tuned_stats.measurements_taken, outcome.measurements_taken);
    // Shared plane, tenant → server direction: a serving request for the
    // combination the tuner just paid for must be answered from the memo
    // without any fresh work.
    let tuned_request = CompileRequest::builder(&stream[0].source)
        .flags(outcome.best_flags)
        .backend(Vendor::Arm.backend())
        .build();
    let served = warm.compile(&tuned_request).unwrap();
    assert_eq!(
        served.work.latency(),
        0,
        "the tuned variant was not memo-served to serving traffic"
    );
    // Phase 5: analysis replay. The static report the cold service computed
    // travelled with the snapshot; the warm-booted service must answer the
    // same analysis from the persisted memo without one fresh walk.
    let replayed = warm
        .analyze(&stream[0].source, analysis_flags, Vendor::Arm)
        .expect("analysis replay on the warm-booted service");
    assert_eq!(replayed, analysis, "warm-served analysis diverged");
    let analysis_stats = warm.stats();
    println!(
        "serve analysis replay: static_analyses={} warm_analysis_hits={} lints={}",
        analysis_stats.cache.static_analyses,
        analysis_stats.cache.warm_analysis_hits,
        replayed.lints.len(),
    );
    assert_eq!(
        analysis_stats.cache.static_analyses, 0,
        "warm-booted service re-walked a persisted analysis: {analysis_stats:?}"
    );
    assert!(
        analysis_stats.cache.warm_analysis_hits > 0,
        "the replayed analysis did not come from the snapshot: {analysis_stats:?}"
    );
    println!(
        "  contract: OK (>=90% free, warm boot 0 stage runs, coalescing live, tuned variant memo-served, analysis replay 0 walks)"
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(if smoke() { 2 } else { 10 });
    targets = serve_load_benchmarks
}
criterion_main!(benches);
