//! Criterion benchmark of the corpus-level study sweep hot path: one shared
//! [`CorpusCache`](prism_core::CorpusCache) for every shader session versus
//! the pre-corpus-cache behaviour (a private cache per session).
//!
//! Besides timing both configurations, the bench asserts the properties the
//! shared cache must keep (cross-shader hits happen; results are
//! byte-identical; the shared sweep performs strictly less compile work), so
//! CI can run it as a smoke test and the hot path cannot silently regress.
//! Set `PRISM_BENCH_SMOKE=1` for the reduced CI configuration.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use prism_corpus::Corpus;
use prism_search::{run_study, StudyConfig, StudyResults};

/// Whether the reduced CI smoke configuration is requested.
fn smoke() -> bool {
    std::env::var_os("PRISM_BENCH_SMOKE").is_some()
}

/// A corpus slice dominated by übershader family members that actually share
/// IR, so the cross-shader path is exercised, plus an unrelated small shader.
fn family_corpus() -> Corpus {
    let keep: &[&str] = if smoke() {
        &["texture_combine_00", "texture_combine_01", "ui_blit_00"]
    } else {
        &[
            "texture_combine_00",
            "texture_combine_01",
            "texture_combine_02",
            "texture_combine_03",
            "ui_blit_00",
            "color_grade_01",
        ]
    };
    Corpus {
        cases: Corpus::gfxbench_like()
            .cases
            .into_iter()
            .filter(|c| keep.contains(&c.name.as_str()))
            .collect(),
    }
}

fn config(shared_cache: bool) -> StudyConfig {
    StudyConfig {
        shared_cache,
        ..StudyConfig::quick()
    }
}

fn sweep(corpus: &Corpus, shared_cache: bool) -> StudyResults {
    run_study(corpus, &config(shared_cache))
}

fn corpus_sweep_benchmarks(c: &mut Criterion) {
    let corpus = family_corpus();

    c.bench_function("study_sweep_shared_corpus_cache", |b| {
        b.iter(|| black_box(sweep(&corpus, true)))
    });
    c.bench_function("study_sweep_per_session_caches", |b| {
        b.iter(|| black_box(sweep(&corpus, false)))
    });

    consistency_report(&corpus);
}

/// One checked comparison run: the shared cache must share across shaders,
/// do strictly less compile work, and change nothing about the results.
fn consistency_report(corpus: &Corpus) {
    let ir_before = prism_ir::counters::snapshot();
    let shared = sweep(corpus, true);
    let ir_mid = prism_ir::counters::snapshot();
    let solo = sweep(corpus, false);
    let shared_ir = ir_mid.since(&ir_before);
    let solo_ir = prism_ir::counters::snapshot().since(&ir_mid);

    println!(
        "\ncorpus sweep ({} shaders):\n  shared cache: {} stage runs, {} hits ({} cross-shader, {} identity), {} emissions\n  per-session:  {} stage runs, {} hits, {} emissions\n  ir work:      shared {} clones / {} fingerprints, per-session {} clones / {} fingerprints",
        corpus.len(),
        shared.cache.stats.stage_runs,
        shared.cache.stats.stage_hits,
        shared.cache.stats.cross_shader_stage_hits,
        shared.cache.stats.identity_transitions,
        shared.cache.stats.emissions,
        solo.cache.stats.stage_runs,
        solo.cache.stats.stage_hits,
        solo.cache.stats.emissions,
        shared_ir.ir_clones,
        shared_ir.fingerprints_computed,
        solo_ir.ir_clones,
        solo_ir.fingerprints_computed,
    );

    assert!(
        shared.cache.stats.cross_shader_stage_hits > 0,
        "family sweep must share stage work across shaders: {:?}",
        shared.cache
    );
    assert!(
        shared.cache.stats.identity_transitions > 0,
        "a sweep over mostly-clean stages must take the identity fast path: {:?}",
        shared.cache
    );
    assert!(
        shared.cache.stats.stage_runs < solo.cache.stats.stage_runs,
        "shared cache must run strictly fewer stages ({} vs {})",
        shared.cache.stats.stage_runs,
        solo.cache.stats.stage_runs
    );
    assert!(
        shared.cache.stats.emissions < solo.cache.stats.emissions,
        "shared cache must emit strictly less ({} vs {})",
        shared.cache.stats.emissions,
        solo.cache.stats.emissions
    );
    assert_eq!(
        shared.shaders, solo.shaders,
        "shared cache must not change static records"
    );
    assert_eq!(
        shared.measurements, solo.measurements,
        "shared cache must not change a single measurement"
    );
    println!("  consistency: OK (results byte-identical, strictly less work)");

    warm_start_report(corpus, &shared);
}

/// Warm-start smoke check, driven by `PRISM_WARM_DIR`: the sweep re-runs
/// against a persistent snapshot directory kept across bench invocations.
/// The first invocation finds the directory empty and populates it; every
/// later invocation must warm-start from it — reporting warm hits > 0 and
/// strictly fewer stage runs/emissions than the cold sweep, with
/// byte-identical results. `PRISM_REQUIRE_WARM=1` (set on CI's second
/// invocation) turns "the directory was already populated" into a hard
/// requirement, so a silently-cold second run fails the build.
fn warm_start_report(corpus: &Corpus, cold: &StudyResults) {
    let Some(dir) = std::env::var_os("PRISM_WARM_DIR") else {
        return;
    };
    let dir = std::path::PathBuf::from(dir);
    // Specifically shard files — leftover `.shard-NN.tmp` from a crashed
    // writer or stray junk must not masquerade as a populated snapshot.
    let pre_populated = std::fs::read_dir(&dir)
        .map(|entries| {
            entries.flatten().any(|e| {
                let name = e.file_name().to_string_lossy().into_owned();
                name.starts_with("shard-") && name.ends_with(".json")
            })
        })
        .unwrap_or(false);
    let warm = run_study(
        corpus,
        &StudyConfig {
            warm_start_dir: Some(dir.clone()),
            ..config(true)
        },
    );
    let stats = &warm.cache.stats;
    println!(
        "  warm start ({}): {} entries from {} shards ({} skipped), {} warm stage hits, {} warm emission hits, {} stage runs",
        if pre_populated { "pre-populated" } else { "cold, populating" },
        stats.warm_entries_loaded,
        stats.warm_shards_loaded,
        stats.warm_shards_skipped,
        stats.warm_stage_hits,
        stats.warm_emission_hits,
        stats.stage_runs,
    );
    assert!(
        warm.warnings.is_empty(),
        "snapshot save failed: {:?}",
        warm.warnings
    );
    assert_eq!(
        warm.measurements, cold.measurements,
        "warm start must not change a single measurement"
    );
    if std::env::var_os("PRISM_REQUIRE_WARM").is_some() {
        assert!(
            pre_populated,
            "PRISM_REQUIRE_WARM set but {} held no snapshot",
            dir.display()
        );
    }
    if pre_populated {
        assert!(
            stats.warm_stage_hits > 0 && stats.warm_emission_hits > 0,
            "second run must report warm hits: {stats:?}"
        );
        assert!(
            stats.stage_runs < cold.cache.stats.stage_runs,
            "warm sweep must re-run strictly fewer stages ({} vs {})",
            stats.stage_runs,
            cold.cache.stats.stage_runs
        );
        assert!(
            stats.emissions < cold.cache.stats.emissions,
            "warm sweep must emit strictly less ({} vs {})",
            stats.emissions,
            cold.cache.stats.emissions
        );
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(if smoke() { 2 } else { 10 });
    targets = corpus_sweep_benchmarks
}
criterion_main!(benches);
