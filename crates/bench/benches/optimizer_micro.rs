//! Criterion micro-benchmarks of the offline optimizer itself (not a paper
//! figure; engineering health of the reproduction).
//!
//! The headline comparison is 256-combination variant generation: the
//! brute-force path (one full pipeline per combination, text-only dedup)
//! versus the [`CompileSession`] path (lower once, share schedule-prefix
//! snapshots, fingerprint-dedup before emission). The bench asserts the
//! session is at least 5x faster on the motivating blur shader and prints the
//! measured ratio.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use prism_core::{compile, CompileSession, OptFlags};
use prism_corpus::Corpus;
use std::time::Instant;

/// Brute-force variant generation: the pre-session hot path, kept here as the
/// benchmark baseline (one full compile per combination, dedup by text).
fn brute_force_variants(source: &prism_glsl::ShaderSource, name: &str) -> usize {
    let mut unique: Vec<std::sync::Arc<str>> = Vec::new();
    for flags in OptFlags::all_combinations() {
        let compiled = compile(source, name, flags).unwrap();
        if !unique.contains(&compiled.glsl) {
            unique.push(compiled.glsl);
        }
    }
    unique.len()
}

fn session_variants(source: &prism_glsl::ShaderSource, name: &str) -> usize {
    CompileSession::new(source, name)
        .unwrap()
        .variants()
        .unwrap()
        .unique_count()
}

fn optimizer_benchmarks(c: &mut Criterion) {
    let corpus = Corpus::gfxbench_like();
    let blur = corpus.blur9().clone();
    let big = corpus
        .cases
        .iter()
        .max_by_key(|case| case.lines_of_code())
        .expect("corpus is non-empty")
        .clone();

    c.bench_function("compile_blur_all_flags", |b| {
        b.iter(|| compile(&blur.source, &blur.name, OptFlags::all()).unwrap())
    });
    c.bench_function("compile_blur_no_flags", |b| {
        b.iter(|| compile(&blur.source, &blur.name, OptFlags::NONE).unwrap())
    });
    c.bench_function("compile_largest_shader_all_flags", |b| {
        b.iter(|| compile(&big.source, &big.name, OptFlags::all()).unwrap())
    });
    c.bench_function("session_compile_blur_all_flags", |b| {
        let session = CompileSession::new(&blur.source, &blur.name).unwrap();
        b.iter(|| session.compile(OptFlags::all()).unwrap())
    });
    c.bench_function("variants_256_brute_force_blur", |b| {
        b.iter(|| brute_force_variants(&blur.source, &blur.name))
    });
    c.bench_function("variants_256_session_blur", |b| {
        b.iter(|| session_variants(&blur.source, &blur.name))
    });
    c.bench_function("driver_compile_blur_nvidia", |b| {
        let platform = prism_gpu::Platform::new(prism_gpu::Vendor::Nvidia);
        let optimized = compile(&blur.source, &blur.name, OptFlags::all()).unwrap();
        b.iter(|| platform.submit(&optimized.glsl, &blur.name).unwrap())
    });

    speedup_report(&blur);
    ir_work_report(&blur);
}

/// Measures the zero-copy IR plane over one full 256-combination session
/// sweep. Every identity transition is a stage application that the
/// pre-transition-graph snapshot plane paid a from-scratch fingerprint, an
/// equality confirmation and a snapshot clone for; the fast path must
/// eliminate at least 30% of that would-be work (in practice it is > 90%).
fn ir_work_report(blur: &prism_corpus::ShaderCase) {
    let before = prism_ir::counters::snapshot();
    black_box(session_variants(&blur.source, &blur.name));
    let session = prism_ir::counters::snapshot().since(&before);
    let would_be = session.identity_transitions;
    println!(
        "ir work (256 combinations, {}):\n  session  {:>6} clones  {:>6} fingerprints  {:>6} equality confirms\n  identity fast path skipped {} clone+fingerprint pairs",
        blur.name,
        session.ir_clones,
        session.fingerprints_computed,
        session.equality_confirms,
        would_be,
    );
    assert!(
        session.identity_transitions > 0,
        "clean stages must take the identity fast path: {session:?}"
    );
    assert!(
        session.ir_clones * 10 <= (session.ir_clones + would_be) * 7,
        "identity fast path must avoid >= 30% of snapshot clones ({} done vs {} skipped)",
        session.ir_clones,
        would_be
    );
    assert!(
        session.fingerprints_computed * 10 <= (session.fingerprints_computed + would_be) * 7,
        "identity fast path must avoid >= 30% of fingerprints ({} done vs {} skipped)",
        session.fingerprints_computed,
        would_be
    );
}

/// Measures and prints the session-vs-brute-force ratio for full
/// 256-combination variant generation, and enforces the >= 5x target.
fn speedup_report(blur: &prism_corpus::ShaderCase) {
    let time = |f: &dyn Fn() -> usize| {
        // One warm-up, then the best of three timed runs (the metric is the
        // achievable cost, not scheduler noise).
        black_box(f());
        (0..3)
            .map(|_| {
                let start = Instant::now();
                black_box(f());
                start.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };

    let brute = time(&|| brute_force_variants(&blur.source, &blur.name));
    let session = time(&|| session_variants(&blur.source, &blur.name));
    let ratio = brute / session;
    println!(
        "\nvariant generation (256 combinations, {}):\n  brute force {:>9.3} ms\n  session     {:>9.3} ms\n  speedup     {ratio:>9.1}x",
        blur.name,
        brute * 1e3,
        session * 1e3,
    );
    assert!(
        ratio >= 5.0,
        "CompileSession must be >= 5x faster than brute force, measured {ratio:.1}x"
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = optimizer_benchmarks
}
criterion_main!(benches);
