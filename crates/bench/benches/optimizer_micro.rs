//! Criterion micro-benchmarks of the offline optimizer itself (not a paper
//! figure; engineering health of the reproduction).

use criterion::{criterion_group, criterion_main, Criterion};
use prism_core::{compile, OptFlags};
use prism_corpus::Corpus;

fn optimizer_benchmarks(c: &mut Criterion) {
    let corpus = Corpus::gfxbench_like();
    let blur = corpus.blur9().clone();
    let big = corpus
        .cases
        .iter()
        .max_by_key(|case| case.lines_of_code())
        .expect("corpus is non-empty")
        .clone();

    c.bench_function("compile_blur_all_flags", |b| {
        b.iter(|| compile(&blur.source, &blur.name, OptFlags::all()).unwrap())
    });
    c.bench_function("compile_blur_no_flags", |b| {
        b.iter(|| compile(&blur.source, &blur.name, OptFlags::NONE).unwrap())
    });
    c.bench_function("compile_largest_shader_all_flags", |b| {
        b.iter(|| compile(&big.source, &big.name, OptFlags::all()).unwrap())
    });
    c.bench_function("driver_compile_blur_nvidia", |b| {
        let platform = prism_gpu::Platform::new(prism_gpu::Vendor::Nvidia);
        let optimized = compile(&blur.source, &blur.name, OptFlags::all()).unwrap();
        b.iter(|| platform.submit(&optimized.glsl, &blur.name).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = optimizer_benchmarks
}
criterion_main!(benches);
