//! Regenerates Fig. 6: mean speed-up of the 30 most-improved shaders per
//! platform.
fn main() {
    let study = prism_bench::full_study();
    print!("{}", prism_report::fig6_top30(&study, 30));
}
