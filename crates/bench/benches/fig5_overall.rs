//! Regenerates Fig. 5: average speed-up across all shaders for the
//! per-shader-best, default-LunarGlass and best-static policies.
fn main() {
    let study = prism_bench::full_study();
    print!("{}", prism_report::fig5_overall(&study));
}
