//! Regenerates Fig. 4: corpus characterisation (lines of code, ARM static
//! cycles, unique variants per shader).
fn main() {
    let study = prism_bench::full_study();
    print!("{}", prism_report::fig4_characterization(&study));
}
