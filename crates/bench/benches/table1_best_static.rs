//! Regenerates Table I: the best static flag set per platform.
fn main() {
    let study = prism_bench::full_study();
    print!("{}", prism_report::table1_best_static(&study));
}
