//! Cross-crate integration tests: front-end → optimizer → back-end → driver →
//! cost model, exercised together the way the study uses them.

use prism::core::{compile, unique_variants, Flag, OptFlags};
use prism::emit::Backend;
use prism::glsl::ShaderSource;
use prism::gpu::{Platform, Vendor};
use prism::ir::interp::{results_approx_equal, run_fragment, FragmentContext};

fn blur_source() -> ShaderSource {
    ShaderSource::parse(prism::corpus::flagship::BLUR9).expect("blur parses")
}

/// Every one of the 256 flag combinations must preserve the blur's image
/// (within unsafe-FP tolerance) — the core correctness contract of the
/// optimizer.
#[test]
fn all_256_combinations_preserve_blur_semantics() {
    let source = blur_source();
    let reference = compile(&source, "blur", OptFlags::NONE).unwrap();
    let ctx = FragmentContext::with_defaults(&reference.ir, 0.41, 0.27);
    let want = run_fragment(&reference.ir, &ctx).unwrap();
    for flags in OptFlags::all_combinations() {
        let optimized = compile(&source, "blur", flags).unwrap();
        let ctx2 = FragmentContext::with_defaults(&optimized.ir, 0.41, 0.27);
        let got = run_fragment(&optimized.ir, &ctx2).unwrap();
        assert!(
            results_approx_equal(&want, &got, 1e-4),
            "flags {flags} changed the rendered result"
        );
    }
}

/// Optimized GLSL must re-parse with the same external interface, for every
/// corpus family representative and every flag combination the variants use.
#[test]
fn optimized_glsl_reparses_with_identical_interface() {
    let corpus = prism::corpus::Corpus::gfxbench_like();
    let representatives = [
        "flagship_blur9",
        "flagship_deferred_light",
        "forward_lit_09",
        "shadow_filter_04",
        "ssao_02",
        "water_02",
        "utility_03",
    ];
    for name in representatives {
        let case = corpus.case(name).expect("representative exists");
        let variants = unique_variants(&case.source, name).expect("variants");
        for variant in &variants.variants {
            let reparsed = ShaderSource::preprocess_and_parse(&variant.glsl, &Default::default())
                .unwrap_or_else(|e| {
                    panic!("{name} variant {} fails to re-parse: {e}", variant.index)
                });
            assert!(
                case.source.interface.same_io(&reparsed.interface),
                "{name} variant {} changed the shader interface",
                variant.index
            );
        }
    }
}

/// The motivating example's headline numbers: the fully optimized blur is
/// faster on every platform, and the phones gain more than the desktops
/// (the paper's Fig. 3 shape).
#[test]
fn blur_gains_follow_the_paper_shape() {
    use prism::emit::BackendKind;
    let source = blur_source();
    let session = prism::core::CompileSession::new(&source, "blur").expect("session");
    let flags = OptFlags::from_flags(&[
        Flag::Unroll,
        Flag::Coalesce,
        Flag::FpReassociate,
        Flag::DivToMul,
    ]);
    let mut gains = Vec::new();
    for vendor in Vendor::ALL {
        let platform = Platform::new(vendor);
        // Each driver receives its own source form: the desktops the corpus
        // text, everyone else the conversion of the (un)optimized lowering.
        let original_converted;
        let original: &str = if platform.backend() == BackendKind::DesktopGlsl {
            &source.text
        } else {
            original_converted = session.base_text_for(platform.backend());
            &original_converted
        };
        let optimized = session.text_for(flags, platform.backend()).unwrap();
        let before = platform.submit(original, "blur").unwrap().ideal_frame_ns;
        let after = platform.submit(&optimized, "blur").unwrap().ideal_frame_ns;
        let gain = (before - after) / before * 100.0;
        assert!(
            gain > 0.0,
            "{vendor}: blur must not regress, got {gain:.2}%"
        );
        gains.push((vendor, gain));
    }
    let desktop_avg = gains
        .iter()
        .filter(|(v, _)| !v.is_mobile())
        .map(|(_, g)| *g)
        .sum::<f64>()
        / Vendor::DESKTOP.len() as f64;
    let mobile_avg = gains
        .iter()
        .filter(|(v, _)| v.is_mobile())
        .map(|(_, g)| *g)
        .sum::<f64>()
        / Vendor::MOBILE.len() as f64;
    assert!(
        mobile_avg > desktop_avg,
        "mobile ({mobile_avg:.2}%) should gain more than desktop ({desktop_avg:.2}%): {gains:?}"
    );
    // AMD benefits most among desktops (its 2017 driver does not unroll).
    let amd = gains.iter().find(|(v, _)| *v == Vendor::Amd).unwrap().1;
    let nvidia = gains.iter().find(|(v, _)| *v == Vendor::Nvidia).unwrap().1;
    assert!(
        amd > nvidia,
        "AMD ({amd:.2}%) should out-gain NVIDIA ({nvidia:.2}%)"
    );
}

/// Unrolling alone is a no-op on platforms whose driver already unrolls
/// (Intel, NVIDIA) but matters where the driver does not (AMD) — the
/// mechanism behind the paper's per-flag differences.
#[test]
fn driver_maturity_decides_whether_offline_unrolling_matters() {
    let source = blur_source();
    let baseline = compile(&source, "blur", OptFlags::NONE).unwrap();
    let unrolled = compile(&source, "blur", OptFlags::only(Flag::Unroll)).unwrap();
    let gain = |vendor: Vendor| {
        let p = Platform::new(vendor);
        let before = p.submit(&baseline.glsl, "blur").unwrap().ideal_frame_ns;
        let after = p.submit(&unrolled.glsl, "blur").unwrap().ideal_frame_ns;
        (before - after) / before * 100.0
    };
    let intel = gain(Vendor::Intel);
    let nvidia = gain(Vendor::Nvidia);
    let amd = gain(Vendor::Amd);
    assert!(
        intel.abs() < 1.0,
        "Intel's driver unrolls internally: {intel:.2}%"
    );
    assert!(
        nvidia.abs() < 1.0,
        "NVIDIA's driver unrolls internally: {nvidia:.2}%"
    );
    assert!(
        amd > 3.0,
        "AMD's 2017 driver does not unroll, offline unrolling should win: {amd:.2}%"
    );
}

/// The ADCE flag does not change the generated code for representative
/// corpus shaders (the paper's Fig. 8h observation). A handful of the larger
/// übershader variants can still show textual differences through cleanup
/// ordering — see EXPERIMENTS.md — so this checks the common case rather than
/// universally quantifying over the corpus.
#[test]
fn adce_never_changes_generated_code() {
    let corpus = prism::corpus::Corpus::gfxbench_like();
    for name in [
        "flagship_blur9",
        "flagship_tonemap",
        "ui_blit_00",
        "ssao_01",
        "water_00",
        "particle_02",
    ] {
        let case = corpus.case(name).expect("case exists");
        let variants = unique_variants(&case.source, name).expect("variants");
        assert!(
            !variants.flag_changes_code(Flag::Adce),
            "{name}: ADCE should never change the output"
        );
    }
}

/// The number of distinct variants stays far below 256 and simple shaders
/// produce almost none (Fig. 4c).
#[test]
fn variant_counts_match_figure_4c_shape() {
    let corpus = prism::corpus::Corpus::gfxbench_like();
    let count = |name: &str| {
        let case = corpus.case(name).expect("case exists");
        unique_variants(&case.source, name)
            .expect("variants")
            .unique_count()
    };
    let simple = count("ui_blit_00");
    let blur = count("flagship_blur9");
    let lit = count("forward_lit_09");
    assert!(
        simple <= 6,
        "trivial shader should have almost no variants: {simple}"
    );
    assert!(blur > simple);
    assert!(blur <= 64, "even the blur stays well under 256: {blur}");
    assert!(lit <= 64, "übershader variants stay bounded: {lit}");
}

/// The GLES re-emission path used for the phones keeps the interface intact
/// but produces genuinely different text (the paper's §III-C(d) artefacts).
#[test]
fn mobile_conversion_differs_but_keeps_interface() {
    let source = blur_source();
    let compiled = compile(&source, "blur", OptFlags::lunarglass_default()).unwrap();
    let desktop = prism::emit::emit_glsl(&compiled.ir);
    let mobile = prism::emit::Gles.emit(&compiled.ir);
    assert_ne!(desktop, mobile);
    let reparsed = ShaderSource::preprocess_and_parse(&mobile, &Default::default()).unwrap();
    assert!(source.interface.same_io(&reparsed.interface));
}
