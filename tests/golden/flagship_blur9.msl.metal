#include <metal_stdlib>
using namespace metal;

struct main0_in
{
    float2 uv [[user(locn0)]];
};

struct main0_out
{
    float4 fragColor [[color(0)]];
};

constant float4 weights[9] = { float4(0.01, 0.01, 0.01, 0.01), float4(0.03, 0.03, 0.03, 0.03), float4(0.15, 0.15, 0.15, 0.15), float4(0.42, 0.42, 0.42, 0.42), float4(0.63, 0.63, 0.63, 0.63), float4(0.42, 0.42, 0.42, 0.42), float4(0.15, 0.15, 0.15, 0.15), float4(0.03, 0.03, 0.03, 0.03), float4(0.01, 0.01, 0.01, 0.01) };
constant float2 offsets[9] = { float2(-0.0083, -0.0083), float2(-0.0062, -0.0062), float2(-0.0042, -0.0042), float2(-0.0021, -0.0021), float2(0.0, 0.0), float2(0.0021, 0.0021), float2(0.0042, 0.0042), float2(0.0062, 0.0062), float2(0.0083, 0.0083) };
fragment main0_out main0(main0_in in [[stage_in]], constant float4& ambient [[buffer(0)]], texture2d<float> tex [[texture(0)]], sampler texSmplr [[sampler(0)]])
{
    main0_out out = {};
    float2 v8 = (in.uv + float2(-0.0083, -0.0083));
    float4 v9 = tex.sample(texSmplr, v8);
    float4 v10 = (float4(0.01, 0.01, 0.01, 0.01) * v9);
    float4 v12 = (v10 * float4(3.0, 3.0, 3.0, 3.0));
    float4 v13 = (v12 * ambient);
    float2 v8_1 = (in.uv + float2(-0.0062, -0.0062));
    float4 v9_1 = tex.sample(texSmplr, v8_1);
    float4 v10_1 = (float4(0.03, 0.03, 0.03, 0.03) * v9_1);
    float4 v12_1 = (v10_1 * float4(3.0, 3.0, 3.0, 3.0));
    float4 v13_1 = (v12_1 * ambient);
    float4 fragColor_1 = (v13 + v13_1);
    float2 v8_2 = (in.uv + float2(-0.0042, -0.0042));
    float4 v9_2 = tex.sample(texSmplr, v8_2);
    float4 v10_2 = (float4(0.15, 0.15, 0.15, 0.15) * v9_2);
    float4 v12_2 = (v10_2 * float4(3.0, 3.0, 3.0, 3.0));
    float4 v13_2 = (v12_2 * ambient);
    float4 fragColor_2 = (fragColor_1 + v13_2);
    float2 v8_3 = (in.uv + float2(-0.0021, -0.0021));
    float4 v9_3 = tex.sample(texSmplr, v8_3);
    float4 v10_3 = (float4(0.42, 0.42, 0.42, 0.42) * v9_3);
    float4 v12_3 = (v10_3 * float4(3.0, 3.0, 3.0, 3.0));
    float4 v13_3 = (v12_3 * ambient);
    float4 fragColor_3 = (fragColor_2 + v13_3);
    float4 v9_4 = tex.sample(texSmplr, in.uv);
    float4 v10_4 = (float4(0.63, 0.63, 0.63, 0.63) * v9_4);
    float4 v12_4 = (v10_4 * float4(3.0, 3.0, 3.0, 3.0));
    float4 v13_4 = (v12_4 * ambient);
    float4 fragColor_4 = (fragColor_3 + v13_4);
    float2 v8_4 = (in.uv + float2(0.0021, 0.0021));
    float4 v9_5 = tex.sample(texSmplr, v8_4);
    float4 v10_5 = (float4(0.42, 0.42, 0.42, 0.42) * v9_5);
    float4 v12_5 = (v10_5 * float4(3.0, 3.0, 3.0, 3.0));
    float4 v13_5 = (v12_5 * ambient);
    float4 fragColor_5 = (fragColor_4 + v13_5);
    float2 v8_5 = (in.uv + float2(0.0042, 0.0042));
    float4 v9_6 = tex.sample(texSmplr, v8_5);
    float4 v10_6 = (float4(0.15, 0.15, 0.15, 0.15) * v9_6);
    float4 v12_6 = (v10_6 * float4(3.0, 3.0, 3.0, 3.0));
    float4 v13_6 = (v12_6 * ambient);
    float4 fragColor_6 = (fragColor_5 + v13_6);
    float2 v8_6 = (in.uv + float2(0.0062, 0.0062));
    float4 v9_7 = tex.sample(texSmplr, v8_6);
    float4 v10_7 = (float4(0.03, 0.03, 0.03, 0.03) * v9_7);
    float4 v12_7 = (v10_7 * float4(3.0, 3.0, 3.0, 3.0));
    float4 v13_7 = (v12_7 * ambient);
    float4 fragColor_7 = (fragColor_6 + v13_7);
    float2 v8_7 = (in.uv + float2(0.0083, 0.0083));
    float4 v9_8 = tex.sample(texSmplr, v8_7);
    float4 v10_8 = (float4(0.01, 0.01, 0.01, 0.01) * v9_8);
    float4 v12_8 = (v10_8 * float4(3.0, 3.0, 3.0, 3.0));
    float4 v13_8 = (v12_8 * ambient);
    float4 fragColor_8 = (fragColor_7 + v13_8);
    float4 fragColor_9 = (fragColor_8 / float4(1.8499999999999999, 1.8499999999999999, 1.8499999999999999, 1.8499999999999999));
    out.fragColor = fragColor_9;
    return out;
}
