#version 450
in vec2 uv;
out vec4 fragColor;
uniform vec4 ambient;
uniform sampler2D tex;
const vec4 weights[9] = vec4[](
    vec4(0.01, 0.01, 0.01, 0.01),
    vec4(0.03, 0.03, 0.03, 0.03),
    vec4(0.15, 0.15, 0.15, 0.15),
    vec4(0.42, 0.42, 0.42, 0.42),
    vec4(0.63, 0.63, 0.63, 0.63),
    vec4(0.42, 0.42, 0.42, 0.42),
    vec4(0.15, 0.15, 0.15, 0.15),
    vec4(0.03, 0.03, 0.03, 0.03),
    vec4(0.01, 0.01, 0.01, 0.01)
);
const vec2 offsets[9] = vec2[](
    vec2(-0.0083, -0.0083),
    vec2(-0.0062, -0.0062),
    vec2(-0.0042, -0.0042),
    vec2(-0.0021, -0.0021),
    vec2(0.0, 0.0),
    vec2(0.0021, 0.0021),
    vec2(0.0042, 0.0042),
    vec2(0.0062, 0.0062),
    vec2(0.0083, 0.0083)
);
void main()
{
    vec2 v8 = (uv + vec2(-0.0083, -0.0083));
    vec4 v9 = texture(tex, v8);
    vec4 v10 = (vec4(0.01, 0.01, 0.01, 0.01) * v9);
    vec4 v12 = (v10 * vec4(3.0, 3.0, 3.0, 3.0));
    vec4 v13 = (v12 * ambient);
    vec2 v8_1 = (uv + vec2(-0.0062, -0.0062));
    vec4 v9_1 = texture(tex, v8_1);
    vec4 v10_1 = (vec4(0.03, 0.03, 0.03, 0.03) * v9_1);
    vec4 v12_1 = (v10_1 * vec4(3.0, 3.0, 3.0, 3.0));
    vec4 v13_1 = (v12_1 * ambient);
    vec4 fragColor_1 = (v13 + v13_1);
    vec2 v8_2 = (uv + vec2(-0.0042, -0.0042));
    vec4 v9_2 = texture(tex, v8_2);
    vec4 v10_2 = (vec4(0.15, 0.15, 0.15, 0.15) * v9_2);
    vec4 v12_2 = (v10_2 * vec4(3.0, 3.0, 3.0, 3.0));
    vec4 v13_2 = (v12_2 * ambient);
    vec4 fragColor_2 = (fragColor_1 + v13_2);
    vec2 v8_3 = (uv + vec2(-0.0021, -0.0021));
    vec4 v9_3 = texture(tex, v8_3);
    vec4 v10_3 = (vec4(0.42, 0.42, 0.42, 0.42) * v9_3);
    vec4 v12_3 = (v10_3 * vec4(3.0, 3.0, 3.0, 3.0));
    vec4 v13_3 = (v12_3 * ambient);
    vec4 fragColor_3 = (fragColor_2 + v13_3);
    vec4 v9_4 = texture(tex, uv);
    vec4 v10_4 = (vec4(0.63, 0.63, 0.63, 0.63) * v9_4);
    vec4 v12_4 = (v10_4 * vec4(3.0, 3.0, 3.0, 3.0));
    vec4 v13_4 = (v12_4 * ambient);
    vec4 fragColor_4 = (fragColor_3 + v13_4);
    vec2 v8_4 = (uv + vec2(0.0021, 0.0021));
    vec4 v9_5 = texture(tex, v8_4);
    vec4 v10_5 = (vec4(0.42, 0.42, 0.42, 0.42) * v9_5);
    vec4 v12_5 = (v10_5 * vec4(3.0, 3.0, 3.0, 3.0));
    vec4 v13_5 = (v12_5 * ambient);
    vec4 fragColor_5 = (fragColor_4 + v13_5);
    vec2 v8_5 = (uv + vec2(0.0042, 0.0042));
    vec4 v9_6 = texture(tex, v8_5);
    vec4 v10_6 = (vec4(0.15, 0.15, 0.15, 0.15) * v9_6);
    vec4 v12_6 = (v10_6 * vec4(3.0, 3.0, 3.0, 3.0));
    vec4 v13_6 = (v12_6 * ambient);
    vec4 fragColor_6 = (fragColor_5 + v13_6);
    vec2 v8_6 = (uv + vec2(0.0062, 0.0062));
    vec4 v9_7 = texture(tex, v8_6);
    vec4 v10_7 = (vec4(0.03, 0.03, 0.03, 0.03) * v9_7);
    vec4 v12_7 = (v10_7 * vec4(3.0, 3.0, 3.0, 3.0));
    vec4 v13_7 = (v12_7 * ambient);
    vec4 fragColor_7 = (fragColor_6 + v13_7);
    vec2 v8_7 = (uv + vec2(0.0083, 0.0083));
    vec4 v9_8 = texture(tex, v8_7);
    vec4 v10_8 = (vec4(0.01, 0.01, 0.01, 0.01) * v9_8);
    vec4 v12_8 = (v10_8 * vec4(3.0, 3.0, 3.0, 3.0));
    vec4 v13_8 = (v12_8 * ambient);
    vec4 fragColor_8 = (fragColor_7 + v13_8);
    vec4 fragColor_9 = (fragColor_8 / vec4(1.8499999999999999, 1.8499999999999999, 1.8499999999999999, 1.8499999999999999));
    fragColor = fragColor_9;
}
