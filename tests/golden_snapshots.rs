//! Golden-snapshot tests for the flagship (blur) shader: one committed
//! expected-output file per emission backend under `tests/golden/`.
//!
//! Emitter drift — a renamed temporary, a reordered declaration, a changed
//! SPIR-V opcode spelling — surfaces here as a readable line diff instead of
//! an unexplained downstream study change. After an *intentional* emitter
//! change, regenerate the snapshots:
//!
//! ```text
//! PRISM_BLESS=1 cargo test --test golden_snapshots
//! ```
//!
//! and commit the updated files under `tests/golden/`.

use prism::core::{CompileSession, OptFlags};
use prism::corpus::Corpus;
use prism::emit::BackendKind;
use std::path::PathBuf;

/// The flag combination the snapshots pin: the LunarGlass default policy,
/// the study's most-reported configuration.
fn snapshot_flags() -> OptFlags {
    OptFlags::lunarglass_default()
}

/// `tests/golden/flagship_blur9.<backend>.<ext>`.
fn golden_path(backend: BackendKind) -> PathBuf {
    let ext = match backend {
        BackendKind::DesktopGlsl | BackendKind::Gles => "glsl",
        BackendKind::SpirvAsm => "spvasm",
        BackendKind::Msl => "metal",
    };
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("flagship_blur9.{}.{ext}", backend.name()))
}

/// First differing line of two texts, for a readable failure message.
fn first_diff(expected: &str, actual: &str) -> String {
    for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
        if e != a {
            return format!("line {}:\n  expected: {e}\n  actual:   {a}", i + 1);
        }
    }
    format!(
        "line count differs: expected {} lines, actual {}",
        expected.lines().count(),
        actual.lines().count()
    )
}

#[test]
fn blur_emission_matches_the_committed_goldens_for_every_backend() {
    let corpus = Corpus::gfxbench_like();
    let case = corpus.blur9();
    let session = CompileSession::new(&case.source, &case.name).expect("blur session");
    let bless = std::env::var_os("PRISM_BLESS").is_some();
    for backend in BackendKind::ALL {
        let text = session.text_for(snapshot_flags(), backend).unwrap();
        let path = golden_path(backend);
        if bless {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, text.as_bytes()).unwrap();
            continue;
        }
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden {} ({e}) — regenerate with PRISM_BLESS=1 cargo test --test golden_snapshots",
                path.display()
            )
        });
        assert_eq!(
            expected,
            *text,
            "{backend} emission drifted from {} — first diff at {}\n\
             (intentional? regenerate with PRISM_BLESS=1 cargo test --test golden_snapshots)",
            path.display(),
            first_diff(&expected, &text)
        );
    }
}

/// The goldens themselves stay honest: each committed file must still parse
/// with its backend's consuming front-end and expose the blur's interface.
#[test]
fn committed_goldens_parse_with_their_front_ends() {
    if std::env::var_os("PRISM_BLESS").is_some() {
        return;
    }
    let mut interfaces = Vec::new();
    for backend in BackendKind::ALL {
        let path = golden_path(backend);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
        let iface = prism::emit::source_interface(backend, &text)
            .unwrap_or_else(|e| panic!("golden {} does not parse: {e}", path.display()));
        interfaces.push(iface);
    }
    for iface in &interfaces[1..] {
        assert!(iface.same_io(&interfaces[0]));
    }
}
