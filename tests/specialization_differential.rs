//! Specialization differential suite: every uniform-value specialization the
//! corpus can generate is semantically checked against the general program.
//!
//! For every corpus shader, a deterministic FNV-sampled set of flag
//! combinations, and every candidate assumption (`uniform = 0` / `= 1` per
//! float uniform), the suite builds the guarded dispatch and differentially
//! executes both sides with the reference interpreter:
//!
//! * on inputs **violating** the assumption the guard must fail and the
//!   dispatch must produce the general program's output bit-for-bit;
//! * on inputs **holding** the assumption the specialized program itself
//!   must agree with the general program bit-for-bit.
//!
//! A divergence anywhere is a test failure, never a skip — the axis admits
//! zero silent disagreements. The suite also pins that specialized variants
//! ride the same transition/emission planes as the flag axis: a session
//! behind the shared corpus cache reproduces the cold session's specialized
//! fingerprints and texts byte-for-byte.

use prism::core::specialize::{candidate_keys, default_probe_points, verify_specialization};
use prism::core::{spec_counters, CacheStore, CompileSession, CorpusCache, OptFlags};
use prism::corpus::Corpus;
use std::sync::Arc;

/// FNV-1a 64-bit — the deterministic per-shader seed for flag sampling.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// A deterministic sample of flag combinations per shader: the no-flag
/// baseline, the LunarGlass default, and a shader-dependent mask — stable
/// across runs, different across shaders, so the corpus covers the
/// flags × assumptions space without exhaustive cost.
fn sampled_flags(name: &str) -> Vec<OptFlags> {
    let seed = fnv64(name.as_bytes());
    let mut flags = vec![
        OptFlags::NONE,
        OptFlags::lunarglass_default(),
        OptFlags::from_bits((seed & 0xFF) as u8),
    ];
    flags.dedup();
    flags
}

/// Candidates probed per shader; every float uniform's zero/one assumptions
/// up to this bound.
const KEYS_PER_SHADER: usize = 4;

#[test]
fn every_corpus_specialization_is_interp_verified_in_both_guard_directions() {
    let corpus = Corpus::gfxbench_like();
    let probes = default_probe_points();
    let before = spec_counters();
    let mut dispatches = 0usize;
    let mut effective = 0usize;
    let mut confirms = 0usize;
    for case in &corpus.cases {
        let session = CompileSession::new(&case.source, &case.name).expect("session");
        let keys = candidate_keys(session.base_ir(), KEYS_PER_SHADER);
        for flags in sampled_flags(&case.name) {
            for key in &keys {
                let dispatch =
                    match session.dispatch_for(flags, key, prism::emit::BackendKind::DesktopGlsl) {
                        Ok(dispatch) => dispatch,
                        // The key does not apply to this shader (type mismatch);
                        // that is a clean rejection, not a correctness question.
                        Err(_) => continue,
                    };
                dispatches += 1;
                if dispatch.is_effective() {
                    effective += 1;
                }
                // Divergence = failure. Ineffective dispatches are verified
                // too: the guard must still route correctly.
                let v = verify_specialization(&dispatch, &probes).unwrap_or_else(|d| {
                    panic!(
                        "{}: flags {flags}: specialization diverges: {}",
                        case.name, d.message
                    )
                });
                assert_eq!(
                    v.confirms,
                    probes.len() * 2,
                    "{}: flags {flags}, [{key}]: both guard directions on every probe",
                    case.name
                );
                confirms += v.confirms;
            }
        }
    }
    assert!(dispatches > 0, "the corpus must admit specializations");
    assert!(
        effective > 0,
        "zero/one folds must change code somewhere in the corpus"
    );
    // The counters the perf gate tracks moved with this suite's work.
    let delta = spec_counters().since(&before);
    assert!(delta.specializations_generated > 0, "{delta:?}");
    assert_eq!(delta.spec_interp_confirms, confirms, "{delta:?}");
}

/// Specialized variants share the transition and emission planes: a session
/// behind the shared corpus cache answers with the cold session's
/// fingerprints and texts, byte-for-byte, for every applicable assumption.
#[test]
fn specialized_compiles_agree_cold_vs_shared_cache() {
    let corpus = Corpus::gfxbench_like().subset(&["flagship_blur9", "ui_blit_00", "ui_blit_02"]);
    let shared_cache = Arc::new(CorpusCache::new());
    let flags = OptFlags::lunarglass_default();
    for case in &corpus.cases {
        let cold = CompileSession::new(&case.source, &case.name).expect("cold session");
        let shared = CompileSession::with_cache_in_family(
            &case.source,
            &case.name,
            &case.family,
            shared_cache.clone() as Arc<dyn CacheStore>,
        )
        .expect("shared session");
        for key in candidate_keys(cold.base_ir(), KEYS_PER_SHADER) {
            let fp_cold = match cold.specialized_fingerprint(flags, &key) {
                Ok(fp) => fp,
                Err(_) => continue,
            };
            let fp_shared = shared.specialized_fingerprint(flags, &key).unwrap();
            assert_eq!(
                fp_cold, fp_shared,
                "{}: [{key}] specialized fingerprint diverges cold vs shared",
                case.name
            );
            for backend in prism::emit::BackendKind::ALL {
                let cold_text = cold.text_for_spec(flags, &key, backend).unwrap();
                let shared_text = shared.text_for_spec(flags, &key, backend).unwrap();
                assert_eq!(
                    *cold_text, *shared_text,
                    "{}: [{key}] backend {backend}: shared cache changed the specialized text",
                    case.name
                );
            }
        }
    }
    // The specialized bases and their downstream stages were interned in the
    // shared store — the second session's walks must have hit it.
    let stats = shared_cache.stats();
    assert!(stats.stage_hits > 0, "{stats:?}");
}
