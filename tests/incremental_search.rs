//! End-to-end tests of the incremental flag-search subsystem: strategies
//! running against live sessions reach the quality bar (≥ the LunarGlass
//! default policy) at a fraction of the exhaustive compile cost, budgets are
//! hard, bounded caches change nothing about the measurements, the new
//! records survive the JSON round trip, the bandit strategies' regret curves
//! converge, and the measurement-in-the-loop tune tenant reaches the same
//! bar through a shared [`CompileService`] without re-emitting variants the
//! serving plane already paid for.

use prism::core::OptFlags;
use prism::corpus::Corpus;
use prism::gpu::Vendor;
use prism::report;
use prism::search::{
    run_study, standard_strategies, static_agreement_rows, SearchConfig, StudyConfig, StudyResults,
};
use prism::serve::{CompileRequest, CompileService, ServeConfig, TuneSpec};

/// The strategy names the shipped set exposes, derived from the set itself
/// so a renamed strategy fails here rather than silently testing nothing.
fn strategy_names() -> Vec<&'static str> {
    standard_strategies(&SearchConfig::default())
        .iter()
        .map(|s| s.name())
        .collect()
}

/// A corpus slice mixing the blur flagship (real optimization headroom) with
/// übershader family members (cache sharing) and simple shaders.
fn mini_corpus() -> Corpus {
    Corpus::family_mix()
}

fn search_config() -> StudyConfig {
    StudyConfig {
        search: Some(SearchConfig::default()),
        ..StudyConfig::quick()
    }
}

#[test]
fn strategies_meet_the_default_policy_below_a_quarter_of_the_compile_cost() {
    let study = run_study(&mini_corpus(), &search_config());
    assert_eq!(study.platforms().len(), 7);

    // 7 platforms x 4 strategies.
    assert_eq!(study.search.len(), 7 * strategy_names().len());
    for vendor in study.platforms() {
        for strategy in strategy_names() {
            let row = study
                .search
                .iter()
                .find(|r| r.vendor == vendor && r.strategy == strategy)
                .unwrap_or_else(|| panic!("missing search row {vendor}/{strategy}"));
            assert_eq!(row.shaders, 5);

            // Hard budget, and strictly fewer compilations than the
            // exhaustive 256 — in fact under a quarter of them.
            assert!(
                row.max_compiles <= row.budget,
                "{vendor}/{strategy} exceeded its budget: {row:?}"
            );
            assert!(
                row.mean_compiles < 64.0,
                "{vendor}/{strategy} should compile < 25% of 256: {row:?}"
            );

            // Never better than the oracle (sanity of the comparison).
            assert!(
                row.mean_speedup <= row.oracle_mean_speedup + 1e-9,
                "{vendor}/{strategy} beat the exhaustive oracle: {row:?}"
            );

            // The paper-grade quality bar: greedy and ablation searches must
            // match or beat the default LunarGlass policy everywhere.
            if strategy != "hill_climb" {
                assert!(
                    row.mean_speedup >= row.default_mean_speedup - 1e-9,
                    "{vendor}/{strategy} lost to the default flags: {row:?}"
                );
            }
        }
    }
}

#[test]
fn bandit_regret_curves_converge_within_a_quarter_of_the_exhaustive_cost() {
    let study = run_study(&mini_corpus(), &search_config());
    for vendor in study.platforms() {
        for bandit in ["epsilon_greedy", "ucb1"] {
            let row = study
                .search
                .iter()
                .find(|r| r.vendor == vendor && r.strategy == bandit)
                .unwrap_or_else(|| panic!("missing bandit row {vendor}/{bandit}"));

            // ≤ 25% of the exhaustive 256 combinations, and ≥ the default
            // LunarGlass policy — the online strategies must clear the same
            // bar as the offline ones.
            assert!(
                row.max_compiles <= 64,
                "{vendor}/{bandit} spent over a quarter of the exhaustive cost: {row:?}"
            );
            assert!(
                row.mean_speedup >= row.default_mean_speedup - 1e-9,
                "{vendor}/{bandit} lost to the default flags: {row:?}"
            );

            // The regret curve is present, aligned with its checkpoints,
            // anchored at the budget, non-increasing (each extra measurement
            // can only improve the anytime deployment in oracle mode), and
            // consistent with the reported final regret.
            assert_eq!(row.regret_checkpoints.len(), row.mean_regret.len());
            assert!(!row.mean_regret.is_empty(), "{vendor}/{bandit}: {row:?}");
            assert_eq!(*row.regret_checkpoints.last().unwrap(), row.budget);
            for pair in row.mean_regret.windows(2) {
                assert!(
                    pair[1] <= pair[0] + 1e-9,
                    "{vendor}/{bandit} regret increased along the curve: {row:?}"
                );
            }
            assert!(row.regret_final >= 0.0);
            assert!((row.regret_final - row.mean_regret.last().unwrap()).abs() < 1e-12);
        }
    }
}

#[test]
fn live_tune_tenant_matches_the_default_policy_on_every_platform() {
    let corpus = mini_corpus();
    let study = run_study(&corpus, &search_config());

    // One service carries the whole sweep: every tune pass shares its memo
    // plane (and its best-known warm starts) with every other.
    let tune_all = || {
        let service = CompileService::new(ServeConfig::default());
        let mut outcomes = Vec::new();
        for vendor in Vendor::ALL {
            for case in &corpus.cases {
                let spec = TuneSpec::new(vendor).with_budget(16).with_family(format!(
                    "{}:{}",
                    case.family,
                    vendor.name()
                ));
                let outcome = service
                    .tune_spec(&case.source.text, &spec, None)
                    .unwrap_or_else(|e| panic!("{:?}/{} tune failed: {e}", vendor, case.name));
                outcomes.push((vendor.name(), case.name.clone(), outcome));
            }
        }
        outcomes
    };
    let outcomes = tune_all();
    assert_eq!(outcomes, tune_all(), "the tune sweep must be deterministic");

    // Score each live pass's chosen flags on the exhaustive study record for
    // the same (shader, platform): per platform, the mean tuned speedup must
    // match or beat the default policy, at ≤ 25% of the exhaustive cost.
    for vendor in Vendor::ALL {
        let mut tuned_sum = 0.0;
        let mut default_sum = 0.0;
        let mut shaders = 0;
        for (v, shader, outcome) in &outcomes {
            if *v != vendor.name() {
                continue;
            }
            assert!(
                outcome.measurements_taken <= 16,
                "{vendor:?}/{shader} overran its measurement budget: {outcome:?}"
            );
            let record = study
                .measurements
                .iter()
                .find(|r| r.shader == *shader && r.vendor == vendor.name())
                .unwrap_or_else(|| panic!("study is missing {vendor:?}/{shader}"));
            tuned_sum += record.speedup_vs_original(outcome.best_flags);
            default_sum += record.speedup_vs_original(OptFlags::lunarglass_default());
            shaders += 1;
        }
        assert_eq!(shaders, corpus.cases.len());
        assert!(
            tuned_sum >= default_sum - 1e-9,
            "live tuning lost to the default policy on {vendor:?}: tuned {:.3} vs default {:.3}",
            tuned_sum / shaders as f64,
            default_sum / shaders as f64
        );
    }
}

#[test]
fn tune_pass_never_re_emits_a_variant_the_serving_plane_already_paid_for() {
    let corpus = mini_corpus();
    let case = corpus
        .cases
        .iter()
        .find(|c| c.name == "flagship_blur9")
        .expect("mini corpus carries the blur flagship");
    let service = CompileService::new(ServeConfig::default());
    let backend = Vendor::Amd.backend();

    // Serving traffic covers the entire flag space for this (shader,
    // backend): every (fingerprint, flags, backend) triple the tuner could
    // possibly request is already in the shared memo.
    for bits in 0..=u8::MAX {
        let request = CompileRequest::builder(&case.source.text)
            .flags(OptFlags::from_bits(bits))
            .backend(backend)
            .build();
        service.compile(&request).expect("serving compile");
    }
    let before = service.stats();
    assert!(before.cache.emissions > 0);

    let outcome = service.tune(&case.source.text, Vendor::Amd, 16).unwrap();
    let after = service.stats();
    assert!(outcome.measurements_taken <= 16);
    // The memo-sharing acceptance bar: zero duplicate emissions for
    // already-served triples — the whole tune pass is answered by the plane
    // serving traffic warmed.
    assert_eq!(
        after.cache.emissions, before.cache.emissions,
        "the tuner re-emitted an already-served variant"
    );
    assert!(
        after.cache.emission_hits > before.cache.emission_hits,
        "the tuner's compiles never touched the shared emission memo"
    );
    assert_eq!(after.tune_requests, 1);
    assert_eq!(after.measurements_taken, outcome.measurements_taken);
}

/// Tentpole acceptance: on the flagship blur tune, the static prefilter cuts
/// the scarce resource — timing measurements — by at least a quarter across
/// the 7 platforms, and the flags it deploys still match or beat the default
/// LunarGlass policy on every platform's exhaustive record (the warm-start
/// and default arms are always truly measured, so the quality floor cannot
/// be pruned away).
#[test]
fn static_prefilter_cuts_flagship_measurements_by_a_quarter_without_losing_quality() {
    let corpus = mini_corpus();
    let case = corpus
        .cases
        .iter()
        .find(|c| c.name == "flagship_blur9")
        .expect("mini corpus carries the blur flagship");
    let study = run_study(&corpus, &StudyConfig::quick());

    let mut baseline_measurements = 0usize;
    let mut prefilter_measurements = 0usize;
    for vendor in Vendor::ALL {
        // Fresh services so both modes tune from the same cold start.
        let baseline = CompileService::new(ServeConfig::default())
            .tune_spec(
                &case.source.text,
                &TuneSpec::new(vendor).with_budget(16),
                None,
            )
            .unwrap();
        let service = CompileService::new(ServeConfig::default());
        let filtered = service
            .tune_spec(
                &case.source.text,
                &TuneSpec::new(vendor)
                    .with_budget(16)
                    .with_static_prefilter(true),
                None,
            )
            .unwrap();
        assert_eq!(baseline.candidates_pruned, 0);
        assert_eq!(
            filtered.search_compiles,
            filtered.measurements_taken + filtered.candidates_pruned,
            "{vendor:?}: every evaluated arm is measured or pruned: {filtered:?}"
        );
        assert_eq!(
            service.stats().search_candidates_pruned,
            filtered.candidates_pruned
        );
        baseline_measurements += baseline.measurements_taken;
        prefilter_measurements += filtered.measurements_taken;

        // Quality: scored on the exhaustive record, the prefiltered tune
        // still matches or beats the default policy on this platform.
        let record = study
            .measurements
            .iter()
            .find(|r| r.shader == case.name && r.vendor == vendor.name())
            .unwrap_or_else(|| panic!("study is missing {vendor:?}/{}", case.name));
        let tuned = record.speedup_vs_original(filtered.best_flags);
        let default = record.speedup_vs_original(OptFlags::lunarglass_default());
        assert!(
            tuned >= default - 1e-9,
            "{vendor:?}: prefiltered tune lost to the default policy: tuned {tuned:.3} vs default {default:.3}"
        );
    }
    assert!(
        (prefilter_measurements as f64) <= 0.75 * baseline_measurements as f64,
        "prefilter saved too little: {prefilter_measurements} of {baseline_measurements} measurements"
    );
}

/// The `fig_static` table covers every platform for the measured corpus, its
/// agreements are well-formed, and the static model's ranking is better than
/// antagonistic on average (otherwise the prefilter would be unsafe).
#[test]
fn fig_static_scores_rank_agreement_on_all_seven_platforms() {
    let corpus = mini_corpus();
    let study = run_study(&corpus, &StudyConfig::quick());
    let rows = static_agreement_rows(&corpus, &study);
    assert!(!rows.is_empty());
    for vendor in Vendor::ALL {
        assert!(
            rows.iter().any(|r| r.vendor == vendor.name()),
            "fig_static is missing platform {vendor:?}"
        );
    }
    for row in &rows {
        assert!(row.variants >= 2, "{row:?}");
        assert!((0.0..=1.0).contains(&row.agreement), "{row:?}");
        assert!(row.footrule >= 0.0, "{row:?}");
    }
    let mean = rows.iter().map(|r| r.agreement).sum::<f64>() / rows.len() as f64;
    assert!(
        mean > 0.5,
        "static ranking is worse than a coin flip on average: {mean:.3}"
    );

    let text = report::fig_static(&rows);
    assert!(text.contains("Static cost model"), "{text}");
    for vendor in Vendor::ALL {
        assert!(text.contains(vendor.name()), "{text}");
    }
}

#[test]
fn search_results_are_deterministic_across_runs() {
    let a = run_study(&mini_corpus(), &search_config());
    let b = run_study(&mini_corpus(), &search_config());
    assert_eq!(a.search, b.search);
}

#[test]
fn bounded_cache_reproduces_unbounded_study_results_byte_for_byte() {
    let corpus = mini_corpus();
    let unbounded = run_study(&corpus, &search_config());
    let bounded = run_study(
        &corpus,
        &StudyConfig {
            cache_budget: Some(64),
            ..search_config()
        },
    );
    // Eviction only ever forces recomputation, so every measured number —
    // and therefore every search row — is identical.
    assert_eq!(bounded.shaders, unbounded.shaders);
    assert_eq!(bounded.measurements, unbounded.measurements);
    assert_eq!(bounded.skipped, unbounded.skipped);
    assert_eq!(bounded.search, unbounded.search);
}

#[test]
fn search_rows_round_trip_json_and_render() {
    let study = run_study(&mini_corpus(), &search_config());
    let restored = StudyResults::from_json(&study.to_json().unwrap()).unwrap();
    assert_eq!(restored.search, study.search);

    let fig10 = report::fig10_incremental(&restored);
    for strategy in strategy_names() {
        assert!(
            fig10.contains(strategy),
            "fig10 missing {strategy}:\n{fig10}"
        );
    }
    assert!(report::render_all(&restored, "flagship_blur9").contains("Figure 10"));
}
