//! End-to-end tests of the incremental flag-search subsystem: strategies
//! running against live sessions reach the quality bar (≥ the LunarGlass
//! default policy) at a fraction of the exhaustive compile cost, budgets are
//! hard, bounded caches change nothing about the measurements, and the new
//! records survive the JSON round trip.

use prism::corpus::Corpus;
use prism::report;
use prism::search::{run_study, standard_strategies, SearchConfig, StudyConfig, StudyResults};

/// The strategy names the shipped set exposes, derived from the set itself
/// so a renamed strategy fails here rather than silently testing nothing.
fn strategy_names() -> Vec<&'static str> {
    standard_strategies(&SearchConfig::default())
        .iter()
        .map(|s| s.name())
        .collect()
}

/// A corpus slice mixing the blur flagship (real optimization headroom) with
/// übershader family members (cache sharing) and simple shaders.
fn mini_corpus() -> Corpus {
    Corpus::family_mix()
}

fn search_config() -> StudyConfig {
    StudyConfig {
        search: Some(SearchConfig::default()),
        ..StudyConfig::quick()
    }
}

#[test]
fn strategies_meet_the_default_policy_below_a_quarter_of_the_compile_cost() {
    let study = run_study(&mini_corpus(), &search_config());
    assert_eq!(study.platforms().len(), 7);

    // 7 platforms x 4 strategies.
    assert_eq!(study.search.len(), 7 * strategy_names().len());
    for vendor in study.platforms() {
        for strategy in strategy_names() {
            let row = study
                .search
                .iter()
                .find(|r| r.vendor == vendor && r.strategy == strategy)
                .unwrap_or_else(|| panic!("missing search row {vendor}/{strategy}"));
            assert_eq!(row.shaders, 5);

            // Hard budget, and strictly fewer compilations than the
            // exhaustive 256 — in fact under a quarter of them.
            assert!(
                row.max_compiles <= row.budget,
                "{vendor}/{strategy} exceeded its budget: {row:?}"
            );
            assert!(
                row.mean_compiles < 64.0,
                "{vendor}/{strategy} should compile < 25% of 256: {row:?}"
            );

            // Never better than the oracle (sanity of the comparison).
            assert!(
                row.mean_speedup <= row.oracle_mean_speedup + 1e-9,
                "{vendor}/{strategy} beat the exhaustive oracle: {row:?}"
            );

            // The paper-grade quality bar: greedy and ablation searches must
            // match or beat the default LunarGlass policy everywhere.
            if strategy != "hill_climb" {
                assert!(
                    row.mean_speedup >= row.default_mean_speedup - 1e-9,
                    "{vendor}/{strategy} lost to the default flags: {row:?}"
                );
            }
        }
    }
}

#[test]
fn search_results_are_deterministic_across_runs() {
    let a = run_study(&mini_corpus(), &search_config());
    let b = run_study(&mini_corpus(), &search_config());
    assert_eq!(a.search, b.search);
}

#[test]
fn bounded_cache_reproduces_unbounded_study_results_byte_for_byte() {
    let corpus = mini_corpus();
    let unbounded = run_study(&corpus, &search_config());
    let bounded = run_study(
        &corpus,
        &StudyConfig {
            cache_budget: Some(64),
            ..search_config()
        },
    );
    // Eviction only ever forces recomputation, so every measured number —
    // and therefore every search row — is identical.
    assert_eq!(bounded.shaders, unbounded.shaders);
    assert_eq!(bounded.measurements, unbounded.measurements);
    assert_eq!(bounded.skipped, unbounded.skipped);
    assert_eq!(bounded.search, unbounded.search);
}

#[test]
fn search_rows_round_trip_json_and_render() {
    let study = run_study(&mini_corpus(), &search_config());
    let restored = StudyResults::from_json(&study.to_json().unwrap()).unwrap();
    assert_eq!(restored.search, study.search);

    let fig10 = report::fig10_incremental(&restored);
    for strategy in strategy_names() {
        assert!(
            fig10.contains(strategy),
            "fig10 missing {strategy}:\n{fig10}"
        );
    }
    assert!(report::render_all(&restored, "flagship_blur9").contains("Figure 10"));
}
