//! A miniature end-to-end reproduction run: corpus slice → exhaustive sweep →
//! every figure/table renderer, with the qualitative checks the paper's
//! evaluation section reports.

use prism::core::Flag;
use prism::corpus::Corpus;
use prism::gpu::Vendor;
use prism::report;
use prism::search::{flag_impact, run_study, Policy, StudyConfig, StudyResults};

fn mini_corpus() -> Corpus {
    let full = Corpus::gfxbench_like();
    let keep = [
        "flagship_blur9",
        "flagship_tonemap",
        "flagship_deferred_light",
        "shadow_filter_01",
        "bloom_blur_02",
        "forward_lit_00",
        "forward_lit_09",
        "ui_blit_00",
        "ui_blit_05",
        "color_grade_02",
        "ssao_01",
        "utility_02",
    ];
    Corpus {
        cases: full
            .cases
            .into_iter()
            .filter(|c| keep.contains(&c.name.as_str()))
            .collect(),
    }
}

fn run_mini_study() -> StudyResults {
    run_study(&mini_corpus(), &StudyConfig::quick())
}

#[test]
fn full_pipeline_study_produces_all_figures() {
    let study = run_mini_study();
    assert_eq!(study.platforms().len(), 7);
    assert_eq!(study.shaders.len(), 12);

    // Every renderer produces non-trivial output for this study.
    let everything = report::render_all(&study, "flagship_blur9");
    assert!(everything.contains("Figure 3"));
    assert!(everything.contains("Figure 4"));
    assert!(everything.contains("Figure 5"));
    assert!(everything.contains("Figure 6"));
    assert!(everything.contains("Table I"));
    assert!(everything.contains("Figure 7"));
    assert!(everything.contains("Figure 8"));
    assert!(everything.contains("Figure 9"));

    // The study serialises and round-trips (for offline re-analysis).
    let restored = StudyResults::from_json(&study.to_json().unwrap()).unwrap();
    assert_eq!(restored.measurements.len(), study.measurements.len());
}

#[test]
fn qualitative_results_follow_the_paper() {
    let study = run_mini_study();

    // Fig. 5: the per-shader best policy is at least as good as the best
    // static set, which in turn beats or matches default LunarGlass.
    for vendor in study.platforms() {
        let records = study.for_platform(&vendor);
        let best = prism::search::mean_speedup(&records, Policy::Best);
        let (_, static_mean) = prism::search::minimal_best_static(&records);
        let default = prism::search::mean_speedup(&records, Policy::DefaultLunarGlass);
        assert!(
            best >= static_mean - 1e-9,
            "{vendor}: best {best} < static {static_mean}"
        );
        assert!(
            static_mean >= default - 1e-9,
            "{vendor}: static {static_mean} < default {default}"
        );
    }

    // The motivating blur is among the most-improved shaders everywhere.
    for vendor in study.platforms() {
        let records = study.for_platform(&vendor);
        let top = prism::search::top_n_speedups(&records, 3);
        assert!(
            top.iter().any(|(name, _)| name == "flagship_blur9"),
            "{vendor}: expected the blur in the top-3, got {top:?}"
        );
    }

    // Fig. 8: ADCE is (almost) never applicable; Coalesce and FP-Reassociate
    // apply to a majority of shaders.
    let arm_rows = prism::search::flag_applicability(&study, "ARM");
    let row = |flag: Flag| arm_rows.iter().find(|r| r.flag == flag).unwrap().clone();
    assert!(
        row(Flag::Adce).applicability_rate() < 0.35,
        "ADCE should be a near-universal no-op: {:?}",
        row(Flag::Adce)
    );
    assert!(row(Flag::Coalesce).applicability_rate() > 0.5);
    assert!(row(Flag::FpReassociate).applicability_rate() > 0.5);
    // Loops are rare, so Unroll applies to a minority.
    assert!(row(Flag::Unroll).applicability_rate() < 0.5);

    // Fig. 9: offline unrolling matters on AMD (whose driver does not unroll)
    // and is a wash on NVIDIA (whose driver does).
    let amd_unroll = flag_impact(&study, "AMD", Flag::Unroll);
    let nvidia_unroll = flag_impact(&study, "NVIDIA", Flag::Unroll);
    assert!(
        amd_unroll.max() > 3.0,
        "AMD unroll peak {:.2}",
        amd_unroll.max()
    );
    assert!(
        nvidia_unroll.max() < amd_unroll.max(),
        "NVIDIA ({:.2}) should gain less than AMD ({:.2}) from offline unrolling",
        nvidia_unroll.max(),
        amd_unroll.max()
    );

    // Scalar grouping pays off most on the scalar-ALU Adreno.
    let adreno_fp = flag_impact(&study, "Qualcomm", Flag::FpReassociate);
    let mali_fp = flag_impact(&study, "ARM", Flag::FpReassociate);
    assert!(
        adreno_fp.max() >= mali_fp.max(),
        "Adreno FP-reassociate peak {:.2} should be at least Mali's {:.2}",
        adreno_fp.max(),
        mali_fp.max()
    );
}

/// Backend routing, end to end: every row must have been compiled by its
/// driver from the source form the platform declares — the submission
/// records the version token the driver front-end actually parsed — across
/// all four backends (GLES conversion for the Android phones, SPIR-V
/// assembly for the Vulkan desktop, MSL for Apple, desktop GLSL elsewhere).
#[test]
fn every_row_is_compiled_from_its_platforms_declared_source_form() {
    let study = run_mini_study();
    assert_eq!(study.measurements.len(), 12 * 7);
    for m in &study.measurements {
        let vendor = Vendor::ALL
            .iter()
            .find(|v| v.name() == m.vendor)
            .expect("known vendor");
        let expected = vendor.backend();
        assert_eq!(m.backend, expected.name(), "{} on {}", m.shader, m.vendor);
        assert_eq!(
            m.driver_source_version,
            expected.version(),
            "{} on {}: the declared source form must reach the driver",
            m.shader,
            m.vendor
        );
    }
    // All four source forms actually appear in the sweep.
    let forms: std::collections::HashSet<&str> = study
        .measurements
        .iter()
        .map(|m| m.backend.as_str())
        .collect();
    assert_eq!(forms.len(), 4, "{forms:?}");
}

/// The shared corpus cache changes how fast the sweep runs, never what it
/// computes: a family corpus slice shows cross-shader sharing in the study's
/// cache record while producing measurements byte-identical to a
/// private-cache-per-session run.
#[test]
fn shared_corpus_cache_shares_across_shaders_without_changing_results() {
    let full = Corpus::gfxbench_like();
    let keep = [
        "texture_combine_00",
        "texture_combine_01",
        "texture_combine_02",
        "ui_blit_00",
    ];
    let corpus = Corpus {
        cases: full
            .cases
            .into_iter()
            .filter(|c| keep.contains(&c.name.as_str()))
            .collect(),
    };

    let shared = run_study(&corpus, &StudyConfig::quick());
    assert!(shared.cache.shared);
    assert_eq!(shared.cache.stats.sessions, corpus.len());
    assert!(
        shared.cache.stats.cross_shader_stage_hits > 0,
        "übershader family members must share stage work: {:?}",
        shared.cache
    );
    assert!(shared.cache.stats.stage_hit_rate() > 0.9);

    let solo = run_study(
        &corpus,
        &StudyConfig {
            shared_cache: false,
            ..StudyConfig::quick()
        },
    );
    assert!(!solo.cache.shared);
    assert_eq!(solo.cache.stats.cross_shader_stage_hits, 0);
    // The shared cache did strictly less optimization and emission work...
    assert!(shared.cache.stats.stage_runs < solo.cache.stats.stage_runs);
    assert!(shared.cache.stats.emissions < solo.cache.stats.emissions);
    // ...while every record — static facts and every timing on every
    // platform, both backends — is identical.
    assert_eq!(shared.shaders, solo.shaders);
    assert_eq!(shared.measurements, solo.measurements);
}

#[test]
fn corpus_characterisation_matches_section_v() {
    let corpus = Corpus::gfxbench_like();
    let stats = corpus.stats();
    // Power-law-ish size distribution with a long tail of small shaders.
    assert!(stats.under_50_loc * 2 > stats.shader_count);
    assert!(stats.max_loc > 25);
    // Loops are uncommon; component writes are near-universal.
    assert!(stats.with_loops * 4 < stats.shader_count);
    assert!(stats.with_component_writes * 3 > stats.shader_count * 2);
}
