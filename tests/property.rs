//! Property-based tests over the optimizer's core invariants.
//!
//! The crates.io `proptest` harness is unavailable offline, so these
//! properties run over a deterministic in-house generator: a seeded SplitMix64
//! stream drives a small expression grammar, producing the same shader corpus
//! on every run (failures are reproducible by seed).
//!
//! Properties:
//!
//! * any generated arithmetic shader survives the front-end and every flag
//!   combination of the optimizer without panicking,
//! * optimization preserves the rendered result (within unsafe-FP tolerance),
//! * emitted GLSL always re-parses and keeps the shader interface,
//! * **session equivalence**: for generated shaders and a sample of corpus
//!   shaders, session-based variants are text- and count-identical to
//!   brute-force `compile`-per-combination, which also proves IR-fingerprint
//!   dedup never merges shaders whose emitted GLSL differs,
//! * **corpus-cache transparency**: übershader-family sessions sharing one
//!   [`CorpusCache`] show nonzero cross-shader stage hits while every cached
//!   result stays byte-identical to cold per-session compilation, for both
//!   the desktop and GLES emission backends.

use prism::core::{compile, unique_variants, CacheStore, CompileSession, CorpusCache, OptFlags};
use prism::emit::{Backend, BackendKind};
use prism::glsl::ShaderSource;
use prism::ir::interp::{results_approx_equal, run_fragment, FragmentContext};
use std::sync::Arc;

/// Deterministic generator state (SplitMix64).
struct Gen {
    state: u64,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// A random expression over the shader's available values; depth-bounded so
/// generated shaders stay within realistic fragment-shader sizes.
fn gen_expr(g: &mut Gen, depth: u32) -> String {
    if depth == 0 || g.below(3) == 0 {
        return match g.below(7) {
            0 => "uv.x".to_string(),
            1 => "uv.y".to_string(),
            2 => "tint.x".to_string(),
            3 => "tint.y * 0.5".to_string(),
            4 => "gain".to_string(),
            5 => format!("{}.0", 1 + g.below(8)),
            _ => format!("{}.5", 1 + g.below(4)),
        };
    }
    match g.below(7) {
        0 => format!("({} + {})", gen_expr(g, depth - 1), gen_expr(g, depth - 1)),
        1 => format!("({} * {})", gen_expr(g, depth - 1), gen_expr(g, depth - 1)),
        2 => format!("({} - {})", gen_expr(g, depth - 1), gen_expr(g, depth - 1)),
        // Division by a non-zero constant: the Div-to-Mul target pattern.
        3 => format!("({} / {}.0)", gen_expr(g, depth - 1), 2 + g.below(7)),
        4 => format!("abs({})", gen_expr(g, depth - 1)),
        5 => format!(
            "min({}, {})",
            gen_expr(g, depth - 1),
            gen_expr(g, depth - 1)
        ),
        _ => format!(
            "mix({}, {}, 0.25)",
            gen_expr(g, depth - 1),
            gen_expr(g, depth - 1)
        ),
    }
}

/// Wraps generated expressions in a complete fragment shader that exercises
/// scalar maths, vector construction and component writes. Some shaders get a
/// constant-bound accumulation loop so Unroll has something to do.
fn gen_shader(g: &mut Gen) -> String {
    let a = gen_expr(g, 3);
    let b = gen_expr(g, 3);
    let reps = 1 + g.below(5);
    let mut body = format!("    float acc = {a};\n");
    if g.below(2) == 0 {
        body.push_str(&format!(
            "    for (int i = 0; i < {reps}; i++) {{ acc += {b} * 0.125; }}\n"
        ));
    } else {
        for i in 0..reps {
            body.push_str(&format!("    acc += {b} * {}.0;\n", i + 1));
        }
    }
    format!(
        "uniform vec4 tint;\nuniform float gain;\nin vec2 uv;\nout vec4 fragColor;\n\
         void main() {{\n{body}    vec3 rgb = vec3(acc, acc * 0.5, {a});\n    fragColor.xyz = rgb;\n    fragColor.w = 1.0;\n}}\n"
    )
}

fn generated_sources(count: usize, seed: u64) -> Vec<ShaderSource> {
    let mut g = Gen::new(seed);
    (0..count)
        .map(|i| {
            let text = gen_shader(&mut g);
            ShaderSource::parse(&text)
                .unwrap_or_else(|e| panic!("generated shader {i} must parse: {e}\n{text}"))
        })
        .collect()
}

/// Every flag combination preserves the generated shader's output.
#[test]
fn optimization_preserves_generated_shader_semantics() {
    for (i, source) in generated_sources(24, 0xA11CE).iter().enumerate() {
        let reference = compile(source, "gen", OptFlags::NONE).expect("baseline compiles");
        let ctx = FragmentContext::with_defaults(&reference.ir, 0.3, 0.65);
        let want = run_fragment(&reference.ir, &ctx).expect("baseline runs");

        // A representative spread of combinations (the exhaustive version
        // runs on the fixed corpus in the integration tests).
        for bits in [
            0u8,
            0xFF,
            0b0101_0101,
            0b1010_1010,
            0b0011_0110,
            0b1100_0001,
        ] {
            let flags = OptFlags::from_bits(bits);
            let optimized = compile(source, "gen", flags).expect("optimized compiles");
            let ctx2 = FragmentContext::with_defaults(&optimized.ir, 0.3, 0.65);
            let got = run_fragment(&optimized.ir, &ctx2).expect("optimized runs");
            assert!(
                results_approx_equal(&want, &got, 1e-3),
                "shader {i}, flags {flags} changed output: {:?} vs {:?}",
                want.outputs,
                got.outputs
            );
        }
    }
}

/// Emitted GLSL for any flag set re-parses and keeps the interface — and the
/// GLES emission of the same compilation keeps it too (one generated vertex
/// shader and one uniform setup must serve both measurement paths).
#[test]
fn emitted_glsl_reparses_and_keeps_interface() {
    let mut g = Gen::new(0xBEEF);
    for source in generated_sources(16, 0xBEEF ^ 1) {
        let flags = OptFlags::from_bits(g.below(256) as u8);
        let optimized = compile(&source, "gen", flags).expect("compiles");
        let reparsed = ShaderSource::preprocess_and_parse(&optimized.glsl, &Default::default())
            .expect("emitted GLSL re-parses");
        assert!(source.interface.same_io(&reparsed.interface));
        let gles = prism::emit::Gles.emit(&optimized.ir);
        assert!(
            prism::emit::same_interface(&optimized.glsl, &gles),
            "desktop and GLES emissions must expose one interface:\n{gles}"
        );
    }
}

/// Variant deduplication groups flag sets if and only if their emitted text
/// is identical.
#[test]
fn variant_dedup_is_consistent_with_text_equality() {
    for source in generated_sources(8, 0xD00D) {
        let set = unique_variants(&source, "gen").expect("variants");
        // Spot-check a handful of flag sets against their variant's text.
        for bits in [0u8, 1, 16, 64, 255] {
            let flags = OptFlags::from_bits(bits);
            let direct = compile(&source, "gen", flags).expect("compiles").glsl;
            assert_eq!(set.variant_for(flags).glsl, direct);
        }
        // Distinct variants must have distinct text.
        for (i, a) in set.variants.iter().enumerate() {
            for b in &set.variants[i + 1..] {
                assert_ne!(a.glsl, b.glsl);
            }
        }
    }
}

/// Session-based variant generation is byte-identical to brute force: for
/// every one of the 256 combinations the session's text equals an independent
/// `compile`, the variant count matches, and the flag→variant grouping is the
/// same. Because the session deduplicates on IR fingerprints before emission,
/// this equality also proves fingerprint dedup never merges flag sets whose
/// emitted GLSL differs.
#[test]
fn session_variants_are_byte_identical_to_brute_force() {
    let corpus = prism::corpus::Corpus::gfxbench_like();
    let sampled = ["flagship_blur9", "ui_blit_00", "color_grade_01"];
    let corpus_sources: Vec<(String, ShaderSource)> = corpus
        .cases
        .iter()
        .filter(|c| sampled.contains(&c.name.as_str()))
        .map(|c| (c.name.clone(), c.source.clone()))
        .collect();
    assert_eq!(
        corpus_sources.len(),
        sampled.len(),
        "sampled corpus shaders exist"
    );

    let generated: Vec<(String, ShaderSource)> = generated_sources(6, 0x5E55)
        .into_iter()
        .enumerate()
        .map(|(i, s)| (format!("gen_{i}"), s))
        .collect();

    for (name, source) in corpus_sources.into_iter().chain(generated) {
        let session = CompileSession::new(&source, &name).expect("session constructs");
        let set = session.variants().expect("session variants");

        // Brute force: an independent full compile per combination.
        let mut brute_unique: Vec<std::sync::Arc<str>> = Vec::new();
        for flags in OptFlags::all_combinations() {
            let direct = compile(&source, &name, flags).expect("brute force compiles");
            assert_eq!(
                set.variant_for(flags).glsl,
                direct.glsl,
                "{name}: flags {flags} diverge between session and brute force"
            );
            if !brute_unique.contains(&direct.glsl) {
                brute_unique.push(direct.glsl);
            }
        }
        assert_eq!(
            set.unique_count(),
            brute_unique.len(),
            "{name}: variant count diverges"
        );

        // The session must actually have shared work, not just agreed.
        let stats = session.stats();
        assert!(
            stats.stage_hits > stats.stage_runs,
            "{name}: expected prefix sharing, got {stats:?}"
        );
    }
}

/// Übershader-family sessions sharing one `CorpusCache` must (a) actually
/// share — nonzero *cross-shader* stage hits — and (b) stay transparent:
/// every emitted text, for both the desktop and GLES backends, is
/// byte-identical to a cold session compiling alone with a private cache.
#[test]
fn corpus_cache_shares_across_family_sessions_and_stays_byte_identical() {
    let corpus = prism::corpus::Corpus::gfxbench_like();
    // Two texture_combine übershader instances whose specialisations lower
    // to structurally identical IR — the family-sharing case the corpus
    // cache exists for.
    let family: Vec<_> = corpus
        .cases
        .iter()
        .filter(|c| c.name == "texture_combine_00" || c.name == "texture_combine_01")
        .collect();
    assert_eq!(family.len(), 2, "family members exist in the corpus");

    let cache = Arc::new(CorpusCache::new());
    let sample_bits = [0u8, 3, 16, 97, 170, 255];
    for (i, case) in family.iter().enumerate() {
        let shared = CompileSession::with_cache(&case.source, &case.name, cache.clone()).unwrap();
        let shared_set = shared.variants().unwrap();
        let cold = CompileSession::new(&case.source, &case.name).unwrap();
        let cold_set = cold.variants().unwrap();

        // The full variant sets agree variant-for-variant.
        assert_eq!(
            shared_set.unique_count(),
            cold_set.unique_count(),
            "{}",
            case.name
        );
        for (a, b) in shared_set.variants.iter().zip(&cold_set.variants) {
            assert_eq!(a.glsl, b.glsl, "{}", case.name);
            assert_eq!(a.flag_sets, b.flag_sets, "{}", case.name);
        }

        // Per-backend texts agree for a spread of combinations.
        for bits in sample_bits {
            let flags = OptFlags::from_bits(bits);
            for backend in BackendKind::ALL {
                assert_eq!(
                    shared.text_for(flags, backend).unwrap(),
                    cold.text_for(flags, backend).unwrap(),
                    "{}: flags {flags}, backend {backend}",
                    case.name
                );
            }
        }

        if i == 0 {
            // Nothing to share yet: the first session seeds the cache.
            assert_eq!(cache.stats().cross_shader_stage_hits, 0);
        }
    }

    // The second family member was answered by the first one's work.
    let stats = cache.stats();
    assert_eq!(stats.sessions, 2);
    assert!(
        stats.cross_shader_stage_hits > 0,
        "expected cross-shader stage sharing, got {stats:?}"
    );
    assert!(
        stats.cross_shader_emission_hits > 0,
        "expected cross-shader emission sharing, got {stats:?}"
    );
    assert!(
        stats.identity_transitions > 0,
        "clean stages must be answered by the identity mask, not edges: {stats:?}"
    );
}

/// **Eviction property**: a budget-bounded `CorpusCache` must (a) never hold
/// more entries than its budget at any point of a multi-family sweep, (b)
/// actually evict (the sweep overflows the budget many times over), and (c)
/// stay fully transparent — every session's variant set is byte-identical to
/// a cold, unbounded compile, because an evicted entry is only ever
/// recomputed, never lost.
#[test]
fn bounded_corpus_cache_respects_its_budget_and_stays_transparent() {
    let corpus = prism::corpus::Corpus::family_mix();
    let cases = &corpus.cases;

    let budget = 48;
    let cache = Arc::new(CorpusCache::bounded(budget));
    for case in cases {
        let bounded = CompileSession::with_cache_in_family(
            &case.source,
            &case.name,
            &case.family,
            cache.clone(),
        )
        .unwrap();
        let bounded_set = bounded.variants().unwrap();
        assert!(
            cache.entry_count() <= budget,
            "{}: cache grew to {} entries (budget {budget})",
            case.name,
            cache.entry_count()
        );

        let cold = CompileSession::new(&case.source, &case.name).unwrap();
        let cold_set = cold.variants().unwrap();
        assert_eq!(bounded_set.unique_count(), cold_set.unique_count());
        for (a, b) in bounded_set.variants.iter().zip(&cold_set.variants) {
            assert_eq!(a.glsl, b.glsl, "{}", case.name);
            assert_eq!(a.flag_sets, b.flag_sets, "{}", case.name);
        }
    }

    let stats = cache.stats();
    assert!(
        stats.evictions > 0,
        "a 5-shader sweep must overflow a {budget}-entry budget: {stats:?}"
    );

    // Per-family telemetry saw every family, with the übershader family
    // registering both members.
    let families = cache.family_stats();
    let tc_family = &cases
        .iter()
        .find(|c| c.name == "texture_combine_00")
        .unwrap()
        .family;
    let tc = families
        .iter()
        .find(|f| &f.family == tc_family)
        .expect("texture_combine family tracked");
    assert_eq!(tc.sessions, 2);
    assert!(tc.stage_runs + tc.stage_hits > 0);
}

/// The per-combination session compile agrees with its own batch variants()
/// view (the two code paths share the same caches).
#[test]
fn session_single_compiles_agree_with_batch_variants() {
    for source in generated_sources(4, 0xCAFE) {
        let session = CompileSession::new(&source, "gen").expect("session constructs");
        let set = session.variants().expect("session variants");
        for bits in [0u8, 3, 17, 128, 255] {
            let flags = OptFlags::from_bits(bits);
            let single = session.compile(flags).expect("session compile");
            assert_eq!(single.glsl, set.variant_for(flags).glsl);
        }
    }
}
