//! Property-based tests over the optimizer's core invariants:
//!
//! * any generated arithmetic shader survives the front-end and every flag
//!   combination of the optimizer without panicking,
//! * optimization preserves the rendered result (within unsafe-FP tolerance),
//! * emitted GLSL always re-parses and keeps the shader interface,
//! * variant deduplication is consistent with textual equality.

use prism::core::{compile, unique_variants, OptFlags};
use prism::glsl::ShaderSource;
use prism::ir::interp::{results_approx_equal, run_fragment, FragmentContext};
use proptest::prelude::*;

/// A small expression grammar over the shader's available values. Depth is
/// bounded so generated shaders stay within realistic fragment-shader sizes.
fn expr_strategy(depth: u32) -> BoxedStrategy<String> {
    let leaf = prop_oneof![
        Just("uv.x".to_string()),
        Just("uv.y".to_string()),
        Just("tint.x".to_string()),
        Just("tint.y * 0.5".to_string()),
        Just("gain".to_string()),
        (1i32..9).prop_map(|v| format!("{v}.0")),
        (1i32..5).prop_map(|v| format!("{}.5", v)),
    ];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} + {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} * {b})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} - {b})")),
            // Division by a non-zero constant: the Div-to-Mul target pattern.
            (inner.clone(), 2i32..9).prop_map(|(a, c)| format!("({a} / {c}.0)")),
            inner.clone().prop_map(|a| format!("abs({a})")),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("min({a}, {b})")),
            (inner.clone(), inner).prop_map(|(a, b)| format!("mix({a}, {b}, 0.25)")),
        ]
    })
    .boxed()
}

/// Wraps generated expressions in a complete fragment shader that exercises
/// scalar maths, vector construction and component writes.
fn shader_strategy() -> BoxedStrategy<String> {
    (expr_strategy(3), expr_strategy(3), 1usize..6)
        .prop_map(|(a, b, reps)| {
            let mut body = String::new();
            body.push_str(&format!("    float acc = {a};\n"));
            for i in 0..reps {
                body.push_str(&format!("    acc += {b} * {}.0;\n", i + 1));
            }
            format!(
                "uniform vec4 tint;\nuniform float gain;\nin vec2 uv;\nout vec4 fragColor;\n\
                 void main() {{\n{body}    vec3 rgb = vec3(acc, acc * 0.5, {a});\n    fragColor.xyz = rgb;\n    fragColor.w = 1.0;\n}}\n"
            )
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, .. ProptestConfig::default() })]

    /// Every flag combination preserves the generated shader's output.
    #[test]
    fn optimization_preserves_generated_shader_semantics(src in shader_strategy()) {
        let source = ShaderSource::parse(&src).expect("generated shader parses");
        let reference = compile(&source, "gen", OptFlags::NONE).expect("baseline compiles");
        let ctx = FragmentContext::with_defaults(&reference.ir, 0.3, 0.65);
        let want = run_fragment(&reference.ir, &ctx).expect("baseline runs");

        // A representative spread of combinations (the exhaustive version runs
        // on the fixed corpus in the integration tests).
        for bits in [0u8, 0xFF, 0b0101_0101, 0b1010_1010, 0b0011_0110, 0b1100_0001] {
            let flags = OptFlags::from_bits(bits);
            let optimized = compile(&source, "gen", flags).expect("optimized compiles");
            let ctx2 = FragmentContext::with_defaults(&optimized.ir, 0.3, 0.65);
            let got = run_fragment(&optimized.ir, &ctx2).expect("optimized runs");
            prop_assert!(
                results_approx_equal(&want, &got, 1e-3),
                "flags {} changed output: {:?} vs {:?}", flags, want.outputs, got.outputs
            );
        }
    }

    /// Emitted GLSL for any flag set re-parses and keeps the interface.
    #[test]
    fn emitted_glsl_reparses_and_keeps_interface(src in shader_strategy(), bits in 0u8..=255) {
        let source = ShaderSource::parse(&src).expect("generated shader parses");
        let optimized = compile(&source, "gen", OptFlags::from_bits(bits)).expect("compiles");
        let reparsed = ShaderSource::preprocess_and_parse(&optimized.glsl, &Default::default())
            .expect("emitted GLSL re-parses");
        prop_assert!(source.interface.same_io(&reparsed.interface));
    }

    /// Variant deduplication groups flag sets if and only if their emitted
    /// text is identical.
    #[test]
    fn variant_dedup_is_consistent_with_text_equality(src in shader_strategy()) {
        let source = ShaderSource::parse(&src).expect("generated shader parses");
        let set = unique_variants(&source, "gen").expect("variants");
        // Spot-check a handful of flag sets against their variant's text.
        for bits in [0u8, 1, 16, 64, 255] {
            let flags = OptFlags::from_bits(bits);
            let direct = compile(&source, "gen", flags).expect("compiles").glsl;
            prop_assert_eq!(&set.variant_for(flags).glsl, &direct);
        }
        // Distinct variants must have distinct text.
        for (i, a) in set.variants.iter().enumerate() {
            for b in &set.variants[i + 1..] {
                prop_assert_ne!(&a.glsl, &b.glsl);
            }
        }
    }
}
