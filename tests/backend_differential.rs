//! Cross-backend differential suite: one optimized IR, four source forms.
//!
//! The PR 2 property suite proved desktop/GLES emission transparency for
//! shared caches; this suite generalises it to all four backends. For every
//! corpus shader and a deterministic sample of flag combinations it asserts
//! that the four emitted texts
//!
//! (a) parse — with each backend's own *consuming front-end* — to the same
//!     external interface,
//! (b) were emitted from the same optimized-IR fingerprint, whether the
//!     session is cold or shares the corpus-wide cache, and
//! (c) are byte-identical between a cold private-cache session and a session
//!     behind one shared warm [`CorpusCache`].
//!
//! It also pins the acceptance property of the warm-start path with the new
//! backends in play (a second `run_study` performs 0 stage runs and 0
//! emissions, for every backend). The legacy `mobile::emit_gles` shim was
//! removed after this suite pinned corpus-wide parity with the `Gles`
//! backend.

use prism::core::{CacheStore, CompileSession, CorpusCache, OptFlags};
use prism::corpus::Corpus;
use prism::emit::{source_interface, BackendKind};
use std::sync::Arc;

/// FNV-1a 64-bit — the deterministic per-shader seed for flag sampling.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// A deterministic sample of flag combinations for one shader: the no-flag
/// baseline, everything-on, and two shader-dependent masks — stable across
/// runs, different across shaders, so the corpus as a whole covers the
/// combination space without 256× work per shader.
fn sampled_flags(name: &str) -> Vec<OptFlags> {
    let seed = fnv64(name.as_bytes());
    let mut flags = vec![
        OptFlags::NONE,
        OptFlags::all(),
        OptFlags::from_bits((seed & 0xFF) as u8),
        OptFlags::from_bits(((seed >> 8) & 0xFF) as u8),
    ];
    flags.dedup();
    flags
}

/// Satellite (a) + (b) + (c) over the whole corpus.
#[test]
fn all_four_backends_agree_for_every_corpus_shader() {
    let corpus = Corpus::gfxbench_like();
    let shared_cache = Arc::new(CorpusCache::new());
    for case in &corpus.cases {
        let cold = CompileSession::new(&case.source, &case.name).expect("cold session");
        let shared = CompileSession::with_cache_in_family(
            &case.source,
            &case.name,
            &case.family,
            shared_cache.clone() as Arc<dyn CacheStore>,
        )
        .expect("shared session");

        for flags in sampled_flags(&case.name) {
            // (b) Both sessions agree which optimized IR this combination
            // produces — the key all four emissions are memoised under.
            let fp_cold = cold.optimized_fingerprint(flags).unwrap();
            let fp_shared = shared.optimized_fingerprint(flags).unwrap();
            assert_eq!(
                fp_cold, fp_shared,
                "{}: flags {flags} fingerprint diverges cold vs shared",
                case.name
            );

            let mut interfaces = Vec::new();
            for backend in BackendKind::ALL {
                // (c) Byte-identity between the cold session and the shared
                // warm cache, per backend.
                let cold_text = cold.text_for(flags, backend).unwrap();
                let shared_text = shared.text_for(flags, backend).unwrap();
                assert_eq!(
                    *cold_text, *shared_text,
                    "{}: flags {flags}, backend {backend}: shared cache changed the text",
                    case.name
                );

                // (a) Each backend's own consuming front-end sees the same
                // external interface.
                let iface = source_interface(backend, &cold_text).unwrap_or_else(|e| {
                    panic!(
                        "{}: flags {flags}, backend {backend} text does not parse: {e}",
                        case.name
                    )
                });
                interfaces.push((backend, iface));
            }
            let (_, reference) = &interfaces[0];
            for (backend, iface) in &interfaces[1..] {
                assert!(
                    iface.same_io(reference),
                    "{}: flags {flags}: {backend} interface diverges:\n{iface:?}\nvs\n{reference:?}",
                    case.name
                );
            }
        }
    }

    // The shared sessions must actually have shared: übershader families
    // answer each other's lookups.
    let stats = shared_cache.stats();
    assert!(stats.cross_shader_stage_hits > 0, "{stats:?}");
    assert_eq!(
        stats.emissions_by_backend.iter().sum::<usize>(),
        stats.emissions,
        "per-backend emission counters must sum to the total"
    );
    for backend in BackendKind::ALL {
        assert!(
            stats.emissions_by_backend[backend.index()] > 0,
            "{backend}: no emissions counted in {stats:?}"
        );
    }
}

/// Transition-graph replay property: the fingerprint-edge walk that answers
/// a session — cold, behind a shared warm cache, and warm-booted from a
/// persisted snapshot — reproduces the private-cache text byte-for-byte for
/// every corpus shader × FNV-sampled flag combination × all four backends.
/// The sharing must moreover be structural, not incidental: the populating
/// sweep records clean stages as identity transitions (mask bits, not
/// edges), and the warm-booted sweep answers everything by graph walking —
/// zero stage executions, zero emissions.
#[test]
fn transition_graph_replay_is_byte_identical_cold_shared_and_warm_booted() {
    let corpus = Corpus::gfxbench_like();
    let dir = std::env::temp_dir().join(format!(
        "prism-transition-replay-{}-{:p}",
        std::process::id(),
        &corpus
    ));
    let _ = std::fs::remove_dir_all(&dir);

    // Pass 1 — populate a shared cache, checking it against cold private
    // sessions, and remember every expected text.
    let shared_cache = Arc::new(CorpusCache::new());
    let mut expected: Vec<(String, OptFlags, BackendKind, std::sync::Arc<str>)> = Vec::new();
    for case in &corpus.cases {
        let cold = CompileSession::new(&case.source, &case.name).expect("cold session");
        let shared = CompileSession::with_cache_in_family(
            &case.source,
            &case.name,
            &case.family,
            shared_cache.clone() as Arc<dyn CacheStore>,
        )
        .expect("shared session");
        for flags in sampled_flags(&case.name) {
            for backend in BackendKind::ALL {
                let cold_text = cold.text_for(flags, backend).unwrap();
                let shared_text = shared.text_for(flags, backend).unwrap();
                assert_eq!(
                    *cold_text, *shared_text,
                    "{}: flags {flags}, backend {backend}: shared replay diverges",
                    case.name
                );
                expected.push((case.name.clone(), flags, backend, cold_text));
            }
        }
    }
    let stats = shared_cache.stats();
    assert!(
        stats.identity_transitions > 0,
        "clean stages must take the identity fast path: {stats:?}"
    );
    shared_cache.save(&dir).unwrap();

    // Pass 2 — boot a fresh cache from the snapshot and replay the same
    // sweep. Every text must match pass 1, and no stage may execute: the
    // whole sweep is mask lookups and u64 edge walks.
    let warm_cache = Arc::new(CorpusCache::new());
    let report = warm_cache.load(&dir);
    let _ = std::fs::remove_dir_all(&dir);
    assert_eq!(report.shards_skipped, 0, "{report:?}");
    assert!(report.entries_loaded > 0, "{report:?}");

    let mut cursor = expected.iter();
    for case in &corpus.cases {
        let warm = CompileSession::with_cache_in_family(
            &case.source,
            &case.name,
            &case.family,
            warm_cache.clone() as Arc<dyn CacheStore>,
        )
        .expect("warm session");
        for flags in sampled_flags(&case.name) {
            for backend in BackendKind::ALL {
                let (name, eflags, ebackend, text) = cursor.next().expect("same sweep shape");
                assert_eq!(
                    (name.as_str(), *eflags, *ebackend),
                    (case.name.as_str(), flags, backend)
                );
                let warm_text = warm.text_for(flags, backend).unwrap();
                assert_eq!(
                    **text, *warm_text,
                    "{}: flags {flags}, backend {backend}: warm-booted replay diverges",
                    case.name
                );
            }
        }
    }
    let warm_stats = warm_cache.stats();
    assert_eq!(
        warm_stats.stage_runs, 0,
        "warm-booted replay executed a pass: {warm_stats:?}"
    );
    assert_eq!(
        warm_stats.emissions, 0,
        "warm-booted replay re-emitted: {warm_stats:?}"
    );
    assert!(
        warm_stats.identity_transitions > 0,
        "persisted clean-stage masks must keep answering: {warm_stats:?}"
    );
}

/// Specialization axis joins the cross-backend contract: for a sample of
/// corpus shaders × FNV-sampled flags × candidate uniform-value assumptions,
/// the guarded dispatch must agree with the general program bit-for-bit on
/// assumption-violating inputs (the interp check is IR-level, shared by all
/// backends), and the specialized text of every backend must parse with that
/// backend's own consuming front-end.
#[test]
fn specialized_variants_verify_differentially_and_emit_through_all_backends() {
    use prism::core::specialize::{candidate_keys, default_probe_points, verify_specialization};
    let corpus =
        Corpus::gfxbench_like().subset(&["flagship_blur9", "ui_blit_00", "color_grade_01"]);
    let probes = default_probe_points();
    for case in &corpus.cases {
        let session = CompileSession::new(&case.source, &case.name).expect("session");
        for flags in sampled_flags(&case.name) {
            for key in candidate_keys(session.base_ir(), 4) {
                let dispatch = match session.dispatch_for(flags, &key, BackendKind::DesktopGlsl) {
                    Ok(dispatch) => dispatch,
                    Err(_) => continue,
                };
                verify_specialization(&dispatch, &probes).unwrap_or_else(|d| {
                    panic!(
                        "{}: flags {flags}: specialization diverges: {}",
                        case.name, d.message
                    )
                });
                for backend in BackendKind::ALL {
                    let text = session.text_for_spec(flags, &key, backend).unwrap();
                    source_interface(backend, &text).unwrap_or_else(|e| {
                        panic!(
                            "{}: flags {flags}, [{key}], backend {backend}: \
                             specialized text does not parse: {e}",
                            case.name
                        )
                    });
                }
            }
        }
    }
}

/// Acceptance: a warm-started second study performs **zero** stage runs and
/// **zero** emissions — including the SPIR-V and MSL backends, whose texts
/// persist in the same per-backend emission memo.
#[test]
fn warm_start_second_study_does_no_compile_work_for_any_backend() {
    use prism::search::{run_study, StudyConfig};
    let corpus = Corpus::gfxbench_like().subset(&["flagship_blur9", "ui_blit_00"]);
    let dir = std::env::temp_dir().join(format!(
        "prism-differential-warm-{}-{:p}",
        std::process::id(),
        &corpus
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let config = StudyConfig {
        warm_start_dir: Some(dir.clone()),
        ..StudyConfig::quick()
    };
    let cold = run_study(&corpus, &config);
    let warm = run_study(&corpus, &config);
    let _ = std::fs::remove_dir_all(&dir);

    assert!(cold.cache.stats.emissions > 0);
    for backend in BackendKind::ALL {
        assert!(
            cold.cache.stats.emissions_by_backend[backend.index()] > 0,
            "{backend}: the cold 7-platform sweep must emit this form: {:?}",
            cold.cache.stats
        );
    }
    assert_eq!(
        warm.cache.stats.stage_runs, 0,
        "warm sweep re-ran stages: {:?}",
        warm.cache.stats
    );
    assert_eq!(
        warm.cache.stats.emissions, 0,
        "warm sweep re-emitted: {:?}",
        warm.cache.stats
    );
    assert_eq!(
        warm.cache.stats.emissions_by_backend,
        [0; BackendKind::COUNT]
    );
    assert_eq!(warm.measurements, cold.measurements);
}
