//! Warm-start persistence, end to end: a study sweep saved to disk must make
//! the next sweep strictly cheaper and byte-identical, and a damaged
//! snapshot must degrade to a cold start — never a panic, never a changed
//! measurement.

use prism::core::{CacheStore, CompileSession, CorpusCache};
use prism::corpus::Corpus;
use prism::search::{run_study, StudyConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A fresh scratch directory per test (removed on drop, even on panic).
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(label: &str) -> ScratchDir {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "prism-persistence-{label}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Übershader family members plus the blur flagship: enough IR sharing to
/// exercise both memos, small enough for a quick exhaustive sweep.
fn corpus() -> Corpus {
    Corpus::gfxbench_like().subset(&[
        "flagship_blur9",
        "texture_combine_00",
        "texture_combine_01",
        "ui_blit_00",
    ])
}

fn warm_config(dir: &ScratchDir) -> StudyConfig {
    StudyConfig {
        warm_start_dir: Some(dir.0.clone()),
        ..StudyConfig::quick()
    }
}

/// The acceptance property: a second `run_study` pointed at the first run's
/// `warm_start_dir` performs strictly fewer compiles (stage runs) and
/// emissions than the cold run, with byte-identical `StudyResults`
/// measurements.
#[test]
fn warm_started_study_is_strictly_cheaper_and_byte_identical() {
    let dir = ScratchDir::new("acceptance");
    let corpus = corpus();
    let config = warm_config(&dir);

    let cold = run_study(&corpus, &config);
    assert!(cold.warnings.is_empty(), "{:?}", cold.warnings);
    assert_eq!(cold.cache.stats.warm_entries_loaded, 0);
    assert!(cold.cache.stats.stage_runs > 0);
    assert!(cold.cache.stats.emissions > 0);

    let warm = run_study(&corpus, &config);
    assert!(warm.warnings.is_empty(), "{:?}", warm.warnings);

    // Strictly fewer compiles and emissions...
    assert!(
        warm.cache.stats.stage_runs < cold.cache.stats.stage_runs,
        "stage runs: warm {} vs cold {}",
        warm.cache.stats.stage_runs,
        cold.cache.stats.stage_runs
    );
    assert!(
        warm.cache.stats.emissions < cold.cache.stats.emissions,
        "emissions: warm {} vs cold {}",
        warm.cache.stats.emissions,
        cold.cache.stats.emissions
    );
    // ...attributed to the snapshot, with every shard accepted...
    assert!(warm.cache.stats.warm_entries_loaded > 0);
    assert!(warm.cache.stats.warm_stage_hits > 0);
    assert!(warm.cache.stats.warm_emission_hits > 0);
    assert_eq!(warm.cache.stats.warm_shards_skipped, 0);
    // ...and with measurements byte-identical to the cold run.
    assert_eq!(warm.shaders, cold.shaders);
    assert_eq!(warm.measurements, cold.measurements);
    assert_eq!(warm.skipped, cold.skipped);
}

/// Property: save → load → full variant generation is byte-identical to a
/// cold session, at the session level (below the study harness), for every
/// backend text.
#[test]
fn warm_session_variants_are_byte_identical_to_cold() {
    use prism::emit::BackendKind;
    use prism::glsl::ShaderSource;

    let dir = ScratchDir::new("session-property");
    let case = corpus().blur9().clone();
    let source: &ShaderSource = &case.source;

    // Cold reference, private cache.
    let cold = CompileSession::new(source, &case.name).unwrap();
    let cold_set = cold.variants().unwrap();

    // First corpus-cached run populates the snapshot.
    let cache = Arc::new(CorpusCache::new());
    let first =
        CompileSession::with_cache(source, &case.name, cache.clone() as Arc<dyn CacheStore>)
            .unwrap();
    first.variants().unwrap();
    cache.save(&dir.0).unwrap();

    // A fresh process (fresh cache) warm-starts from disk.
    let warm_cache = Arc::new(CorpusCache::new());
    let report = warm_cache.load(&dir.0);
    assert!(report.entries_loaded > 0);
    assert_eq!(report.shards_skipped, 0);
    let warm = CompileSession::with_cache(
        source,
        &case.name,
        warm_cache.clone() as Arc<dyn CacheStore>,
    )
    .unwrap();
    let warm_set = warm.variants().unwrap();

    // Byte-identical variants in both backends, with zero stage work done.
    assert_eq!(warm_set.unique_count(), cold_set.unique_count());
    for (w, c) in warm_set.variants.iter().zip(&cold_set.variants) {
        assert_eq!(w.glsl, c.glsl);
        assert_eq!(w.flag_sets, c.flag_sets);
    }
    let warm_gles = warm
        .text_for(prism::core::OptFlags::all(), BackendKind::Gles)
        .unwrap();
    let cold_gles = cold
        .text_for(prism::core::OptFlags::all(), BackendKind::Gles)
        .unwrap();
    assert_eq!(*warm_gles, *cold_gles);
    let stats = warm_cache.stats();
    assert_eq!(stats.stage_runs, 0, "everything must come from disk");
    assert!(stats.warm_stage_hits > 0);
}

/// A truncated or garbage shard file degrades to a cold shard: the load
/// records the skip, nothing panics, and the sweep still produces results
/// byte-identical to a cold run (the damaged shard's work is simply redone).
#[test]
fn corrupt_snapshot_degrades_to_cold_without_changing_results() {
    let dir = ScratchDir::new("corrupt");
    let corpus = corpus();
    let config = warm_config(&dir);

    let cold = run_study(&corpus, &config);

    // Damage two shards: one torn mid-file, one replaced with garbage.
    let torn = dir.0.join("shard-04.json");
    let text = std::fs::read_to_string(&torn).unwrap();
    std::fs::write(&torn, &text[..text.len() / 3]).unwrap();
    std::fs::write(dir.0.join("shard-09.json"), "{]} not json at all").unwrap();

    let warm = run_study(&corpus, &config);
    assert_eq!(
        warm.cache.stats.warm_shards_skipped, 2,
        "both damaged shards must be recorded as skipped: {:?}",
        warm.cache
    );
    assert!(warm.cache.stats.warm_shards_loaded > 0);
    // Still strictly cheaper than fully cold (the intact shards helped)...
    assert!(warm.cache.stats.stage_runs <= cold.cache.stats.stage_runs);
    // ...and still byte-identical.
    assert_eq!(warm.shaders, cold.shaders);
    assert_eq!(warm.measurements, cold.measurements);

    // The save at the end of the damaged run healed the snapshot: a third
    // run loads every shard again.
    let healed = run_study(&corpus, &config);
    assert_eq!(healed.cache.stats.warm_shards_skipped, 0);
    assert_eq!(healed.measurements, cold.measurements);
}

/// An unwritable warm-start directory is reported as a warning, not a panic,
/// and does not disturb the measurements.
#[test]
fn unwritable_snapshot_dir_is_a_warning_not_a_failure() {
    let dir = ScratchDir::new("unwritable");
    // Occupy the path with a *file* so create_dir_all must fail.
    std::fs::write(&dir.0, "not a directory").unwrap();
    let corpus = corpus();
    let config = warm_config(&dir);

    let study = run_study(&corpus, &config);
    assert_eq!(study.warnings.len(), 1, "{:?}", study.warnings);
    assert!(study.warnings[0].contains("warm-start snapshot not saved"));

    let reference = run_study(&corpus, &StudyConfig::quick());
    assert_eq!(study.measurements, reference.measurements);
    let _ = std::fs::remove_file(&dir.0);
}
