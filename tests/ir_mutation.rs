//! Seeded IR mutation corruptors: deliberately break well-formed shaders and
//! demand the safety net (the structural verifier, or failing that a lint
//! diff) notices every single time.
//!
//! Four corruption kinds, each applied to every corpus shader in both its
//! unoptimized and LunarGLASS-default-optimized forms, at a site chosen by a
//! deterministic per-shader seed:
//!
//! 1. **drop a def** — remove a top-level single-definition register whose
//!    value is used later (use-before-def on every path);
//! 2. **lane out of range** — set a swizzle lane / extract index / insert
//!    index / store component to 9 (no vector is that wide);
//! 3. **retype a register** — change the declared width of the destination
//!    of a type-checked op (`Mov`, `Construct`, `Swizzle`, ...);
//! 4. **orphan an operand** — point an `Input`/`Uniform` operand at an index
//!    far past the interface tables.
//!
//! A mutant that neither fails [`verify`] nor changes the lint set is a
//! *silent survivor*; the suite requires zero of them.

use prism::analyze::lint;
use prism::core::{CompileSession, OptFlags};
use prism::corpus::Corpus;
use prism::ir::stmt::{rewrite_operands, walk_body};
use prism::ir::verify::verify;
use prism::ir::{IrType, Op, Operand, Reg, Shader, Stmt};
use std::collections::HashMap;

/// FNV-1a of the shader's label: a stable, shader-specific mutation seed so
/// different shaders corrupt different sites but every run corrupts the same
/// ones.
fn seed(label: &str, kind: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in label.bytes().chain(kind.bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Every corpus shader, in both unoptimized and default-optimized form.
fn corpus_shaders() -> Vec<(String, Shader)> {
    let mut shaders = Vec::new();
    for case in &Corpus::family_mix().cases {
        let session =
            CompileSession::new(&case.source, &case.name).expect("corpus shader must lower");
        shaders.push((format!("{}(base)", case.name), session.base_ir().clone()));
        let optimized = session
            .compile(OptFlags::lunarglass_default())
            .expect("corpus shader must compile");
        shaders.push((format!("{}(opt)", case.name), (*optimized.ir).clone()));
    }
    shaders
}

/// Visit every statement (including nested bodies) in program order.
fn for_each_stmt_mut(body: &mut Vec<Stmt>, visit: &mut impl FnMut(&mut Stmt)) {
    for stmt in body {
        visit(stmt);
        match stmt {
            Stmt::If {
                then_body,
                else_body,
                ..
            } => {
                for_each_stmt_mut(then_body, visit);
                for_each_stmt_mut(else_body, visit);
            }
            Stmt::Loop { body, .. } => for_each_stmt_mut(body, visit),
            _ => {}
        }
    }
}

/// `verify`-or-lint-diff detection. Returns `None` when the mutant was
/// caught, `Some(reason)` describing the silent survivor otherwise.
fn detect(label: &str, kind: &str, base: &Shader, mutant: &Shader) -> Option<String> {
    assert_ne!(base, mutant, "{label}/{kind}: mutation must change the IR");
    if verify(mutant).is_err() {
        return None;
    }
    if lint(mutant) != lint(base) {
        return None;
    }
    Some(format!("{label}/{kind}: verify passed and lints unchanged"))
}

#[test]
fn dropping_a_used_def_never_goes_unnoticed() {
    let mut survivors = Vec::new();
    let mut applied = 0usize;
    for (label, base) in corpus_shaders() {
        // Count defs and uses of every register across the whole body.
        let mut defs: HashMap<Reg, usize> = HashMap::new();
        let mut uses: HashMap<Reg, usize> = HashMap::new();
        walk_body(&base.body, &mut |stmt| {
            match stmt {
                Stmt::Def { dst, .. } => *defs.entry(*dst).or_default() += 1,
                Stmt::Loop { var, .. } => *defs.entry(*var).or_default() += 1,
                _ => {}
            }
            for operand in stmt.operands() {
                if let Operand::Reg(r) = operand {
                    *uses.entry(*r).or_default() += 1;
                }
            }
        });
        // A top-level def of a single-definition register that is read
        // elsewhere: removing it orphans every one of those reads.
        let sites: Vec<usize> = base
            .body
            .iter()
            .enumerate()
            .filter(|(_, stmt)| match stmt {
                Stmt::Def { dst, .. } => {
                    defs.get(dst) == Some(&1) && uses.get(dst).copied().unwrap_or(0) > 0
                }
                _ => false,
            })
            .map(|(i, _)| i)
            .collect();
        if sites.is_empty() {
            continue;
        }
        let site = sites[(seed(&label, "drop-def") as usize) % sites.len()];
        let mut mutant = base.clone();
        mutant.body.remove(site);
        applied += 1;
        survivors.extend(detect(&label, "drop-def", &base, &mutant));
    }
    assert!(
        applied >= 4,
        "too few drop-def sites across the corpus: {applied}"
    );
    assert!(survivors.is_empty(), "silent survivors: {survivors:?}");
}

#[test]
fn out_of_range_lanes_never_go_unnoticed() {
    let mut survivors = Vec::new();
    let mut applied = 0usize;
    for (label, base) in corpus_shaders() {
        // Count applicable sites first, then corrupt exactly one of them.
        let lane_sites = |stmt: &mut Stmt| -> bool {
            match stmt {
                Stmt::Def { op, .. } => matches!(
                    op,
                    Op::Swizzle { .. } | Op::Extract { .. } | Op::Insert { .. }
                ),
                Stmt::StoreOutput {
                    components: Some(c),
                    ..
                } => !c.is_empty(),
                _ => false,
            }
        };
        let mut count = 0usize;
        let mut mutant = base.clone();
        for_each_stmt_mut(&mut mutant.body, &mut |stmt| {
            if lane_sites(stmt) {
                count += 1;
            }
        });
        if count == 0 {
            continue;
        }
        let target = (seed(&label, "lane") as usize) % count;
        let mut index = 0usize;
        for_each_stmt_mut(&mut mutant.body, &mut |stmt| {
            let hit = lane_sites(stmt) && {
                let here = index == target;
                index += 1;
                here
            };
            if !hit {
                return;
            }
            match stmt {
                Stmt::Def {
                    op: Op::Swizzle { lanes, .. },
                    ..
                } => lanes[0] = 9,
                Stmt::Def {
                    op: Op::Extract { index, .. },
                    ..
                }
                | Stmt::Def {
                    op: Op::Insert { index, .. },
                    ..
                } => *index = 9,
                Stmt::StoreOutput {
                    components: Some(c),
                    ..
                } => c[0] = 9,
                _ => unreachable!("site predicate admitted a non-lane statement"),
            }
        });
        applied += 1;
        survivors.extend(detect(&label, "lane", &base, &mutant));
    }
    assert!(
        applied >= 2,
        "too few lane sites across the corpus: {applied}"
    );
    assert!(survivors.is_empty(), "silent survivors: {survivors:?}");
}

#[test]
fn retyping_a_register_never_goes_unnoticed() {
    let mut survivors = Vec::new();
    let mut applied = 0usize;
    for (label, base) in corpus_shaders() {
        // Destinations of ops whose result type the verifier pins exactly:
        // widening or narrowing the declared register type must trip it.
        let mut candidates: Vec<Reg> = Vec::new();
        walk_body(&base.body, &mut |stmt| {
            if let Stmt::Def { dst, op } = stmt {
                let pinned = matches!(
                    op,
                    Op::Mov(_)
                        | Op::Splat { .. }
                        | Op::Construct { .. }
                        | Op::Convert { .. }
                        | Op::TextureSample { .. }
                        | Op::Swizzle { .. }
                        | Op::Extract { .. }
                );
                if pinned {
                    candidates.push(*dst);
                }
            }
        });
        if candidates.is_empty() {
            continue;
        }
        let reg = candidates[(seed(&label, "retype") as usize) % candidates.len()];
        let mut mutant = base.clone();
        let old = mutant.regs[reg.0 as usize].ty;
        let new_width = if old.width == 4 { 1 } else { old.width + 1 };
        mutant.regs[reg.0 as usize].ty = IrType::vec(old.scalar, new_width);
        applied += 1;
        survivors.extend(detect(&label, "retype", &base, &mutant));
    }
    assert!(
        applied >= 4,
        "too few retype sites across the corpus: {applied}"
    );
    assert!(survivors.is_empty(), "silent survivors: {survivors:?}");
}

#[test]
fn orphaned_interface_operands_never_go_unnoticed() {
    let mut survivors = Vec::new();
    let mut applied = 0usize;
    for (label, base) in corpus_shaders() {
        let mut count = 0usize;
        let mut mutant = base.clone();
        rewrite_operands(&mut mutant.body, &mut |operand| {
            if matches!(operand, Operand::Input(_) | Operand::Uniform(_)) {
                count += 1;
            }
        });
        if count == 0 {
            continue;
        }
        let target = (seed(&label, "orphan") as usize) % count;
        let mut index = 0usize;
        rewrite_operands(&mut mutant.body, &mut |operand| {
            match operand {
                Operand::Input(i) | Operand::Uniform(i) => {
                    if index == target {
                        // No corpus shader declares anywhere near 100
                        // interface slots: this index dangles.
                        *i += 100;
                    }
                    index += 1;
                }
                _ => {}
            }
        });
        applied += 1;
        survivors.extend(detect(&label, "orphan", &base, &mutant));
    }
    assert!(
        applied >= 4,
        "too few orphan sites across the corpus: {applied}"
    );
    assert!(survivors.is_empty(), "silent survivors: {survivors:?}");
}
