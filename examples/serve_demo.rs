//! Compile-service demo: boot the sharded service, replay a Zipf-skewed
//! request stream, snapshot, warm-boot a second service from disk, show
//! both streams' work-counter latency profiles side by side, then run an
//! online flag-tune pass as a tenant of the warm service.
//!
//! ```text
//! cargo run --example serve_demo
//! ```

use prism::corpus::Corpus;
use prism::gpu::Vendor;
use prism::report::{fig_serve, ServeRow};
use prism::serve::{request_stream, run_stream, CompileService, ServeConfig, StreamSpec};

fn row(label: &str, summary: &prism::serve::LoadSummary) -> ServeRow {
    ServeRow {
        label: label.to_string(),
        requests: summary.requests,
        measured: summary.measured,
        p50_latency: summary.p50_latency,
        p99_latency: summary.p99_latency,
        memo_served: summary.memo_served,
        coalesced: summary.coalesced,
        zero_copy: summary.zero_copy,
        stage_runs: summary.stage_runs,
    }
}

fn main() {
    let corpus = Corpus::gfxbench_like();
    let spec = StreamSpec::standard(42, 800);
    let stream = request_stream(&corpus, &spec);
    let dir = std::env::temp_dir().join(format!("prism-serve-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = ServeConfig::default().with_warm_start_dir(dir.clone());

    // Cold service: the stream's head pays for its compiles once, then the
    // Zipf-hot tail rides the memo and the singleflight table.
    let cold = CompileService::new(config.clone());
    let warmup = spec.requests / 4;
    let cold_summary = run_stream(&cold, &stream, warmup);
    println!(
        "cold service: {} requests, {:.1}% free after the first {}",
        cold_summary.requests,
        100.0 * cold_summary.free_fraction(),
        warmup
    );
    let report = cold.shutdown().expect("snapshot").expect("warm dir set");
    println!(
        "snapshot: {} entries across {} shard files\n",
        report.entries_written, report.shards_written
    );

    // Warm boot: a fresh process loads the snapshot and serves the same
    // stream without running a single pass.
    let warm = CompileService::new(config);
    let warm_summary = run_stream(&warm, &stream, 0);
    println!(
        "warm-booted service: {} requests, {} stage runs",
        warm_summary.requests, warm_summary.stage_runs
    );
    assert_eq!(
        warm_summary.stage_runs, 0,
        "warm boot must not re-run stages"
    );
    println!();

    println!(
        "{}",
        fig_serve(&[row("cold", &cold_summary), row("warm boot", &warm_summary)])
    );

    // Search tenant: tune the blur flagship for the Mali phone through the
    // warm service. Its candidate compiles ride the memo the stream warmed.
    let flagship = corpus
        .cases
        .iter()
        .find(|c| c.name == "flagship_blur9")
        .expect("corpus carries the blur flagship");
    let outcome = warm
        .tune(&flagship.source.text, Vendor::Arm, 16)
        .expect("tune pass");
    let stats = warm.stats();
    println!(
        "online tune ({} on {}): best {:?} at {:.0} ns — {} measurements, {} compiles, {} emission memo hits total",
        flagship.name,
        outcome.vendor,
        outcome.best_flags,
        outcome.best_ns,
        outcome.measurements_taken,
        outcome.search_compiles,
        stats.cache.emission_hits,
    );
    let _ = std::fs::remove_dir_all(&dir);
}
