//! Corpus characterisation (the paper's §V / Fig. 4) without any timing:
//! lines of code, ARM static-analyser cycles and unique variant counts for
//! every shader in the corpus.
//!
//! ```text
//! cargo run --release --example corpus_characterization
//! ```

use prism::core::unique_variants;
use prism::corpus::Corpus;
use prism::glsl::loc::LocSummary;
use prism::gpu::{Platform, Vendor};

fn main() {
    let corpus = Corpus::gfxbench_like();
    let arm = Platform::new(Vendor::Arm);

    println!(
        "{:<28} {:>6} {:>14} {:>16}",
        "shader", "LoC", "ARM cycles", "unique variants"
    );
    let mut locs = Vec::new();
    let mut variant_counts = Vec::new();
    for case in &corpus.cases {
        let loc = case.lines_of_code();
        locs.push(loc);
        let cycles = arm
            .submit(&case.source.text, &case.name)
            .map(|c| arm.static_cycles(&c.driver_ir).total())
            .unwrap_or(0.0);
        let variants = unique_variants(&case.source, &case.name)
            .map(|v| v.unique_count())
            .unwrap_or(0);
        variant_counts.push(variants);
        println!(
            "{:<28} {:>6} {:>14.1} {:>16}",
            case.name, loc, cycles, variants
        );
    }

    println!();
    if let Some(summary) = LocSummary::from_counts(&locs) {
        println!(
            "lines of code: min {} / median {} / max {}; {:.0}% of shaders under 50 lines",
            summary.min,
            summary.median,
            summary.max,
            summary.fraction_under_50 * 100.0
        );
    }
    let max_variants = variant_counts.iter().copied().max().unwrap_or(0);
    let small = variant_counts.iter().filter(|&&v| v < 10).count();
    println!(
        "unique variants: max {max_variants}; {small}/{} shaders have fewer than 10 distinct variants",
        variant_counts.len()
    );
}
