//! Quickstart: optimize one shader and see what each platform thinks of it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use prism::core::{compile, Flag, OptFlags};
use prism::glsl::ShaderSource;
use prism::gpu::{Platform, Vendor};

fn main() {
    // The paper's motivating example (Listing 1): a 9-tap weighted blur.
    let source = ShaderSource::parse(prism::corpus::flagship::BLUR9).expect("front-end");
    println!("original shader: {} lines of code\n", source.lines_of_code);

    // Compile it with the flag set the paper's custom passes target.
    let flags = OptFlags::from_flags(&[
        Flag::Unroll,
        Flag::Coalesce,
        Flag::FpReassociate,
        Flag::DivToMul,
    ]);
    let optimized = compile(&source, "blur9", flags).expect("optimizer");
    println!("--- optimized GLSL ({flags}) ---\n{}\n", optimized.glsl);

    // Submit both versions to each simulated GPU and compare.
    println!(
        "{:<10} {:>14} {:>14} {:>9}",
        "platform", "original (ns)", "optimized (ns)", "speed-up"
    );
    for vendor in Vendor::ALL {
        let platform = Platform::new(vendor);
        let before = platform
            .submit(&source.text, "blur9")
            .expect("driver")
            .ideal_frame_ns;
        let after = platform
            .submit(&optimized.glsl, "blur9")
            .expect("driver")
            .ideal_frame_ns;
        println!(
            "{:<10} {:>14.0} {:>14.0} {:>+8.2}%",
            vendor.name(),
            before,
            after,
            (before - after) / before * 100.0
        );
    }
}
