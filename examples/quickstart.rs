//! Quickstart: optimize one shader and see what each platform thinks of it.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use prism::core::{CompileSession, Flag, OptFlags};
use prism::emit::BackendKind;
use prism::glsl::ShaderSource;
use prism::gpu::{Platform, Vendor};

fn main() {
    // The paper's motivating example (Listing 1): a 9-tap weighted blur.
    let source = ShaderSource::parse(prism::corpus::flagship::BLUR9).expect("front-end");
    println!("original shader: {} lines of code\n", source.lines_of_code);

    // Compile it with the flag set the paper's custom passes target. The
    // session serves every platform's source form from one optimized IR.
    let flags = OptFlags::from_flags(&[
        Flag::Unroll,
        Flag::Coalesce,
        Flag::FpReassociate,
        Flag::DivToMul,
    ]);
    let session = CompileSession::new(&source, "blur9").expect("session");
    let optimized = session.compile(flags).expect("optimizer");
    println!("--- optimized GLSL ({flags}) ---\n{}\n", optimized.glsl);

    // Submit both versions to each simulated GPU — in the source form its
    // driver consumes — and compare.
    println!(
        "{:<10} {:>8} {:>14} {:>14} {:>9}",
        "platform", "backend", "original (ns)", "optimized (ns)", "speed-up"
    );
    for vendor in Vendor::ALL {
        let platform = Platform::new(vendor);
        let backend = platform.backend();
        // Desktop OpenGL drivers take the original text as-is; every other
        // driver measures the original through the conversion path.
        let original_converted;
        let original: &str = if backend == BackendKind::DesktopGlsl {
            &source.text
        } else {
            original_converted = session.base_text_for(backend);
            &original_converted
        };
        let optimized_text = session.text_for(flags, backend).expect("emit");
        let before = platform
            .submit(original, "blur9")
            .expect("driver")
            .ideal_frame_ns;
        let after = platform
            .submit(&optimized_text, "blur9")
            .expect("driver")
            .ideal_frame_ns;
        println!(
            "{:<10} {:>8} {:>14.0} {:>14.0} {:>+8.2}%",
            vendor.name(),
            backend.name(),
            before,
            after,
            (before - after) / before * 100.0
        );
    }
}
