//! Per-flag isolated impact (the paper's Fig. 9) on a corpus slice: each flag
//! alone versus the all-flags-off LunarGlass baseline, per platform.
//!
//! ```text
//! cargo run --release --example per_flag_analysis
//! ```

use prism::core::Flag;
use prism::corpus::Corpus;
use prism::report::ViolinSummary;
use prism::search::{flag_impact, run_study, StudyConfig};

fn main() {
    let full = Corpus::gfxbench_like();
    let corpus = Corpus {
        cases: full
            .cases
            .into_iter()
            .filter(|c| {
                c.family == "flagship"
                    || c.family == "shadow_filter"
                    || c.family == "bloom_blur"
                    || c.family == "forward_lit"
            })
            .take(16)
            .collect(),
    };
    println!("measuring {} shaders...\n", corpus.len());
    let study = run_study(&corpus, &StudyConfig::quick());

    for vendor in study.platforms() {
        println!("{vendor}");
        for flag in Flag::ALL {
            let impact = flag_impact(&study, &vendor, flag);
            println!(
                "  {:<16} {}  (changed {} shaders)",
                flag.name(),
                ViolinSummary::of(&impact.speedups),
                impact.nonzero_count()
            );
        }
        println!();
    }
}
