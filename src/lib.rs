//! # prism — a reproduction of *"A Cross-platform Evaluation of Graphics
//! Shader Compiler Optimization"* (Crawford & O'Boyle, ISPASS 2018)
//!
//! The workspace rebuilds, from scratch and in Rust, every system the paper
//! uses or depends on:
//!
//! | layer | crate | paper counterpart |
//! |---|---|---|
//! | GLSL front-end | [`glsl`] | LunarGlass GLSL front-end / glslang |
//! | shader IR + structural fingerprint | [`ir`] | LLVM 3.4 IR inside LunarGlass |
//! | offline optimizer (8 flags) | [`core`] | LunarGlass passes + the paper's custom unsafe FP passes |
//! | variant compile sessions | [`core`] (`session`) | — (engineering: lower-once, prefix-shared 256-way variant generation) |
//! | multi-target back-end | [`emit`] | LunarGlass GLSL back-end + the mobile SPIRV-Cross path, extended to SPIR-V assembly and MSL |
//! | GPU substrate | [`gpu`] | the five physical GPUs + their drivers, extended with a Vulkan desktop and a Metal phone |
//! | benchmark corpus | [`corpus`] | GFXBench 4.0 fragment shaders |
//! | timing harness | [`harness`] | the paper's isolated draw-call timing framework |
//! | exhaustive search | [`search`] | the 256-combination iterative compilation study |
//! | figures/tables | [`report`] | the evaluation section's figures and Table I |
//!
//! The hot path of the study — compiling every shader under all 256 flag
//! combinations — runs through [`core::CompileSession`]: each shader is
//! lowered to IR once, the pass schedule is replayed as inspectable stages
//! whose IR snapshots are shared across combinations with a common schedule
//! prefix, and a commutative-aware structural fingerprint
//! ([`ir::fingerprint`]) short-circuits duplicate states before GLSL
//! emission. The session output is byte-identical to brute force (the
//! property suite proves it) at a fraction of the cost, and one session per
//! shader serves all seven platforms in [`search`] through four emission
//! backends (desktop GLSL, GLES, SPIR-V assembly, MSL).
//!
//! ## Quick start
//!
//! ```
//! use prism::core::{compile, Flag, OptFlags};
//! use prism::glsl::ShaderSource;
//! use prism::gpu::{Platform, Vendor};
//!
//! // The paper's motivating blur shader, optimized with the custom passes.
//! let source = ShaderSource::parse(prism::corpus::flagship::BLUR9).unwrap();
//! let flags = OptFlags::from_flags(&[Flag::Unroll, Flag::FpReassociate, Flag::DivToMul]);
//! let optimized = compile(&source, "blur", flags).unwrap();
//!
//! // Submit both versions to a simulated GPU and compare frame times.
//! let gpu = Platform::new(Vendor::Arm);
//! let before = gpu.submit(&source.text, "blur").unwrap().ideal_frame_ns;
//! let after = gpu.submit(&optimized.glsl, "blur").unwrap().ideal_frame_ns;
//! assert!(after < before);
//! ```

/// The GLSL front-end (`prism-glsl`).
pub use prism_glsl as glsl;

/// The shader IR (`prism-ir`).
pub use prism_ir as ir;

/// The flag-driven offline optimizer (`prism-core`).
pub use prism_core as core;

/// The IR → source-text back-ends (`prism-emit`).
pub use prism_emit as emit;

/// The seven-vendor GPU substrate (`prism-gpu`).
pub use prism_gpu as gpu;

/// The static analysis layer — cost models and lints (`prism-analyze`).
pub use prism_analyze as analyze;

/// The GFXBench-like shader corpus (`prism-corpus`).
pub use prism_corpus as corpus;

/// The isolated timing harness (`prism-harness`).
pub use prism_harness as harness;

/// The exhaustive iterative-compilation search (`prism-search`).
pub use prism_search as search;

/// The sharded compile service (`prism-serve`).
pub use prism_serve as serve;

/// Statistics and figure/table renderers (`prism-report`).
pub use prism_report as report;

#[cfg(test)]
mod tests {
    #[test]
    fn facade_re_exports_are_wired() {
        // One symbol per layer, to catch broken re-exports early.
        let _ = crate::core::OptFlags::all();
        let _ = crate::gpu::Vendor::ALL;
        let _ = crate::analyze::lint::ids::DEAD_OUTPUT;
        let _ = crate::corpus::flagship::BLUR9;
        let _ = crate::harness::MeasureConfig::quick();
        let _ = crate::serve::ServeConfig::default();
        let _ = crate::report::ViolinSummary::of(&[1.0]);
    }
}
