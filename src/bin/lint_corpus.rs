//! CI lint artifact: the static-analysis reports for the flagship corpus.
//!
//! Compiles every corpus shader to its LunarGLASS-default optimized form,
//! runs the per-platform static analyser ([`prism::analyze`]) under all
//! seven platform personalities, and writes the full set of
//! [`StaticReport`]s as one JSON array. CI uploads the file as a build
//! artifact so lint drift between commits is diffable without re-running
//! anything.
//!
//! Usage: `lint_corpus [--out lint-report.json]` (defaults to stdout).
//!
//! [`StaticReport`]: prism::analyze::StaticReport

use prism::analyze::{analyze, Severity};
use prism::core::{CompileSession, OptFlags};
use prism::corpus::Corpus;
use prism::gpu::Vendor;
use std::process::ExitCode;

/// Every (shader × personality) report for the corpus, as JSON objects.
fn corpus_reports(corpus: &Corpus) -> Result<(Vec<String>, [usize; 2]), String> {
    let mut reports = Vec::new();
    // info / warning tallies for the console summary.
    let mut by_severity = [0usize; 2];
    for case in &corpus.cases {
        let session = CompileSession::new(&case.source, &case.name)
            .map_err(|e| format!("{}: front-end rejected corpus shader: {e}", case.name))?;
        let compiled = session
            .compile(OptFlags::lunarglass_default())
            .map_err(|e| format!("{}: optimization failed: {e}", case.name))?;
        for vendor in Vendor::ALL {
            let report = analyze(&compiled.ir, vendor);
            for lint in &report.lints {
                let bucket = match lint.severity {
                    Severity::Info => 0,
                    Severity::Warning => 1,
                };
                by_severity[bucket] += 1;
            }
            reports.push(report.to_json().map_err(|e| {
                format!(
                    "{}/{}: report serialisation failed: {e}",
                    case.name,
                    vendor.name()
                )
            })?);
        }
    }
    Ok((reports, by_severity))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => out_path = Some(iter.next().expect("--out needs a path").clone()),
            other => {
                eprintln!("unknown argument `{other}` (expected --out)");
                return ExitCode::FAILURE;
            }
        }
    }

    let corpus = Corpus::gfxbench_like();
    let (reports, by_severity) = match corpus_reports(&corpus) {
        Ok(r) => r,
        Err(message) => {
            eprintln!("lint_corpus: {message}");
            return ExitCode::FAILURE;
        }
    };
    let json = format!("[\n{}\n]\n", reports.join(",\n"));
    match &out_path {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("lint_corpus: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "lint_corpus: wrote {} reports ({} shaders x {} personalities) to {path}",
                reports.len(),
                corpus.cases.len(),
                Vendor::ALL.len()
            );
        }
        None => print!("{json}"),
    }
    eprintln!(
        "lint_corpus: lints by severity — info={} warning={}",
        by_severity[0], by_severity[1]
    );
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;
    use prism::analyze::StaticReport;

    #[test]
    fn corpus_reports_cover_every_shader_and_personality() {
        let corpus = Corpus::family_mix();
        let (reports, _) = corpus_reports(&corpus).expect("corpus lints");
        assert_eq!(reports.len(), corpus.cases.len() * Vendor::ALL.len());
        for json in &reports {
            let report = StaticReport::from_json(json).expect("artifact entries parse back");
            assert!(report.cost.estimated_cycles > 0.0);
            assert!(Vendor::from_name(&report.personality).is_some());
        }
    }
}
