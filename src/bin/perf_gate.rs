//! CI perf-regression gate over deterministic compile-work counters.
//!
//! Wall-clock benchmarks are useless as CI gates (shared runners, thermal
//! noise); the quantities that actually protect the hot path are the
//! *deterministic* work counters the caching subsystems maintain: stage runs
//! avoided, cache hits, emission dedup, the incremental search's compile
//! counts, and the warm-start persistence layer's disk-hit counters (the
//! smoke sweep is run twice against one snapshot directory; the second run
//! must do strictly less work with byte-identical results — hard-asserted
//! here, not just baselined). This binary runs the smoke-sized study
//! (single-threaded, fixed seeds, so every counter is exactly
//! reproducible), writes them as a `BENCH_perf_gate.json` baseline, and —
//! with `--check <baseline>` — fails (exit 1) if any counter regresses
//! beyond a threshold against the committed baseline.
//!
//! ```text
//! cargo run --release --bin perf_gate -- --out BENCH_perf_gate.json \
//!     --check ci/bench-baseline.json
//! # regenerate the committed baseline after an intentional change:
//! cargo run --release --bin perf_gate -- --out ci/bench-baseline.json
//! ```
//!
//! The relative tolerance defaults to 10% (plus an absolute grace of 2 for
//! tiny counters) and can be overridden with `PRISM_GATE_TOLERANCE=0.05`.

use prism::corpus::Corpus;
use prism::gpu::Vendor;
use prism::search::{run_study, standard_strategies, SearchConfig, StudyConfig, StudyResults};
use prism::serve::{request_stream, run_stream, CompileService, ServeConfig, StreamSpec, TuneSpec};
use std::process::ExitCode;

/// One gated counter: a deterministic measurement plus the direction in
/// which it is allowed to move freely.
#[derive(Debug, Clone, PartialEq)]
struct Counter {
    name: String,
    value: f64,
    higher_is_better: bool,
}

serde::impl_serde_struct!(Counter {
    name,
    value,
    higher_is_better
});

/// The on-disk `BENCH_*.json` shape.
#[derive(Debug, Clone, PartialEq)]
struct GateReport {
    schema: usize,
    counters: Vec<Counter>,
}

serde::impl_serde_struct!(GateReport { schema, counters });

/// The smoke corpus: übershader family members (cache sharing), the blur
/// flagship (optimization headroom), and simple shaders.
fn gate_corpus() -> Corpus {
    Corpus::family_mix()
}

/// Runs the deterministic smoke study and extracts the gated counters.
fn measure() -> GateReport {
    // Single worker thread: the shared-cache counters depend on which
    // session reaches a memo first, so determinism requires a sequential
    // sweep. Timings are seeded per (shader, platform) and deterministic
    // regardless.
    let config = StudyConfig {
        threads: 1,
        search: Some(SearchConfig::default()),
        ..StudyConfig::quick()
    };
    let corpus = gate_corpus();
    let ir_before = prism::ir::counters::snapshot();
    let study = run_study(&corpus, &config);
    let ir_work = prism::ir::counters::snapshot().since(&ir_before);
    let warm = measure_warm_start(&corpus);

    let stats = &study.cache.stats;
    let exhaustive_combinations = (study.shaders.len() * 256) as f64;
    let unique_variants: usize = study.shaders.iter().map(|s| s.unique_variants).sum();
    let mut counters = vec![
        Counter {
            name: "stage_runs".into(),
            value: stats.stage_runs as f64,
            higher_is_better: false,
        },
        Counter {
            name: "stage_hits".into(),
            value: stats.stage_hits as f64,
            higher_is_better: true,
        },
        Counter {
            name: "cross_shader_stage_hits".into(),
            value: stats.cross_shader_stage_hits as f64,
            higher_is_better: true,
        },
        Counter {
            name: "emissions".into(),
            value: stats.emissions as f64,
            higher_is_better: false,
        },
        Counter {
            name: "emission_hits".into(),
            value: stats.emission_hits as f64,
            higher_is_better: true,
        },
        Counter {
            name: "variant_dedup_ratio".into(),
            value: exhaustive_combinations / unique_variants.max(1) as f64,
            higher_is_better: true,
        },
        // Zero-copy IR plane: deep-clone / hashing work attributed to the
        // sequential study sweep via the process-global IR counters.
        Counter {
            name: "ir_clones".into(),
            value: ir_work.ir_clones as f64,
            higher_is_better: false,
        },
        Counter {
            name: "fingerprints_computed".into(),
            value: ir_work.fingerprints_computed as f64,
            higher_is_better: false,
        },
        Counter {
            name: "equality_confirms".into(),
            value: ir_work.equality_confirms as f64,
            higher_is_better: false,
        },
        Counter {
            name: "identity_transitions".into(),
            value: ir_work.identity_transitions as f64,
            higher_is_better: true,
        },
    ];

    // Per-backend emission counters: the per-target split of `emissions`.
    // Names come from the backend set itself, so adding a fifth backend
    // emits an un-baselined counter and fails the gate until the baseline is
    // deliberately regenerated — exactly like a new search strategy.
    for backend in prism::emit::BackendKind::ALL {
        counters.push(Counter {
            name: format!("emissions_{}", backend.name()),
            value: stats.emissions_by_backend[backend.index()] as f64,
            higher_is_better: false,
        });
    }

    // Incremental search: distinct combinations compiled per strategy,
    // summed over shaders and platforms. Names come from the strategy set
    // itself, so a renamed or added strategy changes the emitted counters
    // (and the stale baseline name then fails the gate) instead of silently
    // gating nothing. (The complementary "compiles avoided" number is just
    // `256 * shaders - spent`, so gating it too would double-report every
    // regression.)
    for strategy in standard_strategies(&SearchConfig::default()) {
        let name = strategy.name();
        let spent: f64 = study
            .search
            .iter()
            .filter(|r| r.strategy == name)
            .map(|r| r.mean_compiles * r.shaders as f64)
            .sum();
        counters.push(Counter {
            name: format!("search_compiles_{name}"),
            value: spent,
            higher_is_better: false,
        });
    }
    counters.extend(warm);
    counters.extend(measure_serve(&corpus));
    counters.extend(measure_tune(&corpus, &study));
    counters.extend(measure_specialize(&corpus));

    GateReport {
        schema: 1,
        counters,
    }
}

/// The specialization phase: a flags × assumptions sweep over the smoke
/// corpus against one shared cache — every candidate zero/one assumption is
/// folded into a guarded dispatch at two flag sets and differentially
/// interp-verified in both guard directions. Gates the specialization work
/// counters and *hard-asserts* the dedup contract: the fingerprint
/// transition graph must absorb at least half of the specialized stage work
/// (hits ≥ runs), because specialized bases intern into the same planes the
/// flag axis already warmed.
fn measure_specialize(corpus: &Corpus) -> Vec<Counter> {
    use prism::core::specialize::{candidate_keys, default_probe_points, verify_specialization};
    use prism::core::{spec_counters, CacheStore, CompileSession, CorpusCache, OptFlags};
    use std::sync::Arc;

    let before = spec_counters();
    let cache = Arc::new(CorpusCache::new());
    let probes = default_probe_points();
    for case in &corpus.cases {
        let session = CompileSession::with_cache_in_family(
            &case.source,
            &case.name,
            &case.family,
            cache.clone() as Arc<dyn CacheStore>,
        )
        .expect("smoke corpus session");
        for key in candidate_keys(session.base_ir(), 4) {
            for flags in [OptFlags::NONE, OptFlags::lunarglass_default()] {
                let dispatch = match session.dispatch_for(
                    flags,
                    &key,
                    prism::emit::BackendKind::DesktopGlsl,
                ) {
                    Ok(dispatch) => dispatch,
                    Err(_) => continue,
                };
                verify_specialization(&dispatch, &probes).unwrap_or_else(|d| {
                    panic!("specialization miscompile in the gate sweep: {}", d.message)
                });
            }
        }
    }
    let stats = cache.stats();
    let delta = spec_counters().since(&before);
    assert!(
        delta.specializations_generated > 0,
        "the smoke corpus must admit specializations"
    );
    assert!(
        stats.stage_hits >= stats.stage_runs,
        "fingerprint dedup must absorb at least half the specialized stage work \
         ({} hits vs {} runs)",
        stats.stage_hits,
        stats.stage_runs
    );

    vec![
        Counter {
            name: "specializations_generated".into(),
            value: delta.specializations_generated as f64,
            higher_is_better: false,
        },
        Counter {
            name: "spec_guard_dispatches".into(),
            value: delta.spec_guard_dispatches as f64,
            higher_is_better: true,
        },
        Counter {
            name: "spec_interp_confirms".into(),
            value: delta.spec_interp_confirms as f64,
            higher_is_better: true,
        },
    ]
}

/// The compile-service phase: a seeded Zipf request stream replayed against
/// an inline (deterministic) service, then replayed again by a service
/// warm-booted from the first one's snapshot. Gates the per-request p50/p99
/// work-counter latencies and the memo-served volume, and *hard-asserts*
/// the serving contracts — p50 is free after warm-up, and the warm-booted
/// replay performs zero stage runs — so those cannot regress even within
/// baseline slack.
fn measure_serve(corpus: &Corpus) -> Vec<Counter> {
    let spec = StreamSpec::standard(7, 400);
    let stream = request_stream(corpus, &spec);
    let warmup = stream.len() / 4;
    let dir = std::env::temp_dir().join(format!("prism-perf-gate-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = ServeConfig::default().with_warm_start_dir(dir.clone());

    let cold = CompileService::new(config.clone());
    let summary = run_stream(&cold, &stream, warmup);
    cold.shutdown().expect("serve snapshot");
    let warm_service = CompileService::new(config);
    let warm_summary = run_stream(&warm_service, &stream, 0);
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(summary.errors, 0, "corpus requests must all serve");
    assert_eq!(
        summary.p50_latency, 0,
        "the median post-warm-up request must be memo-served"
    );
    assert_eq!(
        warm_summary.stage_runs, 0,
        "a warm-booted service must replay the stream without running a stage"
    );
    assert_eq!(
        warm_summary.memo_served, warm_summary.measured,
        "every warm-booted request must be memo-served"
    );

    vec![
        Counter {
            name: "serve_p50_request_work".into(),
            value: summary.p50_latency as f64,
            higher_is_better: false,
        },
        Counter {
            name: "serve_p99_request_work".into(),
            value: summary.p99_latency as f64,
            higher_is_better: false,
        },
        Counter {
            name: "serve_total_work".into(),
            value: summary.total_work as f64,
            higher_is_better: false,
        },
        Counter {
            name: "serve_memo_served".into(),
            value: summary.memo_served as f64,
            higher_is_better: true,
        },
        Counter {
            name: "serve_warm_replay_stage_runs".into(),
            value: warm_summary.stage_runs as f64,
            higher_is_better: false,
        },
    ]
}

/// The online-tune phase: a measurement-in-the-loop flag search rides a
/// service that is already carrying serving traffic, so the search tenant's
/// compiles hit the same memo plane the servers warmed. Gates the tune cost
/// counters (`tune_measurements`, `search_compiles`) and the anytime quality
/// gauge (`tune_regret_x1000`, scored against the smoke study's exhaustive
/// record for the same shader and platform), and *hard-asserts* the tenancy
/// contract: the budget holds, and the tuner re-emits strictly less than it
/// compiles because the serving plane already paid for shared variants.
fn measure_tune(corpus: &Corpus, study: &StudyResults) -> Vec<Counter> {
    let service = CompileService::new(ServeConfig::default());
    let stream = request_stream(corpus, &StreamSpec::standard(11, 160));
    let serving = run_stream(&service, &stream, 0);
    assert_eq!(serving.errors, 0, "corpus requests must all serve");

    let case = corpus
        .cases
        .iter()
        .find(|c| c.name == "flagship_blur9")
        .expect("smoke corpus carries the blur flagship");
    let oracle = study
        .measurements
        .iter()
        .find(|r| r.shader == case.name && r.vendor == Vendor::Amd.name())
        .expect("smoke study measured the flagship on AMD");
    let before = service.stats();
    let spec = TuneSpec::new(Vendor::Amd).with_family(case.family.as_str());
    let outcome = service
        .tune_spec(&case.source.text, &spec, Some(oracle))
        .expect("flagship tune pass");
    let stats = service.stats();

    assert!(
        outcome.measurements_taken <= outcome.budget,
        "tune must respect its measurement budget ({} > {})",
        outcome.measurements_taken,
        outcome.budget
    );
    assert!(
        stats.cache.emissions - before.cache.emissions < outcome.search_compiles,
        "the tuner must reuse emissions the serving plane already paid for"
    );
    assert_eq!(stats.tune_requests, 1);

    // Second pass with the static prefilter on: the analysis plane (fresh
    // walks, memo hits, lints) and the pruning ledger become gated work
    // counters of their own. Hard-assert the prefilter contract first — it
    // must actually skip measurements, and every analysis it consumed must
    // have gone through the per-(fingerprint, personality) memo.
    let filtered_spec = TuneSpec::new(Vendor::Amd)
        .with_family(case.family.as_str())
        .with_static_prefilter(true);
    let filtered = service
        .tune_spec(&case.source.text, &filtered_spec, Some(oracle))
        .expect("prefiltered flagship tune pass");
    let stats = service.stats();
    assert!(
        filtered.candidates_pruned > 0,
        "the static prefilter must prune at least one candidate"
    );
    assert_eq!(
        filtered.search_compiles,
        filtered.measurements_taken + filtered.candidates_pruned,
        "every evaluated candidate is either measured or pruned"
    );
    assert!(
        stats.cache.static_analyses > 0,
        "the prefilter must have walked fresh analyses"
    );

    vec![
        Counter {
            name: "tune_measurements".into(),
            value: stats.measurements_taken as f64,
            higher_is_better: false,
        },
        Counter {
            name: "search_compiles".into(),
            value: stats.search_compiles as f64,
            higher_is_better: false,
        },
        Counter {
            name: "tune_regret_x1000".into(),
            value: stats.tune_regret_x1000 as f64,
            higher_is_better: false,
        },
        Counter {
            name: "static_analyses".into(),
            value: stats.cache.static_analyses as f64,
            higher_is_better: false,
        },
        Counter {
            name: "analysis_memo_hits".into(),
            value: stats.cache.analysis_memo_hits as f64,
            higher_is_better: true,
        },
        Counter {
            name: "lints_emitted".into(),
            value: stats.lints_emitted as f64,
            higher_is_better: false,
        },
        Counter {
            name: "search_candidates_pruned".into(),
            value: stats.search_candidates_pruned as f64,
            higher_is_better: true,
        },
    ]
}

/// The warm-start phase: the same smoke sweep run twice against one
/// persistent snapshot directory — the first run populates it, the second
/// must warm-start from it. Besides emitting the gated counters, this
/// *hard-asserts* the persistence contract (strictly fewer stage runs and
/// emissions, byte-identical measurements, no skipped shards), so a
/// regression fails the gate even before any baseline comparison.
fn measure_warm_start(corpus: &Corpus) -> Vec<Counter> {
    let dir = std::env::temp_dir().join(format!("prism-perf-gate-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = StudyConfig {
        threads: 1,
        warm_start_dir: Some(dir.clone()),
        ..StudyConfig::quick()
    };
    let cold = run_study(corpus, &config);
    let warm = run_study(corpus, &config);
    let _ = std::fs::remove_dir_all(&dir);

    assert!(
        cold.warnings.is_empty() && warm.warnings.is_empty(),
        "warm-start snapshot round trip must be clean: {:?} / {:?}",
        cold.warnings,
        warm.warnings
    );
    assert_eq!(
        warm.cache.stats.warm_shards_skipped, 0,
        "a snapshot this process just wrote must load in full"
    );
    assert!(
        warm.cache.stats.stage_runs < cold.cache.stats.stage_runs,
        "warm run must re-run strictly fewer stages ({} vs {})",
        warm.cache.stats.stage_runs,
        cold.cache.stats.stage_runs
    );
    assert!(
        warm.cache.stats.emissions < cold.cache.stats.emissions,
        "warm run must emit strictly less ({} vs {})",
        warm.cache.stats.emissions,
        cold.cache.stats.emissions
    );
    assert_eq!(
        warm.measurements, cold.measurements,
        "warm start must not change a single measurement"
    );

    let stats = &warm.cache.stats;
    vec![
        Counter {
            name: "warm_stage_runs".into(),
            value: stats.stage_runs as f64,
            higher_is_better: false,
        },
        Counter {
            name: "warm_stage_hits".into(),
            value: stats.warm_stage_hits as f64,
            higher_is_better: true,
        },
        Counter {
            name: "warm_emissions".into(),
            value: stats.emissions as f64,
            higher_is_better: false,
        },
        Counter {
            name: "warm_emission_hits".into(),
            value: stats.warm_emission_hits as f64,
            higher_is_better: true,
        },
        Counter {
            name: "warm_entries_loaded".into(),
            value: stats.warm_entries_loaded as f64,
            higher_is_better: true,
        },
    ]
}

/// Compares `current` against `baseline`; returns the regression messages.
/// Name mismatches fail in both directions: a counter that disappeared AND a
/// counter the baseline has never seen (e.g. a newly added strategy) both
/// demand a deliberate baseline regeneration, otherwise the new counter
/// would sit un-gated.
fn regressions(current: &GateReport, baseline: &GateReport, tolerance: f64) -> Vec<String> {
    let mut failures = Vec::new();
    for now in &current.counters {
        if !baseline.counters.iter().any(|b| b.name == now.name) {
            failures.push(format!(
                "counter `{}` is not in the baseline — regenerate it to start gating the counter",
                now.name
            ));
        }
    }
    for base in &baseline.counters {
        let Some(now) = current.counters.iter().find(|c| c.name == base.name) else {
            failures.push(format!(
                "counter `{}` present in the baseline but no longer measured",
                base.name
            ));
            continue;
        };
        // Relative tolerance with a small absolute grace so near-zero
        // counters do not gate on ±1 jitter-free-but-intentional changes.
        let slack = (base.value.abs() * tolerance).max(2.0);
        let (regressed, direction) = if base.higher_is_better {
            (now.value < base.value - slack, "fell")
        } else {
            (now.value > base.value + slack, "rose")
        };
        if regressed {
            failures.push(format!(
                "counter `{}` {} from {} to {} (allowed slack {:.1})",
                base.name, direction, base.value, now.value, slack
            ));
        }
    }
    failures
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = String::from("BENCH_perf_gate.json");
    let mut check_path: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--out" => out_path = iter.next().expect("--out needs a path").clone(),
            "--check" => check_path = Some(iter.next().expect("--check needs a path").clone()),
            other => {
                eprintln!("unknown argument `{other}` (expected --out/--check)");
                return ExitCode::FAILURE;
            }
        }
    }
    let tolerance: f64 = std::env::var("PRISM_GATE_TOLERANCE")
        .ok()
        .and_then(|t| t.parse().ok())
        .unwrap_or(0.10);

    let report = measure();
    let json = serde_json::to_string(&report).expect("gate report serialises");
    std::fs::write(&out_path, &json).expect("write gate report");
    println!(
        "perf gate: wrote {} counters to {out_path}",
        report.counters.len()
    );
    for c in &report.counters {
        println!(
            "  {:<36} {:>10.1}  ({})",
            c.name,
            c.value,
            if c.higher_is_better {
                "higher is better"
            } else {
                "lower is better"
            }
        );
    }

    let Some(check_path) = check_path else {
        return ExitCode::SUCCESS;
    };
    let baseline_text = match std::fs::read_to_string(&check_path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("perf gate: cannot read baseline {check_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline: GateReport = match serde_json::from_str(&baseline_text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("perf gate: malformed baseline {check_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let failures = regressions(&report, &baseline, tolerance);
    if failures.is_empty() {
        println!(
            "perf gate: OK — no counter regressed beyond {:.0}% vs {check_path}",
            tolerance * 100.0
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("perf gate: FAILED vs {check_path}");
        for f in &failures {
            eprintln!("  {f}");
        }
        eprintln!(
            "(intentional change? regenerate with: cargo run --release --bin perf_gate -- --out {check_path})"
        );
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter(name: &str, value: f64, higher: bool) -> Counter {
        Counter {
            name: name.into(),
            value,
            higher_is_better: higher,
        }
    }

    fn report(counters: Vec<Counter>) -> GateReport {
        GateReport {
            schema: 1,
            counters,
        }
    }

    #[test]
    fn regression_detection_respects_direction_and_tolerance() {
        let baseline = report(vec![
            counter("hits", 100.0, true),
            counter("runs", 100.0, false),
        ]);
        // Within tolerance: fine in both directions.
        let ok = report(vec![
            counter("hits", 95.0, true),
            counter("runs", 105.0, false),
        ]);
        assert!(regressions(&ok, &baseline, 0.10).is_empty());
        // Beyond tolerance in the bad direction: flagged.
        let bad = report(vec![
            counter("hits", 80.0, true),
            counter("runs", 100.0, false),
        ]);
        let failures = regressions(&bad, &baseline, 0.10);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("hits"));
        // Beyond tolerance in the good direction: never flagged.
        let better = report(vec![
            counter("hits", 200.0, true),
            counter("runs", 10.0, false),
        ]);
        assert!(regressions(&better, &baseline, 0.10).is_empty());
    }

    #[test]
    fn name_mismatches_fail_the_gate_in_both_directions() {
        let baseline = report(vec![counter("hits", 100.0, true)]);
        let current = report(vec![counter("other", 1.0, true)]);
        let failures = regressions(&current, &baseline, 0.10);
        assert_eq!(failures.len(), 2);
        assert!(failures.iter().any(|f| f.contains("not in the baseline")));
        assert!(failures.iter().any(|f| f.contains("no longer measured")));
    }

    #[test]
    fn small_counters_get_absolute_grace() {
        let baseline = report(vec![counter("tiny", 3.0, true)]);
        let current = report(vec![counter("tiny", 1.0, true)]);
        assert!(regressions(&current, &baseline, 0.10).is_empty());
        let gone = report(vec![counter("tiny", 0.0, true)]);
        assert_eq!(regressions(&gone, &baseline, 0.10).len(), 1);
    }

    #[test]
    fn gate_report_round_trips_json() {
        let r = report(vec![counter("hits", 12.5, true)]);
        let json = serde_json::to_string(&r).unwrap();
        let back: GateReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn measured_counters_are_deterministic_across_runs() {
        let a = measure();
        let b = measure();
        assert_eq!(a, b, "gate counters must be exactly reproducible");
        // The warm-start phase feeds the gate too.
        for name in [
            "ir_clones",
            "fingerprints_computed",
            "equality_confirms",
            "identity_transitions",
            "warm_stage_runs",
            "warm_stage_hits",
            "warm_emissions",
            "warm_emission_hits",
            "warm_entries_loaded",
            "serve_p50_request_work",
            "serve_p99_request_work",
            "serve_total_work",
            "serve_memo_served",
            "serve_warm_replay_stage_runs",
            "tune_measurements",
            "search_compiles",
            "tune_regret_x1000",
            "static_analyses",
            "analysis_memo_hits",
            "lints_emitted",
            "search_candidates_pruned",
            "specializations_generated",
            "spec_guard_dispatches",
            "spec_interp_confirms",
        ] {
            assert!(
                a.counters.iter().any(|c| c.name == name),
                "counter `{name}` missing from the gate report"
            );
        }
        // Each backend's emission count is gated individually, and the
        // split is consistent with the total.
        let mut split = 0.0;
        for backend in prism::emit::BackendKind::ALL {
            let name = format!("emissions_{}", backend.name());
            let counter = a
                .counters
                .iter()
                .find(|c| c.name == name)
                .unwrap_or_else(|| panic!("counter `{name}` missing from the gate report"));
            assert!(
                counter.value > 0.0,
                "{name}: 7-platform sweep emits all forms"
            );
            split += counter.value;
        }
        let total = a.counters.iter().find(|c| c.name == "emissions").unwrap();
        assert_eq!(split, total.value);
    }
}
